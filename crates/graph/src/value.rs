//! Attribute values.
//!
//! Data-graph nodes carry a tuple of attributes `A_i = a_i` (Section 2.1 of
//! the paper) where each `a_i` is a constant. Pattern predicates compare such
//! constants with the operators `<, <=, =, !=, >, >=`, so values need a total
//! comparison within a type; comparisons across incompatible types evaluate
//! to `false` rather than erroring (a node simply does not satisfy the
//! predicate), mirroring the paper's "v.A = a' is defined ... and a' op a".

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A constant attribute value stored on a data-graph node.
///
/// The paper's examples use strings (category names, uploader names), numbers
/// (rating, age in days, view counts) and implicitly booleans; floats are
/// included so rating-style attributes (e.g. `rate > 4.5`) work naturally.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A signed integer constant (counts, days, hops...).
    Int(i64),
    /// A floating point constant (ratings, scores...).
    Float(f64),
    /// A string constant (labels, categories, user names...).
    Str(String),
    /// A boolean constant.
    Bool(bool),
}

impl AttrValue {
    /// Returns a short, human readable name of the value's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Str(_) => "str",
            AttrValue::Bool(_) => "bool",
        }
    }

    /// Returns the value as an `i64` if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is numeric (int or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(v) => Some(*v as f64),
            AttrValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the value as a bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compare two values if they are comparable.
    ///
    /// Numeric values (ints and floats) compare with each other; strings
    /// compare lexicographically; booleans compare as `false < true`.
    /// Values of incomparable kinds — and `NaN` floats — return `None`,
    /// which predicate evaluation treats as "does not satisfy".
    pub fn partial_cmp_value(&self, other: &AttrValue) -> Option<Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Equality in the sense used by predicates: numerically tolerant across
    /// int/float, otherwise structural.
    pub fn semantically_eq(&self, other: &AttrValue) -> bool {
        matches!(self.partial_cmp_value(other), Some(Ordering::Equal))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v:?}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from(3i64), AttrValue::Int(3));
        assert_eq!(AttrValue::from(3i32), AttrValue::Int(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::Int(3));
        assert_eq!(AttrValue::from(2.5), AttrValue::Float(2.5));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::Int(7).as_int(), Some(7));
        assert_eq!(AttrValue::Float(7.5).as_int(), None);
        assert_eq!(AttrValue::Int(7).as_f64(), Some(7.0));
        assert_eq!(AttrValue::Float(7.5).as_f64(), Some(7.5));
        assert_eq!(AttrValue::Str("a".into()).as_str(), Some("a"));
        assert_eq!(AttrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Str("a".into()).as_bool(), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        let a = AttrValue::Int(3);
        let b = AttrValue::Float(3.0);
        let c = AttrValue::Float(3.5);
        assert!(a.semantically_eq(&b));
        assert_eq!(a.partial_cmp_value(&c), Some(Ordering::Less));
        assert_eq!(c.partial_cmp_value(&a), Some(Ordering::Greater));
    }

    #[test]
    fn string_comparison() {
        let a = AttrValue::from("apple");
        let b = AttrValue::from("banana");
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
        assert!(!a.semantically_eq(&b));
        assert!(a.semantically_eq(&AttrValue::from("apple")));
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(
            AttrValue::from("3").partial_cmp_value(&AttrValue::Int(3)),
            None
        );
        assert_eq!(
            AttrValue::Bool(true).partial_cmp_value(&AttrValue::Int(1)),
            None
        );
        assert!(!AttrValue::from("3").semantically_eq(&AttrValue::Int(3)));
    }

    #[test]
    fn nan_is_not_comparable() {
        let nan = AttrValue::Float(f64::NAN);
        assert_eq!(nan.partial_cmp_value(&AttrValue::Float(1.0)), None);
        assert!(!nan.semantically_eq(&nan));
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttrValue::Int(3).to_string(), "3");
        assert_eq!(AttrValue::Float(2.5).to_string(), "2.5");
        assert_eq!(AttrValue::from("hi").to_string(), "\"hi\"");
        assert_eq!(AttrValue::Bool(false).to_string(), "false");
    }

    #[test]
    fn type_names() {
        assert_eq!(AttrValue::Int(1).type_name(), "int");
        assert_eq!(AttrValue::Float(1.0).type_name(), "float");
        assert_eq!(AttrValue::from("x").type_name(), "str");
        assert_eq!(AttrValue::Bool(true).type_name(), "bool");
    }
}
