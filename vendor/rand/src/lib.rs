//! Vendored, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses — `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open integer
//! ranges, [`Rng::gen`], [`Rng::gen_bool`] and the slice helpers in
//! [`seq`] — on top of xoshiro256++ (seeded through splitmix64).
//!
//! The stream of values differs from the real `rand`'s ChaCha-based `StdRng`;
//! everything in this workspace treats seeds as opaque workload selectors, so
//! only determinism matters, not the exact stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a single `u64` seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce (the `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Draws a value uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }

            #[inline]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`] (half-open and inclusive).
pub trait SampleRange<T> {
    /// Draws a value uniformly from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Draws a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the domain).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions for random selection and shuffling.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
