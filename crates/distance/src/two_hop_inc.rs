//! An incrementally maintainable 2-hop labeling — the sublinear-memory
//! distance backend.
//!
//! [`IncrementalTwoHop`] answers every query from the pruned landmark labels
//! of a [`TwoHopIndex`] alone (no fallback BFS), and implements the full
//! [`DistanceOracle`] maintenance surface:
//!
//! * **insertions** are repaired in place with the dynamic pruned-landmark
//!   scheme of Akiba, Iwata and Yoshida ("Dynamic and historical shortest-path
//!   distance queries on large evolving networks", WWW 2014), adapted to
//!   directed graphs: for every hub that reaches the new edge's source, a
//!   *resumed* pruned BFS continues from the edge's target (and symmetrically
//!   backwards from the source for hubs reached from the target). Stale,
//!   dominated label entries may linger, but queries stay exact and the index
//!   only grows by the labels the insertion actually needs;
//! * **deletions** first rebuild the non-empty distance row of the edge
//!   source `s` with one BFS and diff it against the labels. If the row is
//!   unchanged the deletion provably changed *no* pair and the labels are
//!   kept as they are. If the row changed but **no other node reaches `s`**
//!   (deleting the first edge of a chain, trimming a source node), every
//!   affected pair has source `s` and the labels are repaired in place:
//!   stale hub entries of `s` are overwritten with the fresh BFS row, which
//!   keeps every query exact. Otherwise the index is rebuilt from scratch —
//!   general decremental label repair is unsound (a label may certify a path
//!   the deletion destroyed) — and the rebuild is recorded in
//!   [`rebuild_count`](IncrementalTwoHop::rebuild_count) so benchmarks and the
//!   adversarial-topology tests can observe exactly where incremental repair
//!   degrades;
//! * **batches** ([`DistanceOracle::apply_batch`]) pay at most **one**
//!   rebuild no matter how many deletions in the batch demand one. The first
//!   rebuild-demanding deletion flips the batch into *deferred* mode: from
//!   then on every unit's `AFF1` is computed against a truth overlay (BFS
//!   distances for the pairs whose labels went stale) without touching the
//!   labels, and the batch ends with a single batched, parallel
//!   [`TwoHopIndex::build_with`] on the final graph followed by a
//!   [`prune_dominated`](IncrementalTwoHop::prune_dominated) pass.
//!
//! The reported `AFF1` is **bit-identical** to the distance matrix's for
//! insertions (same pairs, same order, same old/new values) and identical
//! *as a set* for deletions (the matrix emits its row diff before its
//! per-sink repairs; the label backend emits the row diff before the
//! rectangle diff). Downstream match repair treats `AFF1` as a set of
//! affected sources, so both backends drive identical match deltas.

use crate::incremental::{AffectedPair, AffectedPairs, EdgeUpdate};
use crate::oracle::DistanceOracle;
use crate::two_hop::{merge_min, Direction, LabelEntry, TwoHopIndex};
use crate::UNREACHABLE;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, EdgeBound, NodeId};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// True non-empty distances for the pairs whose label answers went stale
/// during a deferred batch (`UNREACHABLE` = ∅). Absent pairs are exact in the
/// labels; the overlay is dropped when the end-of-batch rebuild lands.
type Overlay = FxHashMap<(NodeId, NodeId), u16>;

/// Outcome of the cheap deletion triage (row diff + upstream-source probe).
enum DeleteTriage {
    /// The deletion was a provable no-op or was repaired in place; the labels
    /// are exact again and the AFF1 is final.
    Repaired(AffectedPairs),
    /// The deletion demands a rebuild. The labels were left untouched (still
    /// exact for the *pre-deletion* graph); the caller decides whether to
    /// rebuild immediately (unit path) or defer to the end of the batch.
    NeedsRebuild {
        /// Row-diff pairs, all with source `s`.
        affected: Vec<AffectedPair>,
        /// Sinks whose `(s, ·)` distance the deletion changed.
        changed_sinks: Vec<NodeId>,
        /// Nodes (`≠ s`) that reach `s` — the candidate rectangle's sources.
        sources: Vec<NodeId>,
    },
}

/// A 2-hop labeled distance oracle with incremental maintenance.
///
/// Memory is proportional to the number of label entries (typically far
/// below `|V|²` on the skewed-degree graphs of the evaluation), which is what
/// lets bounded-simulation runs scale to node counts where the
/// [`crate::DistanceMatrix`] cannot even be allocated. See the README's
/// "Distance backends" table for the trade-offs.
#[derive(Clone, Debug)]
pub struct IncrementalTwoHop {
    index: TwoHopIndex,
    /// Hub rank → node, recovered from the self-label entries (`d == 0`).
    hubs_by_rank: Vec<NodeId>,
    /// How many deletions degraded to a full rebuild.
    rebuilds: usize,
}

impl IncrementalTwoHop {
    /// Builds the labeling for `g`.
    pub fn build(g: &DataGraph) -> Self {
        Self::build_with(g, &Executor::from_env())
    }

    /// Builds the labeling on the shared executor.
    pub fn build_with(g: &DataGraph, exec: &Executor) -> Self {
        let index = TwoHopIndex::build_with(g, exec);
        let hubs_by_rank = recover_ranks(&index);
        IncrementalTwoHop {
            index,
            hubs_by_rank,
            rebuilds: 0,
        }
    }

    /// The underlying labeling.
    pub fn index(&self) -> &TwoHopIndex {
        &self.index
    }

    /// How many deletions degraded to a full index rebuild so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Approximate resident size of the index in bytes.
    ///
    /// Label storage is accounted at Vec *capacity* — the per-node label
    /// vectors carry a 3-word header each plus whatever slack their growth
    /// left behind (insertion repair appends entries one at a time), and the
    /// old entries-times-entry-size formula under-reported both in the
    /// `exp_oracle_scale` and `svc_*` memory columns.
    pub fn memory_bytes(&self) -> usize {
        let header = std::mem::size_of::<Vec<LabelEntry>>();
        let entry = std::mem::size_of::<LabelEntry>();
        let entries: usize = self
            .index
            .label_out
            .iter()
            .chain(self.index.label_in.iter())
            .map(Vec::capacity)
            .sum();
        entries * entry
            + (self.index.label_out.capacity() + self.index.label_in.capacity()) * header
            + self.index.diagonal.capacity() * std::mem::size_of::<u16>()
            + self.hubs_by_rank.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Non-empty distance between two nodes (diagonal = shortest cycle).
    pub fn nonempty_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        self.index.nonempty_distance(x, y)
    }

    /// Standard distance (diagonal 0), `None` if unreachable.
    pub fn standard_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        self.index.standard_distance(x, y)
    }

    /// Drops label entries that the remaining labels *strictly* dominate,
    /// returning how many were removed.
    ///
    /// Insertion repair deliberately leaves stale entries behind ("may
    /// linger", module docs): they keep queries exact — every entry is a real
    /// path length, so an out-of-date one can only over-estimate and never
    /// wins an exact minimum — but a long insert stream grows the index
    /// without bound and skews [`memory_bytes`](Self::memory_bytes) trends.
    /// An entry `(h, d)` of `label_in(v)` is dropped when the 2-hop query
    /// `h → v` over the other common hubs is `< d`: strictness is what makes
    /// the drop provably safe (the certificate is itself a path, so `< d`
    /// means the entry over-estimates the true distance and can never be the
    /// unique exact witness of any query). Self entries (`d == 0`) can never
    /// be strictly beaten, so the rank recovery the repair paths rely on is
    /// preserved.
    ///
    /// `O(Σ label sizes × average label size)` and a no-op right after a
    /// fresh build in the common case. Mirroring
    /// [`DataGraph::compact`](gpm_graph::DataGraph::compact), long-running
    /// incremental workloads call it at convenient quiesce points; the
    /// end-of-batch deferred rebuild calls it automatically.
    pub fn prune_dominated(&mut self) -> usize {
        let hubs = &self.hubs_by_rank;
        let n = self.index.label_in.len();
        let mut dropped = 0usize;
        // In-labels first against intact out-labels, then out-labels against
        // the pruned in-labels: each drop is individually safe, so the fixed
        // deterministic order only matters for reproducibility.
        for v in 0..n {
            let mut i = 0;
            while i < self.index.label_in[v].len() {
                let (r, d) = self.index.label_in[v][i];
                let hub = hubs[r as usize];
                if merge_min(&self.index.label_out[hub.index()], &self.index.label_in[v]) < d {
                    self.index.label_in[v].remove(i);
                    dropped += 1;
                } else {
                    i += 1;
                }
            }
        }
        for v in 0..n {
            let mut i = 0;
            while i < self.index.label_out[v].len() {
                let (r, d) = self.index.label_out[v][i];
                let hub = hubs[r as usize];
                if merge_min(&self.index.label_out[v], &self.index.label_in[hub.index()]) < d {
                    self.index.label_out[v].remove(i);
                    dropped += 1;
                } else {
                    i += 1;
                }
            }
        }
        if dropped > 0 {
            crate::metrics::twohop_extra()
                .pruned_labels
                .add(dropped as u64);
        }
        dropped
    }

    fn insert_repair(
        &mut self,
        g: &DataGraph,
        s: NodeId,
        t: NodeId,
        exec: &Executor,
    ) -> AffectedPairs {
        debug_assert!(g.has_edge(s, t), "graph must already contain the new edge");
        let n = g.node_count();

        // std(x, s) and std(t, y) are unchanged by the insertion (a path
        // using the new edge would revisit s / t and contain a removable
        // cycle), so BFS on the *updated* graph recovers the old values the
        // AFF1 contract needs.
        let to_s = distance_row(g, s, Direction::Backward, false);
        let from_t = distance_row(g, t, Direction::Forward, false);

        // AFF1 over the ancestors(s) × descendants(t) rectangle, replicating
        // the matrix computation pair for pair (same order, same values);
        // `old` distances are label queries against the not-yet-repaired
        // index, which is exact for the pre-insertion graph.
        let sinks: Vec<(NodeId, u16)> = (0..n as u32)
            .map(NodeId::new)
            .filter_map(|y| {
                let d = from_t[y.index()];
                (d != UNREACHABLE).then_some((y, d))
            })
            .collect();
        let idx = &self.index;
        let per_source: Vec<Vec<AffectedPair>> = exec.par_map_index(n, |xi| {
            let x = NodeId::new(xi as u32);
            let dx = to_s[xi];
            if dx == UNREACHABLE {
                return Vec::new();
            }
            let to_t = idx.nonempty_raw(x, t);
            if u32::from(to_t) <= u32::from(dx) + 1 {
                return Vec::new(); // no improvement possible through the new edge
            }
            let mut improved = Vec::new();
            for &(y, dy) in &sinks {
                let via = u32::from(dx) + 1 + u32::from(dy);
                let via = if via >= u32::from(UNREACHABLE) {
                    UNREACHABLE - 1
                } else {
                    via as u16
                };
                let old = idx.nonempty_raw(x, y);
                if via < old {
                    improved.push(AffectedPair {
                        source: x,
                        sink: y,
                        old,
                        new: via,
                    });
                }
            }
            improved
        });
        let mut pairs = Vec::new();
        for chunk in per_source {
            pairs.extend(chunk);
        }

        // The labels do not store the diagonal; repair it straight from the
        // AFF1 entries (new cycles through v all run v ⇝ s → t ⇝ v).
        for p in &pairs {
            if p.source == p.sink {
                self.index.diagonal[p.source.index()] = p.new;
            }
        }

        // Dynamic label repair: resume a pruned BFS from t for every hub
        // that reaches s, and backwards from s for every hub reached from t.
        let hub_in: Vec<LabelEntry> = self.index.label_in[s.index()].clone();
        let hub_out: Vec<LabelEntry> = self.index.label_out[t.index()].clone();
        let mut dist = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();
        let hubs = &self.hubs_by_rank;
        let TwoHopIndex {
            label_out,
            label_in,
            ..
        } = &mut self.index;
        for (rank, d) in hub_in {
            let hub = hubs[rank as usize];
            let start = d.saturating_add(1).min(UNREACHABLE - 1);
            resume_label_repair(
                g,
                Direction::Forward,
                rank,
                hub,
                t,
                start,
                label_out,
                label_in,
                &mut dist,
                &mut queue,
            );
        }
        for (rank, d) in hub_out {
            let hub = hubs[rank as usize];
            let start = d.saturating_add(1).min(UNREACHABLE - 1);
            resume_label_repair(
                g,
                Direction::Backward,
                rank,
                hub,
                s,
                start,
                label_out,
                label_in,
                &mut dist,
                &mut queue,
            );
        }

        AffectedPairs { pairs }
    }

    /// Classifies a deletion as no-op / row-repair / rebuild-demanding and
    /// performs the in-place repair for the first two tiers. For the third
    /// the labels are deliberately left untouched so both the unit path
    /// (immediate rebuild) and the batch path (deferred rebuild) can still
    /// read exact pre-deletion values out of them.
    fn delete_triage(&mut self, g: &DataGraph, s: NodeId) -> DeleteTriage {
        let n = g.node_count();
        let mut affected = Vec::new();

        // Any affected pair forces the row of s to change (its old shortest
        // path ran x ⇝ s → t ⇝ y, so (s, y) loses that route too): rebuild
        // the non-empty row of s with one BFS and diff it against the labels.
        let new_row = distance_row(g, s, Direction::Forward, true);
        let mut changed_sinks: Vec<NodeId> = Vec::new();
        for (yi, &new) in new_row.iter().enumerate() {
            let y = NodeId::new(yi as u32);
            let old = self.index.nonempty_raw(s, y);
            if old != new {
                affected.push(AffectedPair {
                    source: s,
                    sink: y,
                    old,
                    new,
                });
                changed_sinks.push(y);
            }
        }
        if changed_sinks.is_empty() {
            // Provable no-op: the labels stay exact, no rebuild needed.
            crate::metrics::twohop_extra().delete_noop.inc();
            return DeleteTriage::Repaired(AffectedPairs { pairs: affected });
        }

        // std(x, s) is unchanged by the deletion; the candidate rectangle is
        // {x reaching s} × changed sinks.
        let to_s = distance_row(g, s, Direction::Backward, false);
        let sources: Vec<NodeId> = (0..n as u32)
            .map(NodeId::new)
            .filter(|&x| x != s && to_s[x.index()] != UNREACHABLE)
            .collect();
        if sources.is_empty() {
            // Every affected pair has source s (nothing else reaches s, and
            // hub-s label entries can only serve queries out of s), so the
            // labels are repairable in place from the fresh BFS row.
            crate::metrics::twohop_extra().delete_row_repair.inc();
            self.repair_source_row(g, s, &new_row);
            return DeleteTriage::Repaired(AffectedPairs { pairs: affected });
        }
        DeleteTriage::NeedsRebuild {
            affected,
            changed_sinks,
            sources,
        }
    }

    fn delete_repair(
        &mut self,
        g: &DataGraph,
        s: NodeId,
        t: NodeId,
        exec: &Executor,
    ) -> AffectedPairs {
        debug_assert!(
            !g.has_edge(s, t),
            "graph must no longer contain the deleted edge"
        );
        let _ = t;
        let (mut affected, changed_sinks, sources) = match self.delete_triage(g, s) {
            DeleteTriage::Repaired(aff) => return aff,
            DeleteTriage::NeedsRebuild {
                affected,
                changed_sinks,
                sources,
            } => (affected, changed_sinks, sources),
        };
        // Snapshot the old rectangle values before the labels are replaced.
        let old_vals: Vec<u16> = sources
            .iter()
            .flat_map(|&x| changed_sinks.iter().map(move |&y| (x, y)))
            .map(|(x, y)| self.index.nonempty_raw(x, y))
            .collect();

        // Decremental label repair is unsound in general; rebuild and record.
        let rebuild_start = gpm_obs::enabled().then(std::time::Instant::now);
        self.index = TwoHopIndex::build_with(g, exec);
        self.hubs_by_rank = recover_ranks(&self.index);
        self.rebuilds += 1;
        if let Some(start) = rebuild_start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let m = crate::metrics::twohop_extra();
            m.delete_rebuild.inc();
            m.rebuilds.inc();
            m.rebuild_ns.record(ns);
            gpm_obs::emit_event(
                "oracle",
                "rebuild",
                &[("dur_ns", ns)],
                &[("backend", "two-hop"), ("cause", "delete")],
            );
        }

        let mut k = 0;
        for &x in &sources {
            for &y in &changed_sinks {
                let old = old_vals[k];
                k += 1;
                let new = self.index.nonempty_raw(x, y);
                if old != new {
                    affected.push(AffectedPair {
                        source: x,
                        sink: y,
                        old,
                        new,
                    });
                }
            }
        }
        AffectedPairs { pairs: affected }
    }

    /// In-place label repair for a deletion that only changed the row of `s`
    /// (no other node reaches `s`). `new_row` is the fresh non-empty BFS row
    /// of `s` on the updated graph.
    ///
    /// Soundness: since no `x ≠ s` reaches `s`, no label anywhere certifies a
    /// path *into* `s`, so hub-`s` entries only ever serve queries with
    /// source `s`, and the stale entries that could under-estimate are
    /// exactly (a) the out-label of `s` itself and (b) the `(rank(s), ·)`
    /// in-label entries. Both are overwritten with exact fresh values, and
    /// `(rank(s), std_new(s, y))` is upserted for every reachable `y` so the
    /// 2-hop cover of every `(s, y)` pair is restored.
    fn repair_source_row(&mut self, g: &DataGraph, s: NodeId, new_row: &[u16]) {
        debug_assert_eq!(new_row.len(), g.node_count());
        let rank_s = self.index.label_in[s.index()]
            .iter()
            .find(|&&(_, d)| d == 0)
            .expect("every node self-labels at distance 0")
            .0;
        // (a) Out-label of s: refresh every entry to the exact new distance.
        let hubs = &self.hubs_by_rank;
        self.index.label_out[s.index()].retain_mut(|e| {
            let h = hubs[e.0 as usize];
            let d = if h == s { 0 } else { new_row[h.index()] };
            if d == UNREACHABLE {
                return false;
            }
            e.1 = d;
            true
        });
        // (b) Hub-s in-label entries: exact new value for every reachable
        // node, removed where s no longer reaches.
        for (vi, &row_d) in new_row.iter().enumerate() {
            let d = if vi == s.index() { 0 } else { row_d };
            let list = &mut self.index.label_in[vi];
            match list.binary_search_by_key(&rank_s, |e| e.0) {
                Ok(i) => {
                    if d == UNREACHABLE {
                        list.remove(i);
                    } else {
                        list[i].1 = d;
                    }
                }
                Err(i) => {
                    if d != UNREACHABLE {
                        list.insert(i, (rank_s, d));
                    }
                }
            }
        }
        // The only diagonal that can change is s's own (any other cycle
        // through the deleted edge would have to reach s).
        self.index.diagonal[s.index()] = new_row[s.index()];
    }

    /// True non-empty distance under a deferred batch: the overlay wins,
    /// absent pairs are still exact in the labels.
    fn overlay_distance(&self, overlay: &Overlay, x: NodeId, y: NodeId) -> u16 {
        overlay
            .get(&(x, y))
            .copied()
            .unwrap_or_else(|| self.index.nonempty_raw(x, y))
    }

    /// AFF1 for an insertion inside a deferred batch. Mirrors
    /// [`insert_repair`](Self::insert_repair)'s rectangle scan with
    /// overlay-aware old values, but performs **no** label surgery — every
    /// improved pair is recorded in `overlay` instead, and the end-of-batch
    /// rebuild makes the labels exact again.
    fn deferred_insert(
        &self,
        g: &DataGraph,
        s: NodeId,
        t: NodeId,
        exec: &Executor,
        overlay: &mut Overlay,
    ) -> Vec<AffectedPair> {
        let n = g.node_count();
        // std(x, s) and std(t, y) are unchanged by the insertion, exactly as
        // in the healthy path.
        let to_s = distance_row(g, s, Direction::Backward, false);
        let from_t = distance_row(g, t, Direction::Forward, false);
        let sinks: Vec<(NodeId, u16)> = (0..n as u32)
            .map(NodeId::new)
            .filter_map(|y| {
                let d = from_t[y.index()];
                (d != UNREACHABLE).then_some((y, d))
            })
            .collect();
        let ov: &Overlay = overlay;
        let per_source: Vec<Vec<AffectedPair>> = exec.par_map_index(n, |xi| {
            let x = NodeId::new(xi as u32);
            let dx = to_s[xi];
            if dx == UNREACHABLE {
                return Vec::new();
            }
            let to_t = self.overlay_distance(ov, x, t);
            if u32::from(to_t) <= u32::from(dx) + 1 {
                return Vec::new(); // no improvement possible through the new edge
            }
            let mut improved = Vec::new();
            for &(y, dy) in &sinks {
                let via = u32::from(dx) + 1 + u32::from(dy);
                let via = if via >= u32::from(UNREACHABLE) {
                    UNREACHABLE - 1
                } else {
                    via as u16
                };
                let old = self.overlay_distance(ov, x, y);
                if via < old {
                    improved.push(AffectedPair {
                        source: x,
                        sink: y,
                        old,
                        new: via,
                    });
                }
            }
            improved
        });
        let mut pairs = Vec::new();
        for chunk in per_source {
            pairs.extend(chunk);
        }
        for p in &pairs {
            overlay.insert((p.source, p.sink), p.new);
        }
        pairs
    }

    /// AFF1 for a deletion inside a deferred batch: the same row-diff +
    /// rectangle shape as [`delete_triage`](Self::delete_triage), but every
    /// rectangle value comes from a fresh BFS row (the labels may be stale)
    /// and every changed pair is recorded in `overlay` instead of repaired.
    ///
    /// Rectangle completeness carries over from the unit argument: an
    /// affected `(x, y)` lost a path running `x ⇝ s → t ⇝ y`, whose prefix
    /// `x ⇝ s` survives the deletion — so `x` still reaches `s` and `(s, y)`
    /// changed too.
    fn deferred_delete(
        &self,
        g: &DataGraph,
        s: NodeId,
        overlay: &mut Overlay,
    ) -> Vec<AffectedPair> {
        let n = g.node_count();
        let mut pairs = Vec::new();
        let new_row = distance_row(g, s, Direction::Forward, true);
        let mut changed_sinks: Vec<NodeId> = Vec::new();
        for (yi, &new) in new_row.iter().enumerate() {
            let y = NodeId::new(yi as u32);
            let old = self.overlay_distance(overlay, s, y);
            if old != new {
                pairs.push(AffectedPair {
                    source: s,
                    sink: y,
                    old,
                    new,
                });
                changed_sinks.push(y);
            }
        }
        if changed_sinks.is_empty() {
            crate::metrics::twohop_extra().delete_noop.inc();
            return pairs;
        }
        let to_s = distance_row(g, s, Direction::Backward, false);
        let sources: Vec<NodeId> = (0..n as u32)
            .map(NodeId::new)
            .filter(|&x| x != s && to_s[x.index()] != UNREACHABLE)
            .collect();
        for &y in &changed_sinks {
            // One exact backward row serves the whole column of y.
            let to_y = distance_row(g, y, Direction::Backward, false);
            for &x in &sources {
                let new = if x == y {
                    // Non-empty diagonal: shortest cycle through y.
                    let mut best = UNREACHABLE;
                    for &w in g.out_neighbors(y) {
                        let d = to_y[w.index()];
                        if d != UNREACHABLE {
                            best = best.min(d.saturating_add(1).min(UNREACHABLE - 1));
                        }
                    }
                    best
                } else {
                    to_y[x.index()]
                };
                let old = self.overlay_distance(overlay, x, y);
                if old != new {
                    pairs.push(AffectedPair {
                        source: x,
                        sink: y,
                        old,
                        new,
                    });
                }
            }
        }
        for p in &pairs {
            overlay.insert((p.source, p.sink), p.new);
        }
        pairs
    }
}

impl DistanceOracle for IncrementalTwoHop {
    #[inline]
    fn nonempty_distance(&self, _g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32> {
        crate::metrics::twohop_extra().label_queries.inc();
        self.index.nonempty_distance(from, to)
    }

    #[inline]
    fn within(&self, _g: &DataGraph, from: NodeId, to: NodeId, bound: EdgeBound) -> bool {
        crate::metrics::twohop_extra().label_queries.inc();
        match bound {
            EdgeBound::Hops(k) => {
                let d = self.index.nonempty_raw(from, to);
                d != UNREACHABLE && u32::from(d) <= k
            }
            EdgeBound::Unbounded => self.index.reachable(from, to),
        }
    }

    fn name(&self) -> &'static str {
        "two-hop"
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    fn apply_insert(
        &mut self,
        g: &DataGraph,
        from: NodeId,
        to: NodeId,
        exec: &Executor,
    ) -> AffectedPairs {
        let m = crate::metrics::twohop();
        let _span = m.apply_ns.span();
        let aff = self.insert_repair(g, from, to, exec);
        m.note_unit(true, aff.len());
        aff
    }

    fn apply_delete(
        &mut self,
        g: &DataGraph,
        from: NodeId,
        to: NodeId,
        exec: &Executor,
    ) -> AffectedPairs {
        let m = crate::metrics::twohop();
        let _span = m.apply_ns.span();
        let aff = self.delete_repair(g, from, to, exec);
        m.note_unit(false, aff.len());
        aff
    }

    /// Batch maintenance with at most **one** rebuild no matter how many
    /// deletions demand one (module docs, *batches*). Healthy units run the
    /// same per-unit repairs as the default implementation; the first
    /// rebuild-demanding deletion flips the batch into deferred mode, where
    /// AFF1s are computed from BFS rows against a truth overlay and the batch
    /// ends with a single batched, parallel rebuild on the final graph.
    fn apply_batch(
        &mut self,
        g: &DataGraph,
        updates: &[EdgeUpdate],
        exec: &Executor,
    ) -> AffectedPairs {
        let mut combined = AffectedPairs::default();
        if updates.is_empty() {
            return combined;
        }
        let m = crate::metrics::twohop();
        let _span = m.apply_ns.span();
        // Reconstruct the pre-batch graph by undoing the updates in reverse.
        let mut scratch = g.clone();
        for u in updates.iter().rev() {
            u.inverse().apply(&mut scratch);
        }
        let mut overlay: Option<Overlay> = None;
        for u in updates {
            if !u.apply(&mut scratch) {
                continue; // no-op update (duplicate insert / missing delete)
            }
            let (from, to) = u.endpoints();
            let pairs = match (&mut overlay, u.is_insert()) {
                (None, true) => self.insert_repair(&scratch, from, to, exec).pairs,
                (None, false) => match self.delete_triage(&scratch, from) {
                    DeleteTriage::Repaired(aff) => aff.pairs,
                    DeleteTriage::NeedsRebuild { .. } => {
                        // First rebuild-demanding deletion: defer. The labels
                        // are untouched and exact for the pre-deletion graph,
                        // so an empty overlay is the correct starting truth
                        // (the triage's two BFS rows are recomputed — a
                        // once-per-batch cost).
                        let mut ov = Overlay::default();
                        let pairs = self.deferred_delete(&scratch, from, &mut ov);
                        overlay = Some(ov);
                        pairs
                    }
                },
                (Some(ov), true) => self.deferred_insert(&scratch, from, to, exec, ov),
                (Some(ov), false) => self.deferred_delete(&scratch, from, ov),
            };
            m.note_unit(u.is_insert(), pairs.len());
            combined.merge(AffectedPairs { pairs });
        }
        if overlay.is_some() {
            // The one rebuild the whole batch shares.
            let rebuild_start = gpm_obs::enabled().then(std::time::Instant::now);
            self.index = TwoHopIndex::build_with(g, exec);
            self.hubs_by_rank = recover_ranks(&self.index);
            self.rebuilds += 1;
            self.prune_dominated();
            if let Some(start) = rebuild_start {
                let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                let mx = crate::metrics::twohop_extra();
                mx.batch_deferred.inc();
                mx.rebuilds.inc();
                mx.rebuild_ns.record(ns);
                gpm_obs::emit_event(
                    "oracle",
                    "rebuild",
                    &[("dur_ns", ns)],
                    &[("backend", "two-hop"), ("cause", "batch-delete")],
                );
            }
        }
        combined
    }

    fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    fn memory_bytes(&self) -> usize {
        IncrementalTwoHop::memory_bytes(self)
    }

    fn clone_box(&self) -> Option<Box<dyn DistanceOracle + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

/// Recovers the hub-rank → node mapping from the self-label entries: every
/// node carries `(own rank, 0)` in its incoming label.
fn recover_ranks(index: &TwoHopIndex) -> Vec<NodeId> {
    let n = index.label_in.len();
    let mut hubs = vec![NodeId::new(0); n];
    for v in 0..n {
        let (rank, _) = index.label_in[v]
            .iter()
            .copied()
            .find(|&(_, d)| d == 0)
            .expect("every node self-labels at distance 0");
        hubs[rank as usize] = NodeId::new(v as u32);
    }
    hubs
}

/// One full BFS row from `origin` (standard when `nonempty` is false,
/// non-empty — seeded at the neighbours, diagonal = shortest cycle — when
/// true), saturating at `UNREACHABLE - 1`.
fn distance_row(g: &DataGraph, origin: NodeId, direction: Direction, nonempty: bool) -> Vec<u16> {
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    let neighbours_of = |v: NodeId| match direction {
        Direction::Forward => g.out_neighbors(v),
        Direction::Backward => g.in_neighbors(v),
    };
    if nonempty {
        for &w in neighbours_of(origin) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = 1;
                queue.push_back(w);
            }
        }
    } else {
        dist[origin.index()] = 0;
        queue.push_back(origin);
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d >= UNREACHABLE - 1 {
            continue;
        }
        for &w in neighbours_of(v) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Resumes a pruned BFS for `hub` from `start` at distance `start_dist`,
/// inserting/tightening the labels of every node the new edge brought closer
/// to the hub. `dist` is scratch space, fully reset before returning.
#[allow(clippy::too_many_arguments)]
fn resume_label_repair(
    g: &DataGraph,
    direction: Direction,
    hub_rank: u32,
    hub: NodeId,
    start: NodeId,
    start_dist: u16,
    label_out: &mut [Vec<LabelEntry>],
    label_in: &mut [Vec<LabelEntry>],
    dist: &mut [u16],
    queue: &mut VecDeque<NodeId>,
) {
    queue.clear();
    dist[start.index()] = start_dist;
    queue.push_back(start);
    let mut visited: Vec<NodeId> = vec![start];
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        // Prune where the current labels already certify `<= dv` — existing
        // entries are valid upper bounds (insertions only shrink distances),
        // so anything at or below the resumed frontier needs no repair.
        let already = match direction {
            Direction::Forward => merge_min(&label_out[hub.index()], &label_in[v.index()]),
            Direction::Backward => merge_min(&label_out[v.index()], &label_in[hub.index()]),
        };
        if already <= dv {
            continue;
        }
        let list = match direction {
            Direction::Forward => &mut label_in[v.index()],
            Direction::Backward => &mut label_out[v.index()],
        };
        upsert(list, hub_rank, dv);
        if dv >= UNREACHABLE - 1 {
            continue;
        }
        let neighbours = match direction {
            Direction::Forward => g.out_neighbors(v),
            Direction::Backward => g.in_neighbors(v),
        };
        for &w in neighbours {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = dv + 1;
                visited.push(w);
                queue.push_back(w);
            }
        }
    }
    for v in visited {
        dist[v.index()] = UNREACHABLE;
    }
}

/// Inserts or tightens the rank-sorted label entry for `rank`.
fn upsert(list: &mut Vec<LabelEntry>, rank: u32, d: u16) {
    match list.binary_search_by_key(&rank, |e| e.0) {
        Ok(i) => {
            if d < list[i].1 {
                list[i].1 = d;
            }
        }
        Err(i) => list.insert(i, (rank, d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::EdgeUpdate;
    use crate::matrix::DistanceMatrix;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom as _;
    use rand::{Rng as _, SeedableRng as _};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path_graph(len: u32) -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(len as usize);
        for i in 0..len - 1 {
            g.add_edge(n(i), n(i + 1)).unwrap();
        }
        g
    }

    fn assert_all_pairs_agree(g: &DataGraph, oracle: &IncrementalTwoHop, m: &DistanceMatrix) {
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    oracle.nonempty_distance(x, y),
                    m.nonempty_distance(x, y),
                    "mismatch at ({x}, {y})"
                );
            }
        }
    }

    fn sorted(mut pairs: Vec<AffectedPair>) -> Vec<AffectedPair> {
        pairs.sort_by_key(|p| (p.source, p.sink));
        pairs
    }

    #[test]
    fn insertion_matches_matrix_aff1_exactly() {
        let mut g = path_graph(4);
        let exec = Executor::sequential();
        let mut oracle = IncrementalTwoHop::build(&g);
        let mut m = DistanceMatrix::build(&g);

        g.add_edge(n(3), n(0)).unwrap();
        let aff_o = oracle.apply_insert(&g, n(3), n(0), &exec);
        let aff_m = m.apply_insert(&g, n(3), n(0), &exec);
        assert_eq!(aff_o, aff_m, "insert AFF1 must be bit-identical");
        assert_all_pairs_agree(&g, &oracle, &m);
        assert_eq!(oracle.rebuild_count(), 0);
        // The cycle gave every node a finite diagonal.
        assert_eq!(oracle.nonempty_distance(n(0), n(0)), Some(4));
    }

    #[test]
    fn source_node_deletion_is_repaired_in_place() {
        // Nothing reaches node 0, so cutting its out-edge only changes the
        // row of 0 — the labels are repaired in place, no rebuild.
        let mut g = path_graph(4);
        let exec = Executor::sequential();
        let mut oracle = IncrementalTwoHop::build(&g);
        let mut m = DistanceMatrix::build(&g);

        g.remove_edge(n(0), n(1)).unwrap();
        let aff_o = oracle.apply_delete(&g, n(0), n(1), &exec);
        let aff_m = m.apply_delete(&g, n(0), n(1), &exec);
        assert_eq!(sorted(aff_o.pairs), sorted(aff_m.pairs));
        assert_all_pairs_agree(&g, &oracle, &m);
        assert_eq!(oracle.rebuild_count(), 0, "in-place source-row repair");

        // The repaired labels must survive *further* maintenance.
        g.add_edge(n(0), n(2)).unwrap();
        let aff_o = oracle.apply_insert(&g, n(0), n(2), &exec);
        let aff_m = m.apply_insert(&g, n(0), n(2), &exec);
        assert_eq!(aff_o, aff_m);
        assert_all_pairs_agree(&g, &oracle, &m);
    }

    #[test]
    fn deletion_with_upstream_sources_rebuilds() {
        // Cutting an interior chain edge affects upstream sources too —
        // repair degrades to a (counted) rebuild.
        let mut g = path_graph(4);
        let exec = Executor::sequential();
        let mut oracle = IncrementalTwoHop::build(&g);
        let mut m = DistanceMatrix::build(&g);

        g.remove_edge(n(2), n(3)).unwrap();
        let aff_o = oracle.apply_delete(&g, n(2), n(3), &exec);
        let aff_m = m.apply_delete(&g, n(2), n(3), &exec);
        assert_eq!(sorted(aff_o.pairs), sorted(aff_m.pairs));
        assert_all_pairs_agree(&g, &oracle, &m);
        assert_eq!(oracle.rebuild_count(), 1, "interior cut forces a rebuild");
    }

    #[test]
    fn batch_maintenance_matches_matrix() {
        let mut g = path_graph(6);
        g.add_edge(n(5), n(0)).unwrap();
        let exec = Executor::sequential();
        let mut oracle = IncrementalTwoHop::build(&g);
        let mut m = DistanceMatrix::build(&g);

        let updates = vec![
            EdgeUpdate::Insert(n(0), n(3)),
            EdgeUpdate::Delete(n(2), n(3)),
            EdgeUpdate::Insert(n(3), n(1)),
            EdgeUpdate::Delete(n(5), n(0)),
        ];
        for u in &updates {
            u.apply(&mut g);
        }
        let aff_o = oracle.apply_batch(&g, &updates, &exec);
        let aff_m = m.apply_batch(&g, &updates, &exec);
        assert_eq!(sorted(aff_o.pairs), sorted(aff_m.pairs));
        assert_all_pairs_agree(&g, &oracle, &m);
    }

    #[test]
    fn memory_and_introspection() {
        let g = path_graph(5);
        let oracle = IncrementalTwoHop::build(&g);
        assert!(oracle.memory_bytes() > 0);
        assert!(oracle.index().label_entries() > 0);
        assert_eq!(oracle.standard_distance(n(0), n(0)), Some(0));
        let o: &dyn DistanceOracle = &oracle;
        assert_eq!(o.name(), "two-hop");
        assert!(o.supports_incremental());
        assert_eq!(o.rebuilds(), 0);
        assert!(o.memory_bytes() > 0);
        assert!(o.within(&g, n(0), n(4), EdgeBound::Hops(4)));
        assert!(!o.within(&g, n(0), n(4), EdgeBound::Hops(3)));
        assert!(!o.within(&g, n(4), n(0), EdgeBound::Unbounded));
    }

    #[test]
    fn memory_accounting_counts_headers_and_capacity() {
        let g = path_graph(5);
        let oracle = IncrementalTwoHop::build(&g);
        let header = std::mem::size_of::<Vec<LabelEntry>>();
        let entry = std::mem::size_of::<LabelEntry>();
        let idx = oracle.index();
        let label_capacity: usize = idx
            .label_out
            .iter()
            .chain(idx.label_in.iter())
            .map(Vec::capacity)
            .sum();
        let expected = label_capacity * entry
            + (idx.label_out.capacity() + idx.label_in.capacity()) * header
            + idx.diagonal.capacity() * std::mem::size_of::<u16>()
            + oracle.hubs_by_rank.capacity() * std::mem::size_of::<NodeId>();
        assert_eq!(oracle.memory_bytes(), expected);
        // The old entries-only formula dropped the 2·|V| label-Vec headers
        // (and capacity slack) — the fixed accounting is strictly larger.
        assert!(
            oracle.memory_bytes() > idx.label_entries() * entry,
            "capacity accounting must exceed the old entries-only formula"
        );
    }

    #[test]
    fn batch_of_rebuild_demanding_deletes_pays_one_rebuild() {
        // Star with an upstream source: 0 → 1 → {2..2+LEAVES}. Deleting any
        // (1, leaf) edge changes the row of 1 while 0 still reaches 1, so
        // every unit triages to NeedsRebuild — the unit path would pay LEAVES
        // rebuilds, the batch path exactly one.
        const LEAVES: u32 = 5;
        let mut g = DataGraph::new();
        g.add_nodes(2 + LEAVES as usize);
        g.add_edge(n(0), n(1)).unwrap();
        for i in 0..LEAVES {
            g.add_edge(n(1), n(2 + i)).unwrap();
        }
        let exec = Executor::sequential();
        let mut oracle = IncrementalTwoHop::build(&g);
        let mut m = DistanceMatrix::build(&g);

        let updates: Vec<EdgeUpdate> = (0..LEAVES)
            .map(|i| EdgeUpdate::Delete(n(1), n(2 + i)))
            .collect();
        for u in &updates {
            u.apply(&mut g);
        }
        let aff_o = oracle.apply_batch(&g, &updates, &exec);
        let aff_m = m.apply_batch(&g, &updates, &exec);
        assert_eq!(sorted(aff_o.pairs), sorted(aff_m.pairs));
        assert_all_pairs_agree(&g, &oracle, &m);
        assert_eq!(
            oracle.rebuild_count(),
            1,
            "a batch of rebuild-demanding deletions pays exactly one rebuild"
        );
    }

    #[test]
    fn prune_dominated_bounds_growth_and_keeps_queries_exact() {
        // A long interleaved insert/delete stream leaves stale dominated
        // entries behind; the quiesce hook must drop them without changing
        // any query, landing within a constant factor of a fresh build.
        let (mut g, updates) = random_graph_and_updates(7, 12, 24, 60);
        let exec = Executor::sequential();
        let mut oracle = IncrementalTwoHop::build(&g);
        for u in updates {
            if !u.apply(&mut g) {
                continue;
            }
            let (a, b) = u.endpoints();
            if u.is_insert() {
                oracle.apply_insert(&g, a, b, &exec);
            } else {
                oracle.apply_delete(&g, a, b, &exec);
            }
        }
        let before = oracle.index().label_entries();
        let dropped = oracle.prune_dominated();
        assert_eq!(oracle.index().label_entries() + dropped, before);

        let m = DistanceMatrix::build(&g);
        assert_all_pairs_agree(&g, &oracle, &m);

        let fresh = IncrementalTwoHop::build(&g);
        assert!(
            oracle.index().label_entries() <= 2 * fresh.index().label_entries(),
            "pruned index ({} entries) must stay within 2x of a fresh build ({})",
            oracle.index().label_entries(),
            fresh.index().label_entries()
        );
        // Idempotent at the fixpoint.
        assert_eq!(oracle.prune_dominated(), 0);
    }

    fn random_graph_and_updates(
        seed: u64,
        nodes: usize,
        edges: usize,
        updates: usize,
    ) -> (DataGraph, Vec<EdgeUpdate>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DataGraph::new();
        g.add_nodes(nodes);
        while g.edge_count() < edges {
            let a = rng.gen_range(0..nodes as u32);
            let b = rng.gen_range(0..nodes as u32);
            let _ = g.try_add_edge(n(a), n(b));
        }
        let mut scratch = g.clone();
        let mut ups = Vec::new();
        for _ in 0..updates {
            if rng.gen_bool(0.5) && scratch.edge_count() > 0 {
                let edges: Vec<_> = scratch.edges().collect();
                let &(a, b) = edges.choose(&mut rng).unwrap();
                let u = EdgeUpdate::Delete(a, b);
                u.apply(&mut scratch);
                ups.push(u);
            } else {
                let a = n(rng.gen_range(0..nodes as u32));
                let b = n(rng.gen_range(0..nodes as u32));
                if !scratch.has_edge(a, b) {
                    let u = EdgeUpdate::Insert(a, b);
                    u.apply(&mut scratch);
                    ups.push(u);
                }
            }
        }
        (g, ups)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Under randomized interleaved unit updates the maintained labels
        /// agree with the maintained matrix on every pair, insert AFF1s are
        /// bit-identical and delete AFF1s identical as sets.
        #[test]
        fn prop_unit_updates_agree_with_matrix(seed in 0u64..400) {
            let (mut g, updates) = random_graph_and_updates(seed, 13, 26, 10);
            let exec = Executor::sequential();
            let mut oracle = IncrementalTwoHop::build(&g);
            let mut m = DistanceMatrix::build(&g);
            for u in updates {
                if !u.apply(&mut g) {
                    continue;
                }
                let (a, b) = u.endpoints();
                let (aff_o, aff_m) = if u.is_insert() {
                    (oracle.apply_insert(&g, a, b, &exec), m.apply_insert(&g, a, b, &exec))
                } else {
                    (oracle.apply_delete(&g, a, b, &exec), m.apply_delete(&g, a, b, &exec))
                };
                if u.is_insert() {
                    prop_assert_eq!(&aff_o, &aff_m, "insert AFF1 must be bit-identical ({})", u);
                } else {
                    prop_assert_eq!(
                        sorted(aff_o.pairs.clone()),
                        sorted(aff_m.pairs.clone()),
                        "delete AFF1 must match as a set ({})", u
                    );
                }
                for x in g.nodes() {
                    for y in g.nodes() {
                        prop_assert_eq!(
                            oracle.nonempty_distance(x, y),
                            m.nonempty_distance(x, y),
                            "seed {} after {}: mismatch at ({}, {})", seed, u, x, y
                        );
                    }
                }
            }
        }

        /// Whole random batches (mixed inserts and deletes, including
        /// rebuild-demanding ones) produce the same net AFF1 set as the
        /// matrix, leave every query exact, and pay at most one rebuild.
        #[test]
        fn prop_batches_agree_with_matrix(seed in 400u64..600) {
            let (mut g, updates) = random_graph_and_updates(seed, 12, 24, 8);
            let exec = Executor::sequential();
            let mut oracle = IncrementalTwoHop::build(&g);
            let mut m = DistanceMatrix::build(&g);
            for u in &updates {
                u.apply(&mut g);
            }
            let aff_o = oracle.apply_batch(&g, &updates, &exec);
            let aff_m = m.apply_batch(&g, &updates, &exec);
            prop_assert_eq!(
                sorted(aff_o.pairs),
                sorted(aff_m.pairs),
                "seed {}: batch AFF1 must match as a set", seed
            );
            prop_assert!(oracle.rebuild_count() <= 1, "at most one rebuild per batch");
            for x in g.nodes() {
                for y in g.nodes() {
                    prop_assert_eq!(
                        oracle.nonempty_distance(x, y),
                        m.nonempty_distance(x, y),
                        "seed {}: mismatch at ({}, {})", seed, x, y
                    );
                }
            }
        }
    }
}
