//! A naive fixpoint computation of the maximum bounded simulation.
//!
//! This is the textbook reading of the definition in Section 2.2: start from
//! all predicate-satisfying candidates and repeatedly delete any `(u, x)`
//! pair for which some pattern edge `(u, u')` has no witness, until nothing
//! changes. It is `O(|V_p||V| · |E_p||V|²)` in the worst case — asymptotically
//! worse than `Match` — but its simplicity makes it the ideal differential
//! test oracle and ablation baseline ("how much does the paper's propagation
//! machinery buy?").

use crate::bounded_sim::MatchOutcome;
use crate::match_relation::MatchRelation;
use gpm_distance::{DistanceMatrix, DistanceOracle};
use gpm_graph::{DataGraph, NodeId, PatternGraph};

/// Computes the maximum bounded simulation by repeated full re-scanning.
pub fn bounded_simulation_naive(pattern: &PatternGraph, graph: &DataGraph) -> MatchOutcome {
    let matrix = DistanceMatrix::build(graph);
    bounded_simulation_naive_with_oracle(pattern, graph, &matrix)
}

/// Naive fixpoint against an arbitrary distance oracle.
pub fn bounded_simulation_naive_with_oracle<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
) -> MatchOutcome {
    let np = pattern.node_count();
    if np == 0 {
        return MatchOutcome::default();
    }

    // Initial candidates: predicate satisfaction only.
    let mut mat: Vec<Vec<NodeId>> = pattern
        .node_ids()
        .map(|u| graph.nodes_satisfying(pattern.predicate(u)).collect())
        .collect();

    let mut outcome = MatchOutcome::default();
    outcome.stats.initial_candidates = mat.iter().map(Vec::len).sum();

    loop {
        let mut changed = false;
        for e in pattern.edges() {
            let targets = mat[e.to.index()].clone();
            let before = mat[e.from.index()].len();
            mat[e.from.index()]
                .retain(|&x| targets.iter().any(|&y| oracle.within(graph, x, y, e.bound)));
            let removed = before - mat[e.from.index()].len();
            if removed > 0 {
                changed = true;
                outcome.stats.removed_candidates += removed;
            }
        }
        if !changed {
            break;
        }
    }

    if mat.iter().any(Vec::is_empty) {
        outcome.stats.failed_early = true;
        outcome.relation = MatchRelation::empty(np);
        return outcome;
    }
    outcome.relation = MatchRelation::from_sets(mat);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_sim::bounded_simulation;
    use gpm_graph::{
        Attributes, DataGraphBuilder, EdgeBound, PatternGraph, PatternGraphBuilder, Predicate,
    };
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    #[test]
    fn agrees_with_optimized_on_small_example() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .path(&["A", "B", "C"])
            .edge("C", "A")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 2u32)
            .edge("C", "A", 1u32)
            .build()
            .unwrap();
        let fast = bounded_simulation(&p, &g);
        let slow = bounded_simulation_naive(&p, &g);
        assert_eq!(fast.relation, slow.relation);
        assert!(fast.is_match(&p));
    }

    #[test]
    fn empty_pattern_and_empty_graph() {
        let g = DataGraph::new();
        let p = PatternGraph::new();
        let out = bounded_simulation_naive(&p, &g);
        assert_eq!(out.relation.pattern_node_count(), 0);

        let mut p1 = PatternGraph::new();
        p1.add_node(Predicate::any());
        let out = bounded_simulation_naive(&p1, &g);
        assert!(!out.relation.is_match(&p1));
    }

    /// Generates a random labelled graph and pattern, used for differential
    /// testing between the naive fixpoint and the optimized algorithm.
    fn random_instance(seed: u64) -> (DataGraph, PatternGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = ["A", "B", "C", "D"];
        let n = rng.gen_range(3..14usize);
        let mut g = DataGraph::new();
        for _ in 0..n {
            let l = labels[rng.gen_range(0..labels.len())];
            g.add_node(Attributes::labeled(l));
        }
        let edges = rng.gen_range(0..n * 3);
        for _ in 0..edges {
            let a = NodeId::new(rng.gen_range(0..n as u32));
            let b = NodeId::new(rng.gen_range(0..n as u32));
            let _ = g.try_add_edge(a, b);
        }

        let mut p = PatternGraph::new();
        let pnodes = rng.gen_range(1..5usize);
        for _ in 0..pnodes {
            let l = labels[rng.gen_range(0..labels.len())];
            p.add_node(Predicate::label(l));
        }
        let pedges = rng.gen_range(0..pnodes * 2);
        for _ in 0..pedges {
            let a = gpm_graph::PatternNodeId::new(rng.gen_range(0..pnodes as u32));
            let b = gpm_graph::PatternNodeId::new(rng.gen_range(0..pnodes as u32));
            if a == b {
                continue;
            }
            let bound = if rng.gen_bool(0.2) {
                EdgeBound::Unbounded
            } else {
                EdgeBound::Hops(rng.gen_range(1..4))
            };
            let _ = p.add_edge(a, b, bound);
        }
        (g, p)
    }

    #[test]
    fn differential_fixed_seeds() {
        for seed in 0..40u64 {
            let (g, p) = random_instance(seed);
            let fast = bounded_simulation(&p, &g);
            let slow = bounded_simulation_naive(&p, &g);
            assert_eq!(fast.relation, slow.relation, "seed {seed}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// The optimized Match and the naive fixpoint compute the same
        /// maximum relation, and it verifies against the definition.
        #[test]
        fn prop_matches_naive(seed in 0u64..10_000) {
            let (g, p) = random_instance(seed);
            let fast = bounded_simulation(&p, &g);
            let slow = bounded_simulation_naive(&p, &g);
            prop_assert_eq!(&fast.relation, &slow.relation);
            let m = DistanceMatrix::build(&g);
            prop_assert!(fast.relation.is_valid_match(&p, &g, &m));
        }
    }
}
