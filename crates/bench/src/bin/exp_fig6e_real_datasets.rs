//! Fig. 6(e) — Match vs 2-hop vs BFS on the three real-life datasets, for
//! patterns P(4,4,4) and P(8,8,4).
//!
//! By default the simulated Matter/PBlog/YouTube stand-ins are used; with
//! `--dataset-dir <path>` the experiment consumes real on-disk datasets
//! (`<name>.edges` SNAP edge list + optional `<name>.attrs` attribute CSV)
//! directly — `--dataset-dir fixtures` runs it on the checked-in
//! mini-dataset, and a directory of downloaded SNAP crawls reproduces the
//! figure against the real data.
//!
//! The distance matrix and the 2-hop labels are precomputed and not counted
//! (as in the paper); the BFS variant computes distances on demand. The BFS
//! oracle is constructed once per dataset — outside the timing loop, like
//! the other two subjects — so its column times only matching (plus its
//! on-demand BFS runs, which are the point of that variant).

use gpm::{bounded_simulation_with_oracle, BfsOracle, TwoHopOracle};
use gpm_bench::{fmt_ms, load_source_or_exit, patterns_for, time, HarnessArgs, Subject, Table};
use std::time::Duration;

fn main() {
    let args = HarnessArgs::from_env();
    let sources = args.dataset_sources_or_exit();
    let mut table = Table::new(
        "Fig. 6(e): elapsed time (ms, avg per pattern) on real-life datasets",
        &["dataset", "pattern", "Match", "2-hop", "BFS"],
    );

    for source in &sources {
        let graph = load_source_or_exit(source, &args);
        let subject = Subject::new(graph);
        let (two_hop, label_time) = time(|| TwoHopOracle::build(&subject.graph));
        // One memoising BFS oracle per dataset, hoisted out of the timing
        // loop so all three subjects amortise their preprocessing the same
        // way.
        let bfs = BfsOracle::new();
        eprintln!(
            "{}: |V| = {}, |E| = {}, matrix {} ms, 2-hop labels {} ms [{}]",
            source.name(),
            subject.graph.node_count(),
            subject.graph.edge_count(),
            fmt_ms(subject.matrix_build_time),
            fmt_ms(label_time),
            source.describe(args.scale)
        );

        for &(vp, ep, k) in &[(4usize, 4usize, 4u32), (8, 8, 4)] {
            let patterns = patterns_for(
                &subject.graph,
                vp,
                ep,
                k,
                args.patterns,
                args.seed + vp as u64,
            );
            let mut t_matrix = Duration::ZERO;
            let mut t_two_hop = Duration::ZERO;
            let mut t_bfs = Duration::ZERO;
            for pattern in &patterns {
                let (_, t) = time(|| {
                    bounded_simulation_with_oracle(pattern, &subject.graph, &subject.matrix)
                });
                t_matrix += t;
                let (_, t) =
                    time(|| bounded_simulation_with_oracle(pattern, &subject.graph, &two_hop));
                t_two_hop += t;
                let (_, t) = time(|| bounded_simulation_with_oracle(pattern, &subject.graph, &bfs));
                t_bfs += t;
            }
            let n = patterns.len() as u32;
            table.row(vec![
                source.name(),
                format!("P({vp},{ep},{k})"),
                fmt_ms(t_matrix / n),
                fmt_ms(t_two_hop / n),
                fmt_ms(t_bfs / n),
            ]);
        }
    }
    table.print();
    println!(
        "paper reference: Match (distance matrix) is fastest on every dataset; 2-hop helps over\n\
         plain BFS when many node pairs are unreachable (e.g. Matter), less so on dense graphs."
    );
}
