//! # gpm-incremental
//!
//! Incremental graph pattern matching (Section 4 of Fan et al., VLDB 2010):
//! maintain the maximum bounded-simulation match of a pattern while the data
//! graph is updated by edge insertions and deletions, without recomputing it
//! from scratch.
//!
//! * [`match_minus`] — the paper's `Match−` (Fig. 5): unit edge **deletion**,
//!   arbitrary (possibly cyclic) patterns;
//! * [`match_plus`] — `Match+` (Fig. 7): unit edge **insertion**, DAG
//!   patterns;
//! * [`inc_match`] — `IncMatch` (Fig. 8): a batch of updates, DAG patterns;
//! * [`IncrementalMatcher`] — an owning facade that keeps the graph, the
//!   distance matrix `M`, and the match state together and applies update
//!   streams (what an application would actually embed);
//! * [`repair_match_state`] — the repair step on its own, driven by a
//!   precomputed `AFF1`, so a multi-query service (`gpm-service`) can pay
//!   the shared graph/matrix maintenance once per batch and replay only the
//!   cheap per-query repair for every registered pattern.
//!
//! Every operation reports the affected areas: `AFF1` (node pairs whose
//! distance changed — from `gpm-distance`) and `AFF2` (match pairs added or
//! removed), whose sizes drive the `O(|AFF1| |AFF2|²)` bound of Theorem 4.1
//! and the `|AFF|` annotations of Figures 6(i)–(k).
//!
//! Updates mutate the data graph's CSR layout through its delta overlay
//! (`O(deg)` per touched node, no full rebuild);
//! [`IncrementalMatcher::compact_graph`] folds the overlay back at quiesce
//! points.
//!
//! ## Example
//!
//! ```
//! use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};
//! use gpm_incremental::IncrementalMatcher;
//! use gpm_distance::EdgeUpdate;
//!
//! let (g, ids) = DataGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("mid")
//!     .labeled_node("worker")
//!     .edge("boss", "mid")
//!     .build()
//!     .unwrap();
//! let (p, _) = PatternGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("worker")
//!     .edge("boss", "worker", 2u32)
//!     .build()
//!     .unwrap();
//!
//! let mut matcher = IncrementalMatcher::new(p, g);
//! assert!(!matcher.is_match()); // no path from boss to worker yet
//!
//! // One inserted edge completes boss -> mid -> worker: Match+ repairs the
//! // match without recomputing it from scratch.
//! matcher.apply(EdgeUpdate::Insert(ids["mid"], ids["worker"])).unwrap();
//! assert!(matcher.is_match());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affected;
pub mod batch;
pub mod delete;
pub mod insert;
pub mod maintainer;
pub mod repair;
pub mod state;

pub use affected::{Aff2, IncrementalStats};
pub use batch::{inc_match, inc_match_with};
pub use delete::match_minus;
pub use insert::match_plus;
pub use maintainer::IncrementalMatcher;
pub use repair::{repair_match_state, split_aff1_sources, RepairOutcome};
pub use state::{MatchState, MatchStateSnapshot};

/// Result alias for incremental operations.
pub type Result<T> = std::result::Result<T, gpm_graph::GraphError>;
