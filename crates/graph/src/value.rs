//! Attribute values.
//!
//! Data-graph nodes carry a tuple of attributes `A_i = a_i` (Section 2.1 of
//! the paper) where each `a_i` is a constant. Pattern predicates compare such
//! constants with the operators `<, <=, =, !=, >, >=`, so values need a total
//! comparison within a type; comparisons across incompatible types evaluate
//! to `false` rather than erroring (a node simply does not satisfy the
//! predicate), mirroring the paper's "v.A = a' is defined ... and a' op a".

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A constant attribute value stored on a data-graph node.
///
/// The paper's examples use strings (category names, uploader names), numbers
/// (rating, age in days, view counts) and implicitly booleans; floats are
/// included so rating-style attributes (e.g. `rate > 4.5`) work naturally.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AttrValue {
    /// A signed integer constant (counts, days, hops...).
    Int(i64),
    /// A floating point constant (ratings, scores...).
    Float(f64),
    /// A string constant (labels, categories, user names...).
    Str(String),
    /// A boolean constant.
    Bool(bool),
}

/// The type of an [`AttrValue`], as named in dataset schemas.
///
/// The on-disk attribute-CSV format (see [`crate::dataset`]) declares one
/// type per column in its header (`rate:float`, `views:int`, …); this enum is
/// that declaration, and [`AttrType::parse_value`] is the typed field parser.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// A signed 64-bit integer column.
    Int,
    /// A 64-bit floating point column.
    Float,
    /// A string column.
    Str,
    /// A boolean column (`true` / `false`).
    Bool,
}

impl AttrType {
    /// The schema name of the type (`int`, `float`, `str`, `bool`).
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Float => "float",
            AttrType::Str => "str",
            AttrType::Bool => "bool",
        }
    }

    /// Parses a schema type name; returns `None` for unknown names.
    pub fn parse_name(name: &str) -> Option<AttrType> {
        match name {
            "int" => Some(AttrType::Int),
            "float" => Some(AttrType::Float),
            "str" => Some(AttrType::Str),
            "bool" => Some(AttrType::Bool),
            _ => None,
        }
    }

    /// Parses a raw field as a value of this type.
    ///
    /// `Str` accepts any text verbatim (CSV quoting is undone by the caller);
    /// `Bool` accepts exactly `true`/`false`; numeric types use the standard
    /// Rust parsers, so `Float` round-trips everything `f64`'s `Display`
    /// emits. Returns `None` when the text is not a value of the type.
    pub fn parse_value(self, text: &str) -> Option<AttrValue> {
        match self {
            AttrType::Int => text.parse::<i64>().ok().map(AttrValue::Int),
            AttrType::Float => text.parse::<f64>().ok().map(AttrValue::Float),
            AttrType::Str => Some(AttrValue::Str(text.to_string())),
            AttrType::Bool => match text {
                "true" => Some(AttrValue::Bool(true)),
                "false" => Some(AttrValue::Bool(false)),
                _ => None,
            },
        }
    }
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl AttrValue {
    /// The [`AttrType`] of this value.
    pub fn attr_type(&self) -> AttrType {
        match self {
            AttrValue::Int(_) => AttrType::Int,
            AttrValue::Float(_) => AttrType::Float,
            AttrValue::Str(_) => AttrType::Str,
            AttrValue::Bool(_) => AttrType::Bool,
        }
    }

    /// Returns a short, human readable name of the value's type.
    pub fn type_name(&self) -> &'static str {
        self.attr_type().name()
    }

    /// Returns the value as an `i64` if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is numeric (int or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(v) => Some(*v as f64),
            AttrValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the value as a bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compare two values if they are comparable.
    ///
    /// Numeric values (ints and floats) compare with each other; strings
    /// compare lexicographically; booleans compare as `false < true`.
    /// Values of incomparable kinds — and `NaN` floats — return `None`,
    /// which predicate evaluation treats as "does not satisfy".
    pub fn partial_cmp_value(&self, other: &AttrValue) -> Option<Ordering> {
        use AttrValue::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Equality in the sense used by predicates: numerically tolerant across
    /// int/float, otherwise structural.
    pub fn semantically_eq(&self, other: &AttrValue) -> bool {
        matches!(self.partial_cmp_value(other), Some(Ordering::Equal))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v:?}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(AttrValue::from(3i64), AttrValue::Int(3));
        assert_eq!(AttrValue::from(3i32), AttrValue::Int(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::Int(3));
        assert_eq!(AttrValue::from(2.5), AttrValue::Float(2.5));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(AttrValue::Int(7).as_int(), Some(7));
        assert_eq!(AttrValue::Float(7.5).as_int(), None);
        assert_eq!(AttrValue::Int(7).as_f64(), Some(7.0));
        assert_eq!(AttrValue::Float(7.5).as_f64(), Some(7.5));
        assert_eq!(AttrValue::Str("a".into()).as_str(), Some("a"));
        assert_eq!(AttrValue::Bool(true).as_bool(), Some(true));
        assert_eq!(AttrValue::Str("a".into()).as_bool(), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        let a = AttrValue::Int(3);
        let b = AttrValue::Float(3.0);
        let c = AttrValue::Float(3.5);
        assert!(a.semantically_eq(&b));
        assert_eq!(a.partial_cmp_value(&c), Some(Ordering::Less));
        assert_eq!(c.partial_cmp_value(&a), Some(Ordering::Greater));
    }

    #[test]
    fn string_comparison() {
        let a = AttrValue::from("apple");
        let b = AttrValue::from("banana");
        assert_eq!(a.partial_cmp_value(&b), Some(Ordering::Less));
        assert!(!a.semantically_eq(&b));
        assert!(a.semantically_eq(&AttrValue::from("apple")));
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(
            AttrValue::from("3").partial_cmp_value(&AttrValue::Int(3)),
            None
        );
        assert_eq!(
            AttrValue::Bool(true).partial_cmp_value(&AttrValue::Int(1)),
            None
        );
        assert!(!AttrValue::from("3").semantically_eq(&AttrValue::Int(3)));
    }

    #[test]
    fn nan_is_not_comparable() {
        let nan = AttrValue::Float(f64::NAN);
        assert_eq!(nan.partial_cmp_value(&AttrValue::Float(1.0)), None);
        assert!(!nan.semantically_eq(&nan));
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttrValue::Int(3).to_string(), "3");
        assert_eq!(AttrValue::Float(2.5).to_string(), "2.5");
        assert_eq!(AttrValue::from("hi").to_string(), "\"hi\"");
        assert_eq!(AttrValue::Bool(false).to_string(), "false");
    }

    #[test]
    fn type_names() {
        assert_eq!(AttrValue::Int(1).type_name(), "int");
        assert_eq!(AttrValue::Float(1.0).type_name(), "float");
        assert_eq!(AttrValue::from("x").type_name(), "str");
        assert_eq!(AttrValue::Bool(true).type_name(), "bool");
    }

    #[test]
    fn attr_type_names_roundtrip() {
        for ty in [
            AttrType::Int,
            AttrType::Float,
            AttrType::Str,
            AttrType::Bool,
        ] {
            assert_eq!(AttrType::parse_name(ty.name()), Some(ty));
            assert_eq!(ty.to_string(), ty.name());
        }
        assert_eq!(AttrType::parse_name("integer"), None);
        assert_eq!(AttrType::parse_name(""), None);
    }

    #[test]
    fn attr_type_of_value() {
        assert_eq!(AttrValue::Int(1).attr_type(), AttrType::Int);
        assert_eq!(AttrValue::Float(1.5).attr_type(), AttrType::Float);
        assert_eq!(AttrValue::from("x").attr_type(), AttrType::Str);
        assert_eq!(AttrValue::Bool(false).attr_type(), AttrType::Bool);
    }

    #[test]
    fn typed_field_parsing() {
        assert_eq!(AttrType::Int.parse_value("42"), Some(AttrValue::Int(42)));
        assert_eq!(AttrType::Int.parse_value("4.5"), None);
        assert_eq!(
            AttrType::Float.parse_value("4.5"),
            Some(AttrValue::Float(4.5))
        );
        assert_eq!(AttrType::Float.parse_value("x"), None);
        assert_eq!(
            AttrType::Str.parse_value("a, b"),
            Some(AttrValue::Str("a, b".into()))
        );
        assert_eq!(
            AttrType::Bool.parse_value("true"),
            Some(AttrValue::Bool(true))
        );
        assert_eq!(AttrType::Bool.parse_value("TRUE"), None);
        assert_eq!(AttrType::Bool.parse_value("1"), None);
    }

    #[test]
    fn float_display_reparses_exactly() {
        for v in [0.1f64, 4.5, -3.25, 1e-9, 123456789.125] {
            let text = AttrValue::Float(v).attr_type().name().to_string();
            assert_eq!(text, "float");
            let printed = format!("{v}");
            assert_eq!(
                AttrType::Float.parse_value(&printed),
                Some(AttrValue::Float(v))
            );
        }
    }
}
