//! The cubic-time `Match` algorithm (Fig. 4 of the paper).
//!
//! Given a pattern `P = (V_p, E_p, f_v, f_e)` and a data graph
//! `G = (V, E, f_A)`, `Match` computes the unique **maximum** bounded
//! simulation relation `S ⊆ V_p × V` (or `∅` when `P ⋬ G`) in
//! `O(|V||E| + |E_p||V|² + |V_p||V|)` time.
//!
//! ## Implementation
//!
//! The structure follows the paper: initial candidate sets `mat(u)` from the
//! node predicates, then iterative removal of nodes that cannot witness some
//! pattern edge, propagated upward until a fixpoint. Two representation
//! choices differ from the pseudo-code but keep the bound:
//!
//! * `anc`/`desc` sets are not materialised; the distance oracle answers the
//!   `len(x/.../x') <= f_e(u', u)` test in `O(1)` (distance matrix) — this is
//!   exactly the information the `anc`/`desc` sets encode;
//! * the `premv` bookkeeping is realised with per-(pattern-edge, data-node)
//!   **witness counters**: `cnt[e][x]` is the number of nodes currently in
//!   `mat(target(e))` that `x` can reach within the bound of `e`. When a node
//!   `y` is removed from `mat(u)`, the counters of candidate parents that can
//!   reach `y` are decremented; hitting zero removes the parent candidate —
//!   the same `O(|E_p||V|²)` propagation the paper obtains with `premv`.

use crate::match_relation::MatchRelation;
use gpm_distance::{DistanceOracle, OracleBackend};
use gpm_exec::Executor;
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};
use std::sync::{Arc, OnceLock};

/// Observability handles for the refinement (scope `"match"`). Every
/// counter is deterministic: the fixed merge order makes waves, scans and
/// removals bit-identical at any thread count.
struct MatchMetrics {
    runs: Arc<gpm_obs::Counter>,
    waves: Arc<gpm_obs::Counter>,
    membership_scans: Arc<gpm_obs::Counter>,
    initial_candidates: Arc<gpm_obs::Counter>,
    removed_candidates: Arc<gpm_obs::Counter>,
    counter_decrements: Arc<gpm_obs::Counter>,
    failed_early: Arc<gpm_obs::Counter>,
    run_ns: Arc<gpm_obs::Histogram>,
}

fn metrics() -> &'static MatchMetrics {
    static METRICS: OnceLock<MatchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let scope = gpm_obs::registry().scope("match");
        MatchMetrics {
            runs: scope.counter("runs"),
            waves: scope.counter("waves"),
            membership_scans: scope.counter("membership_scans"),
            initial_candidates: scope.counter("initial_candidates"),
            removed_candidates: scope.counter("removed_candidates"),
            counter_decrements: scope.counter("counter_decrements"),
            failed_early: scope.counter("failed_early"),
            run_ns: scope.histogram("run_ns"),
        }
    })
}

/// Counters and outcome metadata of a `Match` run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Total number of initial candidates over all pattern nodes
    /// (`Σ_u |mat_0(u)|`).
    pub initial_candidates: usize,
    /// Number of `(u, x)` candidate pairs removed during refinement.
    pub removed_candidates: usize,
    /// Number of witness-counter decrements performed (a proxy for the work
    /// of the refinement loop).
    pub counter_decrements: usize,
    /// Whether the run ended early because some `mat(u)` became empty.
    pub failed_early: bool,
}

/// The result of running `Match`: the maximum match plus run statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// The maximum match `S` (all-empty when `P ⋬ G`).
    pub relation: MatchRelation,
    /// Statistics about the run.
    pub stats: MatchStats,
}

impl MatchOutcome {
    /// Whether the data graph matches the pattern (`P ⊴ G`).
    pub fn is_match(&self, pattern: &PatternGraph) -> bool {
        self.relation.is_match(pattern)
    }
}

/// Runs `Match` with a freshly built distance backend.
///
/// The backend is selected by the `GPM_ORACLE` environment variable via
/// [`OracleBackend::from_env`] (the paper's distance matrix by default).
/// Use [`bounded_simulation_with_oracle`] to reuse a prebuilt oracle (the
/// paper computes `M` once and shares it across patterns) or to pick a
/// specific variant programmatically. Both the oracle construction and the
/// refinement run on the process-default [`gpm_exec::Parallelism`] policy
/// (all available cores, or `GPM_THREADS`); see [`bounded_simulation_on`]
/// to choose explicitly.
pub fn bounded_simulation(pattern: &PatternGraph, graph: &DataGraph) -> MatchOutcome {
    bounded_simulation_on(pattern, graph, &Executor::from_env())
}

/// Runs `Match` (env-selected oracle construction included) on an explicit
/// executor.
pub fn bounded_simulation_on(
    pattern: &PatternGraph,
    graph: &DataGraph,
    exec: &Executor,
) -> MatchOutcome {
    let oracle = OracleBackend::from_env().build(graph, exec);
    bounded_simulation_with_oracle_on(pattern, graph, oracle.as_ref(), exec)
}

/// Runs `Match` against an arbitrary [`DistanceOracle`] on the
/// process-default [`gpm_exec::Parallelism`] policy.
pub fn bounded_simulation_with_oracle<O: DistanceOracle + Sync + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
) -> MatchOutcome {
    bounded_simulation_with_oracle_on(pattern, graph, oracle, &Executor::from_env())
}

/// Runs `Match` against an arbitrary [`DistanceOracle`] on an explicit
/// executor.
///
/// ## Parallel structure (and why the output is exactly sequential)
///
/// The three phases of the refinement are data-parallel over disjoint
/// state, and every merge is performed in a fixed (pattern-edge, data-node)
/// order that does not depend on the thread count or chunking:
///
/// 1. **initial candidates** — one task per pattern node, each owning its
///    `mat(u)` bitmap row;
/// 2. **witness-counter initialisation** — the `O(|E_p||V|²)` scan is split
///    into (pattern edge × data-node chunk) tasks, each owning a disjoint
///    `cnt[e][x..y]` range;
/// 3. **removal propagation** — processed in *waves*: all removals of the
///    current wave are grouped per pattern node, the counter decrements they
///    imply are computed in parallel against the wave-start membership
///    (pure reads), and then applied in the fixed merge order, emitting the
///    next wave. Chaotic-iteration confluence makes any wave order reach the
///    same greatest fixpoint; the fixed merge order additionally makes the
///    run — including [`MatchStats`] and early-failure behaviour —
///    bit-identical at every thread count, which is what the determinism
///    suite asserts.
pub fn bounded_simulation_with_oracle_on<O: DistanceOracle + Sync + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
    exec: &Executor,
) -> MatchOutcome {
    let m = metrics();
    let _span = m.run_ns.span();
    let out = match_inner(pattern, graph, oracle, exec);
    if gpm_obs::enabled() {
        m.runs.inc();
        m.initial_candidates
            .add(out.stats.initial_candidates as u64);
        m.removed_candidates
            .add(out.stats.removed_candidates as u64);
        m.counter_decrements
            .add(out.stats.counter_decrements as u64);
        if out.stats.failed_early {
            m.failed_early.inc();
        }
    }
    out
}

/// The refinement itself, uninstrumented (see the public wrapper above for
/// the obs accounting; the wave loop counts waves and scans inline).
fn match_inner<O: DistanceOracle + Sync + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
    exec: &Executor,
) -> MatchOutcome {
    let np = pattern.node_count();
    let nv = graph.node_count();
    let mut stats = MatchStats::default();

    if np == 0 {
        // The empty pattern matches trivially with the empty relation.
        return MatchOutcome {
            relation: MatchRelation::empty(0),
            stats,
        };
    }

    // mat(u) as a membership bitmap per pattern node (lines 4-5 of Fig. 4),
    // computed as one independent task per pattern node (work hint: each
    // task scans all |V| data nodes).
    let initial: Vec<(Vec<bool>, usize)> = exec.map_tasks(np, nv, |ui| {
        let u = PatternNodeId::new(ui as u32);
        let needs_out_edge = pattern.out_degree(u) > 0;
        let mut row = vec![false; nv];
        let mut live = 0usize;
        for v in graph.nodes_satisfying(pattern.predicate(u)) {
            if needs_out_edge && graph.out_degree(v) == 0 {
                continue;
            }
            row[v.index()] = true;
            live += 1;
        }
        (row, live)
    });
    let mut member: Vec<Vec<bool>> = Vec::with_capacity(np);
    let mut live_count: Vec<usize> = Vec::with_capacity(np);
    for (row, live) in initial {
        member.push(row);
        live_count.push(live);
        stats.initial_candidates += live;
        if live == 0 {
            stats.failed_early = true;
            return MatchOutcome {
                relation: MatchRelation::empty(np),
                stats,
            };
        }
    }

    // Data-node chunking shared by phases 2 and 3. The merge order below is
    // (edge, x ascending) for *any* chunk count, so this choice affects
    // scheduling only, never results.
    let n_chunks = if exec.parallelism().should_parallelise(nv) {
        (exec.threads() * 4).min(nv.max(1))
    } else {
        1
    };
    let chunk_len = nv.div_ceil(n_chunks).max(1);

    // Witness counters per pattern edge: cnt[e][x] = |{y in mat(to(e)) :
    // within(x, y, bound(e))}| for x in mat(from(e)).
    //
    // All counters are computed against the *initial* candidate sets before
    // any removal takes place, so that every later removal of a witness `y`
    // corresponds to exactly one decrement. Each (edge, chunk) task owns a
    // disjoint counter range; chunk results are stitched back in task order.
    let edges: Vec<_> = pattern.edges().copied().collect();
    let ne = edges.len();
    let init_chunks: Vec<(Vec<u32>, Vec<u32>)> = exec.map_tasks(ne * n_chunks, nv, |ti| {
        let e = &edges[ti / n_chunks];
        let ci = ti % n_chunks;
        let from = e.from.index();
        let to = e.to.index();
        let (start, end) = chunk_range(ci, chunk_len, nv);
        let mut counts = vec![0u32; end - start];
        let mut witnessless: Vec<u32> = Vec::new();
        for x in start..end {
            if !member[from][x] {
                continue;
            }
            let xv = NodeId::new(x as u32);
            let mut count = 0u32;
            for (y, &is_member) in member[to].iter().enumerate() {
                if is_member && oracle.within(graph, xv, NodeId::new(y as u32), e.bound) {
                    count += 1;
                }
            }
            counts[x - start] = count;
            if count == 0 {
                // x cannot witness edge e: schedule its removal from mat(from).
                witnessless.push(x as u32);
            }
        }
        (counts, witnessless)
    });
    let mut counters: Vec<Vec<u32>> = Vec::with_capacity(ne);
    // Candidates found witness-less during counter initialisation; their
    // removal is deferred until all counters are in place.
    let mut pending: Vec<(PatternNodeId, NodeId)> = Vec::new();
    for (ti, (counts, witnessless)) in init_chunks.into_iter().enumerate() {
        let ei = ti / n_chunks;
        if ti % n_chunks == 0 {
            counters.push(Vec::with_capacity(nv));
        }
        counters[ei].extend(counts);
        pending.extend(
            witnessless
                .into_iter()
                .map(|x| (edges[ei].from, NodeId::new(x))),
        );
    }

    // First wave of removals.
    let mut wave: Vec<(PatternNodeId, NodeId)> = Vec::new();
    for (u, x) in pending {
        if member[u.index()][x.index()] {
            member[u.index()][x.index()] = false;
            live_count[u.index()] -= 1;
            stats.removed_candidates += 1;
            wave.push((u, x));
            if live_count[u.index()] == 0 {
                stats.failed_early = true;
                return MatchOutcome {
                    relation: MatchRelation::empty(np),
                    stats,
                };
            }
        }
    }

    // Removal propagation in waves (lines 11-14 of Fig. 4). Per wave, the
    // decrements implied by the removed nodes are computed in parallel
    // against the wave-start membership (pure reads of `member` and the
    // oracle), then applied in (edge, x) order.
    while !wave.is_empty() {
        let mut removed_per_u: Vec<Vec<NodeId>> = vec![Vec::new(); np];
        for &(u, y) in &wave {
            removed_per_u[u.index()].push(y);
        }
        // Pattern edges whose target lost candidates this wave.
        let active: Vec<usize> = (0..ne)
            .filter(|&ei| !removed_per_u[edges[ei].to.index()].is_empty())
            .collect();
        if gpm_obs::enabled() {
            let m = metrics();
            m.waves.inc();
            // Each active edge scans the full `mat(from)` membership row.
            m.membership_scans.add((active.len() * nv) as u64);
        }
        let deltas: Vec<Vec<(u32, u32)>> = exec.map_tasks(active.len() * n_chunks, nv, |ti| {
            let e = &edges[active[ti / n_chunks]];
            let ci = ti % n_chunks;
            let parent = e.from.index();
            let removed = &removed_per_u[e.to.index()];
            let (start, end) = chunk_range(ci, chunk_len, nv);
            let mut out: Vec<(u32, u32)> = Vec::new();
            for (offset, &is_member) in member[parent][start..end].iter().enumerate() {
                if !is_member {
                    continue;
                }
                let x = start + offset;
                let xv = NodeId::new(x as u32);
                let mut d = 0u32;
                for &y in removed {
                    if oracle.within(graph, xv, y, e.bound) {
                        d += 1;
                    }
                }
                if d > 0 {
                    out.push((x as u32, d));
                }
            }
            out
        });
        let mut next: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for (ti, chunk_deltas) in deltas.into_iter().enumerate() {
            let ei = active[ti / n_chunks];
            let e = &edges[ei];
            let parent = e.from.index();
            for (x, d) in chunk_deltas {
                let x = x as usize;
                if !member[parent][x] {
                    // Removed earlier in this merge pass (through another
                    // edge); its counters no longer matter.
                    continue;
                }
                stats.counter_decrements += d as usize;
                debug_assert!(counters[ei][x] >= d, "witness counter underflow");
                counters[ei][x] -= d;
                if counters[ei][x] == 0 {
                    member[parent][x] = false;
                    live_count[parent] -= 1;
                    stats.removed_candidates += 1;
                    next.push((e.from, NodeId::new(x as u32)));
                    if live_count[parent] == 0 {
                        stats.failed_early = true;
                        return MatchOutcome {
                            relation: MatchRelation::empty(np),
                            stats,
                        };
                    }
                }
            }
        }
        wave = next;
    }

    // Collect the surviving candidates (lines 16-18).
    let sets: Vec<Vec<NodeId>> = member
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(_x, &alive)| alive)
                .map(|(x, &_alive)| NodeId::new(x as u32))
                .collect()
        })
        .collect();
    MatchOutcome {
        relation: MatchRelation::from_sets(sets),
        stats,
    }
}

/// The data-node range of chunk `ci`, clamped to `[0, nv]` at both ends:
/// with `chunk_len = ceil(nv / n_chunks)`, trailing chunks can start past
/// `nv` and must degenerate to empty ranges (not out-of-bounds slices).
/// Shared by the counter-initialisation and wave-delta tasks so the two
/// phases can never disagree on chunk boundaries.
#[inline]
fn chunk_range(ci: usize, chunk_len: usize, nv: usize) -> (usize, usize) {
    let start = (ci * chunk_len).min(nv);
    let end = (start + chunk_len).min(nv);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_distance::{BfsOracle, DistanceMatrix, TwoHopOracle};
    use gpm_graph::{
        Attributes, CmpOp, DataGraphBuilder, EdgeBound, PatternGraphBuilder, Predicate,
    };

    fn pn(i: u32) -> PatternNodeId {
        PatternNodeId::new(i)
    }

    fn dn(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// The drug-trafficking example of Fig. 1: pattern P0 and data graph G0.
    ///
    /// G0: boss B oversees AMs A1..Am; Am doubles as the secretary S; the
    /// AMs supervise a small hierarchy of field workers W, who report back.
    fn example_1_1(m: usize) -> (DataGraph, PatternGraph) {
        let mut g = DataGraph::new();
        let b = g.add_node(Attributes::labeled("B"));
        let mut ams = Vec::new();
        for i in 0..m {
            // The last AM is also the secretary: it carries both roles.
            let attrs = if i == m - 1 {
                Attributes::labeled("AM").with("secretary", true)
            } else {
                Attributes::labeled("AM")
            };
            let am = g.add_node(attrs);
            g.add_edge(b, am).unwrap();
            ams.push(am);
        }
        // Field-worker chains of depth 3 under the first AM, depth 1 under
        // the others; everyone reports back to an AM (so FW nodes have
        // outgoing edges, as P0 requires via the FW -> AM edge).
        let mut workers = Vec::new();
        for (i, &am) in ams.iter().enumerate() {
            let depth = if i == 0 { 3 } else { 1 };
            let mut prev = am;
            for _ in 0..depth {
                let w = g.add_node(Attributes::labeled("FW"));
                g.add_edge(prev, w).unwrap();
                workers.push(w);
                prev = w;
            }
            g.add_edge(prev, am).unwrap();
        }
        // The secretary reaches the top-level worker of the first AM in 1 hop.
        g.add_edge(*ams.last().unwrap(), workers[0]).unwrap();

        let mut p = PatternGraph::new();
        let pb = p.add_named_node("B", Predicate::label("B"));
        let pam = p.add_named_node("AM", Predicate::label("AM"));
        let ps = p.add_named_node(
            "S",
            Predicate::label("AM").and("secretary", CmpOp::Eq, true),
        );
        let pfw = p.add_named_node("FW", Predicate::label("FW"));
        p.add_edge(pb, pam, EdgeBound::ONE).unwrap();
        p.add_edge(pb, ps, EdgeBound::ONE).unwrap();
        p.add_edge(pam, pfw, EdgeBound::Hops(3)).unwrap();
        p.add_edge(ps, pfw, EdgeBound::ONE).unwrap();
        p.add_edge(pfw, pam, EdgeBound::Hops(3)).unwrap();
        (g, p)
    }

    #[test]
    fn empty_pattern_matches_trivially() {
        let g = DataGraph::new();
        let p = PatternGraph::new();
        let out = bounded_simulation(&p, &g);
        assert_eq!(out.relation.pattern_node_count(), 0);
        assert!(!out.stats.failed_early);
    }

    #[test]
    fn single_node_pattern() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("A2")
            .node("A2", Attributes::labeled("A"))
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .build()
            .unwrap();
        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
        assert_eq!(out.relation.matches_of(pn(0)).len(), 2);

        let (p2, _) = PatternGraphBuilder::new()
            .labeled_node("Z")
            .build()
            .unwrap();
        let out2 = bounded_simulation(&p2, &g);
        assert!(!out2.is_match(&p2));
        assert!(out2.stats.failed_early);
    }

    #[test]
    fn simple_bounded_edge() {
        // a -> b -> c, pattern A -[2]-> C matches; with bound 1 it does not.
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .path(&["A", "B", "C"])
            .build()
            .unwrap();
        let (p2, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 2u32)
            .build()
            .unwrap();
        let out = bounded_simulation(&p2, &g);
        assert!(out.is_match(&p2));
        assert_eq!(out.relation.matches_of(pn(0)), &[dn(0)]);
        assert_eq!(out.relation.matches_of(pn(1)), &[dn(2)]);

        let (p1, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 1u32)
            .build()
            .unwrap();
        let out = bounded_simulation(&p1, &g);
        assert!(!out.is_match(&p1));
        assert!(out.relation.is_empty());
    }

    #[test]
    fn unbounded_edge_uses_reachability() {
        // a -> b -> c -> d; pattern A -*-> D.
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .labeled_node("D")
            .path(&["A", "B", "C", "D"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("D")
            .unbounded_edge("A", "D")
            .build()
            .unwrap();
        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
    }

    #[test]
    fn nonempty_path_requirement_on_cycles() {
        // Pattern A -[1]-> A requires a data node labelled A with an edge to
        // a node labelled A: a self-loop qualifies, an isolated node doesn't.
        let mut g = DataGraph::new();
        let a0 = g.add_node(Attributes::labeled("A"));
        let _a1 = g.add_node(Attributes::labeled("A"));
        g.add_edge(a0, a0).unwrap();

        let mut p = PatternGraph::new();
        let ua = p.add_node(Predicate::label("A"));
        let ub = p.add_node(Predicate::label("A"));
        p.add_edge(ua, ub, EdgeBound::ONE).unwrap();

        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
        // Only the self-loop node can match the source; both can match the sink.
        assert_eq!(out.relation.matches_of(ua), &[a0]);
        assert!(out.relation.contains(ub, a0));
    }

    #[test]
    fn example_1_1_matches_expected_nodes() {
        let (g, p) = example_1_1(4);
        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p), "P0 should match G0");
        // B matches only the boss.
        assert_eq!(out.relation.matches_of(pn(0)), &[dn(0)]);
        // AM matches all the A_i (the S pattern node maps to the AM that is
        // also the secretary).
        assert_eq!(out.relation.matches_of(pn(1)).len(), 4);
        assert_eq!(out.relation.matches_of(pn(2)).len(), 1);
        // Every FW node is matched to the FW pattern node.
        let fw_nodes = g
            .nodes()
            .filter(|&v| g.attributes(v).label() == Some("FW"))
            .count();
        assert_eq!(out.relation.matches_of(pn(3)).len(), fw_nodes);
        // The relation satisfies the definition.
        let m = DistanceMatrix::build(&g);
        assert!(out.relation.is_valid_match(&p, &g, &m));
    }

    #[test]
    fn oracles_agree_on_example() {
        let (g, p) = example_1_1(5);
        let matrix = DistanceMatrix::build(&g);
        let bfs = BfsOracle::new();
        let two_hop = TwoHopOracle::build(&g);
        let a = bounded_simulation_with_oracle(&p, &g, &matrix);
        let b = bounded_simulation_with_oracle(&p, &g, &bfs);
        let c = bounded_simulation_with_oracle(&p, &g, &two_hop);
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.relation, c.relation);
    }

    #[test]
    fn removing_critical_edge_breaks_match() {
        // Mirrors Example 2.2(3): dropping the only witness edge kills the match.
        let (mut g, names) = DataGraphBuilder::new()
            .labeled_node("CS")
            .labeled_node("Bio")
            .labeled_node("Soc")
            .path(&["CS", "Bio", "Soc"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("CS")
            .labeled_node("Soc")
            .edge("CS", "Soc", 3u32)
            .build()
            .unwrap();
        assert!(bounded_simulation(&p, &g).is_match(&p));
        g.remove_edge(names["CS"], names["Bio"]).unwrap();
        let out = bounded_simulation(&p, &g);
        assert!(!out.is_match(&p));
        assert!(out.relation.is_empty());
    }

    #[test]
    fn predicates_filter_candidates() {
        let mut g = DataGraph::new();
        let good = g.add_node(Attributes::labeled("Music").with("rate", 4.8));
        let bad = g.add_node(Attributes::labeled("Music").with("rate", 2.0));
        let target = g.add_node(Attributes::labeled("People"));
        g.add_edge(good, target).unwrap();
        g.add_edge(bad, target).unwrap();

        let mut p = PatternGraph::new();
        let u0 = p.add_node(Predicate::label("Music").and("rate", CmpOp::Gt, 4.5));
        let u1 = p.add_node(Predicate::label("People"));
        p.add_edge(u0, u1, EdgeBound::Hops(2)).unwrap();

        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
        assert_eq!(out.relation.matches_of(u0), &[good]);
        assert_eq!(out.relation.matches_of(u1), &[target]);
    }

    #[test]
    fn stats_are_populated() {
        let (g, p) = example_1_1(3);
        let out = bounded_simulation(&p, &g);
        assert!(out.stats.initial_candidates > 0);
        assert!(!out.stats.failed_early);
        // The out-degree-zero pre-filter plus refinement removed nothing
        // essential, but some removals/decrements may have happened; just
        // check consistency.
        assert!(out.stats.removed_candidates <= out.stats.initial_candidates);
    }

    #[test]
    fn chunk_tails_past_node_count_are_empty_not_panics() {
        // Regression: with `chunk_len = ceil(nv / n_chunks)`, trailing chunk
        // starts can exceed `nv` (e.g. nv = 101, 32 chunks of 4 ⇒ chunk 26
        // starts at 104); they must degenerate to empty ranges. Build a
        // 101-node graph with enough refinement work to reach the wave loop
        // and force a high chunk count.
        use gpm_exec::{Executor, Parallelism};
        let mut g = DataGraph::new();
        for i in 0..101u32 {
            let label = if i % 2 == 0 { "A" } else { "B" };
            g.add_node(Attributes::labeled(label));
        }
        for i in 0..100u32 {
            g.add_edge(dn(i), dn(i + 1)).unwrap();
        }
        let mut p = PatternGraph::new();
        let ua = p.add_node(Predicate::label("A"));
        let ub = p.add_node(Predicate::label("B"));
        p.add_edge(ua, ub, EdgeBound::ONE).unwrap();
        p.add_edge(ub, ua, EdgeBound::ONE).unwrap();

        let sequential = bounded_simulation(&p, &g);
        for threads in [2usize, 8] {
            let exec = Executor::new(Parallelism::new(threads).with_sequential_threshold(0));
            let parallel = bounded_simulation_on(&p, &g, &exec);
            assert_eq!(parallel, sequential, "diverged at {threads} threads");
        }
    }

    #[test]
    fn maximality_every_surviving_pair_is_necessary() {
        // For a small example, check that the computed relation is maximal:
        // adding any non-member candidate pair that satisfies the predicate
        // creates an invalid relation.
        let (g, p) = example_1_1(3);
        let out = bounded_simulation(&p, &g);
        let m = DistanceMatrix::build(&g);
        assert!(out.relation.is_valid_match(&p, &g, &m));
        for u in p.node_ids() {
            for v in g.nodes() {
                if out.relation.contains(u, v) || !g.satisfies(v, p.predicate(u)) {
                    continue;
                }
                let mut bigger = out.relation.clone();
                bigger.insert(u, v);
                assert!(
                    !bigger.is_valid_match(&p, &g, &m),
                    "adding ({u}, {v}) should violate the match conditions"
                );
            }
        }
    }
}
