//! # gpm-iso
//!
//! Subgraph-isomorphism baselines for the evaluation of Exp-1:
//!
//! * [`ullmann`] — `SubIso`, Ullmann's backtracking algorithm with candidate
//!   refinement (the paper's `SubIso` baseline, Ullmann 1976);
//! * [`vf2`] — the VF2 algorithm with the standard feasibility rules
//!   (Cordella et al.), "a widely used algorithm for efficiently identifying
//!   isomorphic subgraphs".
//!
//! Both enumerate **injective embeddings** of the pattern into the data graph
//! where every pattern edge must be witnessed by a *direct* data edge and
//! every pattern node's predicate must be satisfied — i.e. the traditional
//! semantics the paper contrasts with bounded simulation. Pattern-edge bounds
//! are ignored (treated as 1), exactly like the paper's comparison, which
//! sets `k = 1` "to favor SubIso".
//!
//! Because the number of embeddings can be exponential, enumeration is capped
//! by [`IsoConfig::max_embeddings`] and [`IsoConfig::max_steps`]; the outcome
//! records whether a cap was hit.
//!
//! ## Example
//!
//! ```
//! use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};
//! use gpm_iso::{subgraph_isomorphism_vf2, IsoConfig};
//!
//! let (g, _) = DataGraphBuilder::new()
//!     .labeled_node("a")
//!     .labeled_node("b")
//!     .labeled_node("c")
//!     .path(&["a", "b", "c"])
//!     .build()
//!     .unwrap();
//! let (p, _) = PatternGraphBuilder::new()
//!     .labeled_node("a")
//!     .labeled_node("b")
//!     .edge("a", "b", 1u32)
//!     .build()
//!     .unwrap();
//!
//! let outcome = subgraph_isomorphism_vf2(&p, &g, &IsoConfig::default());
//! assert_eq!(outcome.embeddings.len(), 1); // exactly one a -> b edge
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod embedding;
pub mod ullmann;
pub mod vf2;

pub use candidates::CandidateSets;
pub use embedding::{Embedding, IsoConfig, IsoOutcome};
pub use ullmann::subgraph_isomorphism_ullmann;
pub use vf2::subgraph_isomorphism_vf2;
