//! Strongly-typed node identifiers.
//!
//! Data-graph nodes and pattern-graph nodes live in different index spaces;
//! mixing them up is a classic source of silent bugs in matching code (a
//! match is a relation `S ⊆ V_p × V`). Two distinct newtypes keep the type
//! system on our side while still being `Copy` and as cheap as a `u32`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`crate::DataGraph`].
///
/// Node ids are dense indices assigned in insertion order, starting at 0.
/// They are stable: removing edges never invalidates a `NodeId` (node removal
/// is not supported by the data model, matching the paper where updates are
/// edge insertions/deletions only).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a node in a [`crate::PatternGraph`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PatternNodeId(pub u32);

impl NodeId {
    /// Create a node id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index as `usize`, for direct indexing into per-node tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl PatternNodeId {
    /// Create a pattern node id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        PatternNodeId(index)
    }

    /// The raw index as `usize`, for direct indexing into per-node tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl From<u32> for PatternNodeId {
    #[inline]
    fn from(v: u32) -> Self {
        PatternNodeId(v)
    }
}

impl From<PatternNodeId> for u32 {
    #[inline]
    fn from(v: PatternNodeId) -> Self {
        v.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for PatternNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for PatternNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn pattern_node_id_roundtrip() {
        let id = PatternNodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(u32::from(id), 7);
        assert_eq!(PatternNodeId::from(7u32), id);
    }

    #[test]
    fn display_distinguishes_spaces() {
        assert_eq!(NodeId::new(3).to_string(), "v3");
        assert_eq!(PatternNodeId::new(3).to_string(), "u3");
        assert_eq!(format!("{:?}", NodeId::new(3)), "v3");
        assert_eq!(format!("{:?}", PatternNodeId::new(3)), "u3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(PatternNodeId::new(0) < PatternNodeId::new(10));
    }

    #[test]
    fn hashable_in_sets() {
        let mut s = HashSet::new();
        s.insert(NodeId::new(1));
        s.insert(NodeId::new(1));
        s.insert(NodeId::new(2));
        assert_eq!(s.len(), 2);
    }
}
