//! Reusable match-state repair from a precomputed `AFF1`.
//!
//! `Match−`/`Match+`/`IncMatch` each bundle three steps: mutate the graph,
//! maintain the distance matrix (producing `AFF1`), and repair the match
//! state from the affected sources. A continuous-query service maintaining
//! *many* patterns over one graph wants to pay the first two steps — by far
//! the expensive ones — **once per update batch** and replay only the third,
//! cheap step per registered query. This module exposes that third step on
//! its own: [`repair_match_state`] takes the `AFF1` produced by one shared
//! `UpdateBM` run and repairs one query's [`MatchState`] against the
//! already-updated matrix.
//!
//! The coverage rules mirror the per-query algorithms:
//!
//! * distance **increases** are repaired with the removal propagation of
//!   `Match−`, which supports arbitrary (cyclic) patterns;
//! * distance **decreases** are repaired with the addition propagation of
//!   `Match+`, which requires a DAG pattern — a cyclic pattern whose `AFF1`
//!   contains decreases errors with [`GraphError::PatternNotAcyclic`]
//!   (callers fall back to recomputation, as `IncrementalMatcher` does).

use crate::affected::Aff2;
use crate::delete::process_removals;
use crate::insert::process_additions;
use crate::state::MatchState;
use gpm_distance::{AffectedPairs, DistanceOracle};
use gpm_graph::{DataGraph, GraphError, NodeId, PatternGraph};
use rustc_hash::FxHashSet;
use std::sync::{Arc, OnceLock};

/// Observability handles for per-query repair (scope `"incremental"`).
/// All counters are deterministic; `aff1_relevant` uses the same
/// "touches a matched node (before or after)" rule as `exp_stats_aff_gr`,
/// so the experiment and the live service report from one code path.
pub(crate) struct RepairMetrics {
    pub repairs: Arc<gpm_obs::Counter>,
    pub verifications: Arc<gpm_obs::Counter>,
    pub aff1_pairs: Arc<gpm_obs::Counter>,
    pub aff1_relevant: Arc<gpm_obs::Counter>,
    pub aff2_pairs: Arc<gpm_obs::Counter>,
    pub dag_rejections: Arc<gpm_obs::Counter>,
    pub recompute_fallbacks: Arc<gpm_obs::Counter>,
    pub aff2_size: Arc<gpm_obs::Histogram>,
    pub repair_ns: Arc<gpm_obs::Histogram>,
}

pub(crate) fn metrics() -> &'static RepairMetrics {
    static METRICS: OnceLock<RepairMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let scope = gpm_obs::registry().scope("incremental");
        RepairMetrics {
            repairs: scope.counter("repairs"),
            verifications: scope.counter("verifications"),
            aff1_pairs: scope.counter("aff1_pairs"),
            aff1_relevant: scope.counter("aff1_relevant"),
            aff2_pairs: scope.counter("aff2_pairs"),
            dag_rejections: scope.counter("dag_rejections"),
            recompute_fallbacks: scope.counter("recompute_fallbacks"),
            aff2_size: scope.histogram("aff2_size"),
            repair_ns: scope.histogram("repair_ns"),
        }
    })
}

/// The result of one per-query repair pass: the match-pair delta and the
/// verification work it took.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// `AFF2`: the match pairs this repair added or removed.
    pub aff2: Aff2,
    /// Candidate re-verifications performed (the per-query work proxy).
    pub verifications: usize,
}

/// The affected sources of an `AFF1`, split by direction of change:
/// `(increased, decreased)` outgoing-distance source sets.
pub fn split_aff1_sources(aff1: &AffectedPairs) -> (FxHashSet<NodeId>, FxHashSet<NodeId>) {
    let mut increased = FxHashSet::default();
    let mut decreased = FxHashSet::default();
    for p in aff1.iter() {
        if p.increased() {
            increased.insert(p.source);
        } else {
            decreased.insert(p.source);
        }
    }
    (increased, decreased)
}

/// Repairs one query's match state from a shared, precomputed `AFF1`.
///
/// `oracle` must already reflect the updates that produced `aff1` (i.e. the
/// caller ran the oracle's `apply_*` maintenance first), and `graph` must be
/// the updated graph the oracle answers for. Removals are processed before
/// additions, exactly as `IncMatch` does, so the repaired state equals a
/// from-scratch recomputation on the updated graph.
///
/// Errors with [`GraphError::PatternNotAcyclic`] — leaving `state`
/// untouched — when `aff1` contains distance decreases and `pattern` is
/// cyclic (the combination upward propagation cannot handle; see the module
/// docs of [`crate::insert`]).
pub fn repair_match_state<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
    state: &mut MatchState,
    aff1: &AffectedPairs,
) -> Result<RepairOutcome, GraphError> {
    let m = metrics();
    let span = m.repair_ns.span();
    // Matched nodes before the repair — half of the `aff1_relevant` rule;
    // only materialised while observability is on.
    let matched_before: Option<FxHashSet<NodeId>> =
        gpm_obs::enabled().then(|| state.relation().iter_pairs().map(|(_, v)| v).collect());

    let (increased, decreased) = split_aff1_sources(aff1);
    if !decreased.is_empty() {
        if let Err(err) = pattern.require_dag() {
            m.dag_rejections.inc();
            return Err(err);
        }
    }

    let mut aff2 = Aff2::default();
    let mut verifications = 0usize;
    process_removals(
        pattern,
        graph,
        oracle,
        state,
        &increased,
        &mut aff2,
        &mut verifications,
    );
    let mut additions = Aff2::default();
    process_additions(
        pattern,
        graph,
        oracle,
        state,
        &decreased,
        &mut additions,
        &mut verifications,
    );
    aff2.merge(additions);
    if let Some(mut matched) = matched_before {
        matched.extend(state.relation().iter_pairs().map(|(_, v)| v));
        let relevant = aff1
            .iter()
            .filter(|p| matched.contains(&p.source) || matched.contains(&p.sink))
            .count();
        m.repairs.inc();
        m.verifications.add(verifications as u64);
        m.aff1_pairs.add(aff1.len() as u64);
        m.aff1_relevant.add(relevant as u64);
        m.aff2_pairs.add(aff2.len() as u64);
        m.aff2_size.record(aff2.len() as u64);
    }
    span.finish();
    Ok(RepairOutcome {
        aff2,
        verifications,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_datagen::{random_graph, random_updates, RandomGraphConfig, UpdateStreamConfig};
    use gpm_distance::{update_matrix_batch, EdgeUpdate};
    use gpm_graph::{PatternGraphBuilder, Predicate};

    fn dag_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .node("z", Predicate::label("a2"))
            .edge("x", "y", 2u32)
            .edge("y", "z", 3u32)
            .build()
            .unwrap();
        p
    }

    fn cyclic_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .edge("x", "y", 2u32)
            .edge("y", "x", 2u32)
            .build()
            .unwrap();
        p
    }

    /// One shared AFF1 repairs several independent states to the same result
    /// a from-scratch run produces — the service-layer contract.
    #[test]
    fn shared_aff1_repairs_multiple_states() {
        for seed in 0..6u64 {
            let mut g = random_graph(&RandomGraphConfig::new(40, 90, 5).with_seed(seed));
            let patterns: Vec<PatternGraph> = vec![dag_pattern(), dag_pattern()];
            let mut m = gpm_distance::DistanceMatrix::build(&g);
            let mut states: Vec<MatchState> = patterns
                .iter()
                .map(|p| MatchState::initialise(p, &g, &m))
                .collect();

            let updates = random_updates(&g, &UpdateStreamConfig::mixed(20).with_seed(seed + 50));
            let applied: Vec<EdgeUpdate> = updates
                .iter()
                .filter(|u| u.apply(&mut g))
                .copied()
                .collect();
            let aff1 = update_matrix_batch(&g, &mut m, &applied);

            for (p, s) in patterns.iter().zip(states.iter_mut()) {
                repair_match_state(p, &g, &m, s, &aff1).unwrap();
                let recomputed = bounded_simulation_with_oracle(p, &g, &m);
                assert_eq!(s.relation(), recomputed.relation, "seed {seed}");
            }
        }
    }

    #[test]
    fn cyclic_pattern_with_decreases_is_rejected_untouched() {
        let mut g = random_graph(&RandomGraphConfig::new(30, 50, 4).with_seed(3));
        let p = cyclic_pattern();
        let mut m = gpm_distance::DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        let before = s.clone();

        let updates = random_updates(&g, &UpdateStreamConfig::insertions(5).with_seed(4));
        let applied: Vec<EdgeUpdate> = updates
            .iter()
            .filter(|u| u.apply(&mut g))
            .copied()
            .collect();
        let aff1 = update_matrix_batch(&g, &mut m, &applied);
        if aff1.iter().any(|pr| !pr.increased()) {
            let err = repair_match_state(&p, &g, &m, &mut s, &aff1);
            assert_eq!(err.unwrap_err(), GraphError::PatternNotAcyclic);
            assert_eq!(s, before, "failed repair must not touch the state");
        }
    }

    /// Deletion-only batches repair cyclic patterns incrementally.
    #[test]
    fn cyclic_pattern_with_deletions_only_is_repaired() {
        for seed in 0..4u64 {
            let mut g = random_graph(&RandomGraphConfig::new(30, 70, 4).with_seed(seed));
            let p = cyclic_pattern();
            let mut m = gpm_distance::DistanceMatrix::build(&g);
            let mut s = MatchState::initialise(&p, &g, &m);

            let updates =
                random_updates(&g, &UpdateStreamConfig::deletions(10).with_seed(seed + 9));
            let applied: Vec<EdgeUpdate> = updates
                .iter()
                .filter(|u| u.apply(&mut g))
                .copied()
                .collect();
            let aff1 = update_matrix_batch(&g, &mut m, &applied);
            repair_match_state(&p, &g, &m, &mut s, &aff1).unwrap();
            let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
            assert_eq!(s.relation(), recomputed.relation, "seed {seed}");
        }
    }

    /// The repair entry point is generic over the oracle: driving it with the
    /// incremental 2-hop labeling produces the same states as the matrix —
    /// including the PR 5 cyclic-pattern deletion-only path, which must stay
    /// incremental (no `PatternNotAcyclic` error) on a non-matrix backend.
    #[test]
    fn repair_with_two_hop_oracle_matches_matrix() {
        use gpm_distance::{DistanceMatrix, DistanceOracle as _, IncrementalTwoHop};
        use gpm_exec::Executor;

        let sorted = |a: &AffectedPairs| {
            let mut v: Vec<_> = a.iter().map(|p| (p.source, p.sink, p.old, p.new)).collect();
            v.sort_unstable();
            v
        };
        for seed in 0..4u64 {
            let mut g = random_graph(&RandomGraphConfig::new(28, 64, 4).with_seed(seed));
            let exec = Executor::sequential();
            let p_dag = dag_pattern();
            let p_cyc = cyclic_pattern();
            let mut matrix = DistanceMatrix::build(&g);
            let mut two_hop = IncrementalTwoHop::build_with(&g, &exec);
            let mut s_dag = MatchState::initialise(&p_dag, &g, &two_hop);
            let mut s_cyc = MatchState::initialise(&p_cyc, &g, &two_hop);

            // Deletions only, so even the cyclic pattern repairs incrementally.
            let updates =
                random_updates(&g, &UpdateStreamConfig::deletions(10).with_seed(seed + 70));
            let applied: Vec<EdgeUpdate> = updates
                .iter()
                .filter(|u| u.apply(&mut g))
                .copied()
                .collect();
            let aff_matrix = matrix.apply_batch(&g, &applied, &exec);
            let aff_two_hop = two_hop.apply_batch(&g, &applied, &exec);
            assert_eq!(sorted(&aff_matrix), sorted(&aff_two_hop), "seed {seed}");

            repair_match_state(&p_dag, &g, &two_hop, &mut s_dag, &aff_two_hop).unwrap();
            repair_match_state(&p_cyc, &g, &two_hop, &mut s_cyc, &aff_two_hop).unwrap();
            for (p, s) in [(&p_dag, &s_dag), (&p_cyc, &s_cyc)] {
                let recomputed = bounded_simulation_with_oracle(p, &g, &matrix);
                assert_eq!(s.relation(), recomputed.relation, "seed {seed}");
            }
        }
    }

    #[test]
    fn split_sources_partitions_by_direction() {
        let aff1 = AffectedPairs {
            pairs: vec![
                gpm_distance::AffectedPair {
                    source: NodeId::new(0),
                    sink: NodeId::new(1),
                    old: 2,
                    new: 5,
                },
                gpm_distance::AffectedPair {
                    source: NodeId::new(3),
                    sink: NodeId::new(1),
                    old: 5,
                    new: 2,
                },
            ],
        };
        let (inc, dec) = split_aff1_sources(&aff1);
        assert!(inc.contains(&NodeId::new(0)) && inc.len() == 1);
        assert!(dec.contains(&NodeId::new(3)) && dec.len() == 1);
    }
}
