//! Match deltas and subscriptions — how result changes leave the service.
//!
//! Every update batch ends with one [`MatchDelta`] per registered query
//! whose *visible* result changed: the pairs that entered and left the
//! query's match relation. Deltas are self-describing (query id + epoch) and
//! fold: replaying a query's delta stream over an empty relation, in epoch
//! order, reconstructs its current result — the property the differential
//! test suite leans on.
//!
//! Deltas follow the paper's `∅` convention for the visible result: when a
//! pattern node loses its last match the *entire* relation empties, so the
//! delta removes every pair; when a later insertion revives the match, the
//! delta re-adds the full relation.

use gpm_core::MatchRelation;
use gpm_graph::{NodeId, PatternNodeId};
use serde::{Deserialize, Serialize};
use std::sync::mpsc;

/// A stable handle for a registered query. Ids are never reused, so a
/// delta's origin stays unambiguous across deregistrations.
#[derive(
    Copy, Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct QueryId(pub(crate) u64);

impl QueryId {
    /// The raw id value.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from a raw id value.
    ///
    /// This is how ids cross process boundaries (the durable manifest, the
    /// `gpm-net` wire protocol): the service itself never invents ids this
    /// way, and calls with an id that was never issued simply address an
    /// unknown query (`None`/`false` from every engine entry point).
    pub fn from_raw(id: u64) -> Self {
        QueryId(id)
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The change to one query's visible result produced by one update batch
/// (or by a subscription snapshot / lazy reactivation catch-up).
///
/// Both pair lists are sorted by `(pattern node, data node)` and disjoint,
/// so equal streams are bit-identical — the determinism suite compares them
/// directly across thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchDelta {
    /// The query this delta belongs to.
    pub query: QueryId,
    /// The batch sequence number current when this delta was produced.
    /// Subscription snapshots and lazy-reactivation catch-up deltas carry
    /// the epoch of the moment they were emitted (0 only if that moment
    /// precedes the first batch), so a stream's epochs are non-decreasing
    /// but a snapshot is identified by its position (first in the stream),
    /// not by its epoch value.
    pub epoch: u64,
    /// Pairs that entered the visible result.
    pub added: Vec<(PatternNodeId, NodeId)>,
    /// Pairs that left the visible result.
    pub removed: Vec<(PatternNodeId, NodeId)>,
}

impl MatchDelta {
    /// The delta that turns `old` into `new`, with sorted pair lists.
    pub fn between(query: QueryId, epoch: u64, old: &MatchRelation, new: &MatchRelation) -> Self {
        debug_assert_eq!(old.pattern_node_count(), new.pattern_node_count());
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for ui in 0..new.pattern_node_count() {
            let u = PatternNodeId::new(ui as u32);
            let (olds, news) = (old.matches_of(u), new.matches_of(u));
            // Both sides are sorted and deduplicated: one merge walk.
            let (mut i, mut j) = (0usize, 0usize);
            while i < olds.len() || j < news.len() {
                match (olds.get(i), news.get(j)) {
                    (Some(&o), Some(&n)) if o == n => {
                        i += 1;
                        j += 1;
                    }
                    (Some(&o), Some(&n)) if o < n => {
                        removed.push((u, o));
                        i += 1;
                    }
                    (Some(_), Some(&n)) => {
                        added.push((u, n));
                        j += 1;
                    }
                    (Some(&o), None) => {
                        removed.push((u, o));
                        i += 1;
                    }
                    (None, Some(&n)) => {
                        added.push((u, n));
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        }
        MatchDelta {
            query,
            epoch,
            added,
            removed,
        }
    }

    /// A snapshot delta: the full relation as additions (what a fresh
    /// subscriber receives so that folding starts from `∅`).
    pub fn snapshot(query: QueryId, epoch: u64, relation: &MatchRelation) -> Self {
        MatchDelta::between(
            query,
            epoch,
            &MatchRelation::empty(relation.pattern_node_count()),
            relation,
        )
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Number of changed pairs.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Folds this delta into `relation` (removals first, then additions).
    pub fn apply_to(&self, relation: &mut MatchRelation) {
        for &(u, v) in &self.removed {
            relation.remove(u, v);
        }
        for &(u, v) in &self.added {
            relation.insert(u, v);
        }
    }
}

/// Folds a delta stream over an empty relation; `pattern_nodes` sizes the
/// relation. Deltas must be in emission order.
pub fn fold_deltas<'a, I>(pattern_nodes: usize, deltas: I) -> MatchRelation
where
    I: IntoIterator<Item = &'a MatchDelta>,
{
    let mut rel = MatchRelation::empty(pattern_nodes);
    for d in deltas {
        d.apply_to(&mut rel);
    }
    rel
}

/// A consumer handle for one query's delta stream.
///
/// Created by `MatchService::subscribe`; the first delta in the stream is a
/// [`MatchDelta::snapshot`] of the result at subscribe time, so folding the
/// stream from an empty relation always reproduces the query's current
/// result. The channel closes when the query is deregistered or the service
/// is dropped.
#[derive(Debug)]
pub struct Subscription {
    pub(crate) query: QueryId,
    pub(crate) rx: mpsc::Receiver<MatchDelta>,
}

impl Subscription {
    /// The query this subscription follows.
    pub fn query(&self) -> QueryId {
        self.query
    }

    /// Drains every delta currently buffered, in emission order, without
    /// blocking.
    pub fn drain(&self) -> Vec<MatchDelta> {
        self.rx.try_iter().collect()
    }

    /// Non-blocking single-delta poll, distinguishing "nothing buffered
    /// right now" from "the stream has ended" (query deregistered or the
    /// service dropped). Consumers that forward a subscription elsewhere —
    /// the `gpm-net` server pumps each wire subscriber's stream this way —
    /// need the distinction to propagate end-of-stream instead of spinning.
    pub fn poll(&self) -> SubscriptionPoll {
        match self.rx.try_recv() {
            Ok(delta) => SubscriptionPoll::Delta(delta),
            Err(mpsc::TryRecvError::Empty) => SubscriptionPoll::Empty,
            Err(mpsc::TryRecvError::Disconnected) => SubscriptionPoll::Closed,
        }
    }
}

/// One non-blocking observation of a [`Subscription`] (see
/// [`Subscription::poll`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubscriptionPoll {
    /// The next buffered delta, in emission order.
    Delta(MatchDelta),
    /// Nothing buffered; the stream is still live.
    Empty,
    /// The stream has ended: every buffered delta was drained and no more
    /// can arrive.
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PatternNodeId {
        PatternNodeId::new(i)
    }

    fn d(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn rel(sets: Vec<Vec<u32>>) -> MatchRelation {
        MatchRelation::from_sets(
            sets.into_iter()
                .map(|s| s.into_iter().map(NodeId::new).collect())
                .collect(),
        )
    }

    #[test]
    fn between_produces_sorted_disjoint_delta() {
        let old = rel(vec![vec![0, 1, 5], vec![2]]);
        let new = rel(vec![vec![1, 3, 5], vec![]]);
        let delta = MatchDelta::between(QueryId(7), 3, &old, &new);
        assert_eq!(delta.query, QueryId(7));
        assert_eq!(delta.epoch, 3);
        assert_eq!(delta.added, vec![(p(0), d(3))]);
        assert_eq!(delta.removed, vec![(p(0), d(0)), (p(1), d(2))]);
        assert_eq!(delta.len(), 3);

        // Applying the delta to `old` yields `new`.
        let mut folded = old.clone();
        delta.apply_to(&mut folded);
        assert_eq!(folded, new);
    }

    #[test]
    fn identical_relations_give_empty_delta() {
        let r = rel(vec![vec![1, 2], vec![3]]);
        let delta = MatchDelta::between(QueryId(0), 1, &r, &r);
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
    }

    #[test]
    fn snapshot_folds_from_empty() {
        let r = rel(vec![vec![0, 4], vec![1]]);
        let snap = MatchDelta::snapshot(QueryId(1), 0, &r);
        assert!(snap.removed.is_empty());
        let folded = fold_deltas(2, [&snap]);
        assert_eq!(folded, r);
    }

    #[test]
    fn fold_replays_a_stream() {
        let a = rel(vec![vec![0], vec![1]]);
        let b = rel(vec![vec![0, 2], vec![]]);
        let c = rel(vec![vec![2], vec![5]]);
        let d0 = MatchDelta::snapshot(QueryId(0), 0, &a);
        let d1 = MatchDelta::between(QueryId(0), 1, &a, &b);
        let d2 = MatchDelta::between(QueryId(0), 2, &b, &c);
        assert_eq!(fold_deltas(2, [&d0, &d1, &d2]), c);
    }

    #[test]
    fn query_id_display() {
        assert_eq!(QueryId(12).to_string(), "q12");
        assert_eq!(QueryId(12).value(), 12);
    }
}
