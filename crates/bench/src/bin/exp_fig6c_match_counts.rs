//! Fig. 6(c) — number of matches found by `Match` vs VF2 on the (simulated)
//! YouTube graph, for patterns P(|Vp|, |Ep|, 3) with |Vp| = |Ep| = 3..8.
//!
//! `Match` reports the size of the maximum match relation (|S|, i.e. matched
//! (pattern node, data node) pairs); VF2 reports the number of isomorphic
//! embeddings it enumerates (capped).

use gpm::{bounded_simulation_with_oracle, subgraph_isomorphism_vf2, Dataset, IsoConfig};
use gpm_bench::{patterns_for, HarnessArgs, Subject, Table};

fn main() {
    let args = HarnessArgs::from_env();
    let graph = Dataset::YouTube.generate(args.scale, args.seed);
    let subject = Subject::new(graph);
    println!(
        "simulated YouTube: |V| = {}, |E| = {}\n",
        subject.graph.node_count(),
        subject.graph.edge_count()
    );

    let mut table = Table::new(
        "Fig. 6(c): number of matches, Match vs VF2 (avg per pattern)",
        &["pattern", "Match |S|", "VF2 embeddings", "VF2 truncated"],
    );
    for size in 3..=8usize {
        let patterns = patterns_for(
            &subject.graph,
            size,
            size,
            3,
            args.patterns,
            args.seed + size as u64,
        );
        let mut match_pairs = 0usize;
        let mut vf2_embeddings = 0usize;
        let mut truncated = 0usize;
        for pattern in &patterns {
            let outcome = bounded_simulation_with_oracle(pattern, &subject.graph, &subject.matrix);
            match_pairs += outcome.relation.pair_count();
            let iso = subgraph_isomorphism_vf2(pattern, &subject.graph, &IsoConfig::default());
            vf2_embeddings += iso.count();
            if iso.truncated {
                truncated += 1;
            }
        }
        let n = patterns.len();
        table.row(vec![
            format!("({size},{size},3)"),
            (match_pairs / n).to_string(),
            (vf2_embeddings / n).to_string(),
            format!("{truncated}/{n}"),
        ]);
    }
    table.print();
    println!("paper reference: Match finds far more matches than VF2 in all cases (Fig. 6(c)).");
}
