//! Wire/in-process differential: a delta stream observed over the `gpm-net`
//! socket must be **bit-identical** to the stream an in-process
//! `Subscription` yields for the same service history — same snapshot, same
//! deltas, same order — at every thread count and on both oracle backends,
//! including a subscriber that joins mid-stream.
//!
//! The two runs share nothing but the scripted workload: one drives a
//! `MatchService` embedded in the test, the other drives an identical
//! service through a loopback server with real sockets, CRC frames and
//! JSON payloads in between.

use gpm::net::{NetClient, NetServer, ServerOptions};
use gpm::{
    random_graph, random_updates, EdgeUpdate, MatchDelta, MatchService, OracleBackend, Parallelism,
    PatternGraph, PatternGraphBuilder, Predicate, RandomGraphConfig, UpdateStreamConfig,
};

const QUERIES: usize = 3;
const BATCHES: usize = 6;
const MID_JOIN_AFTER: usize = 3; // batches applied before the late subscriber

fn base_graph() -> gpm::DataGraph {
    random_graph(&RandomGraphConfig::new(50, 160, 5).with_seed(11))
}

fn patterns() -> Vec<PatternGraph> {
    (0..QUERIES)
        .map(|i| {
            let (p, _) = PatternGraphBuilder::new()
                .node("x", Predicate::label(format!("a{i}")))
                .node("y", Predicate::label(format!("a{}", (i + 1) % 5)))
                .node("z", Predicate::label(format!("a{}", (i + 2) % 5)))
                .edge("x", "y", 2u32)
                .edge("y", "z", 3u32)
                .build()
                .unwrap();
            p
        })
        .collect()
}

/// The same scripted batches for every run: generated against an evolving
/// scratch copy, so each batch is valid at its position.
fn script() -> Vec<Vec<EdgeUpdate>> {
    let mut scratch = base_graph();
    (0..BATCHES)
        .map(|round| {
            let updates = random_updates(
                &scratch,
                &UpdateStreamConfig::mixed(20).with_seed(round as u64 + 5),
            );
            for u in &updates {
                u.apply(&mut scratch);
            }
            updates
        })
        .collect()
}

/// Per-query delta streams plus the mid-join stream, straight from an
/// embedded service.
fn run_inproc(backend: OracleBackend, threads: usize) -> (Vec<Vec<MatchDelta>>, Vec<MatchDelta>) {
    let mut svc = MatchService::with_backend(base_graph(), backend, Parallelism::new(threads));
    let ids: Vec<_> = patterns().into_iter().map(|p| svc.register(p)).collect();
    let subs: Vec<_> = ids.iter().map(|&id| svc.subscribe(id).unwrap()).collect();

    let mut mid = None;
    for (i, batch) in script().iter().enumerate() {
        if i == MID_JOIN_AFTER {
            mid = Some(svc.subscribe(ids[0]).unwrap());
        }
        svc.apply(batch);
    }
    let streams = subs.iter().map(|s| s.drain()).collect();
    let mid_stream = mid.expect("mid subscriber created").drain();
    (streams, mid_stream)
}

/// The same history through the network: loopback server, framed wire
/// protocol, one connection per subscriber.
fn run_wire(backend: OracleBackend, threads: usize) -> (Vec<Vec<MatchDelta>>, Vec<MatchDelta>) {
    let svc = MatchService::with_backend(base_graph(), backend, Parallelism::new(threads));
    let server = NetServer::bind("127.0.0.1:0", svc, ServerOptions::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let mut admin = NetClient::connect(addr).unwrap();
    let ids: Vec<u64> = patterns()
        .iter()
        .map(|p| admin.register(p).unwrap())
        .collect();
    let mut subs: Vec<_> = ids
        .iter()
        .map(|&q| NetClient::connect(addr).unwrap().subscribe(q).unwrap())
        .collect();

    let mut mid = None;
    for (i, batch) in script().iter().enumerate() {
        if i == MID_JOIN_AFTER {
            mid = Some(NetClient::connect(addr).unwrap().subscribe(ids[0]).unwrap());
        }
        admin.apply(batch).unwrap();
    }

    // Deregistering every query ends each stream with an explicit marker,
    // so collect_to_end terminates deterministically.
    for &q in &ids {
        assert!(admin.deregister(q).unwrap());
    }
    let streams = subs
        .iter_mut()
        .map(|s| s.collect_to_end().unwrap())
        .collect();
    let mid_stream = mid
        .expect("mid subscriber created")
        .collect_to_end()
        .unwrap();
    handle.shutdown();
    (streams, mid_stream)
}

#[test]
fn wire_streams_are_bit_identical_to_inprocess_streams() {
    for backend in [OracleBackend::Matrix, OracleBackend::TwoHop] {
        // The reference in-process run at one thread.
        let (ref_streams, ref_mid) = run_inproc(backend, 1);
        assert!(
            ref_streams.iter().any(|s| s.len() > 1),
            "workload too quiet to be a differential ({backend:?})"
        );
        assert!(
            !ref_mid.is_empty() && ref_mid[0].removed.is_empty(),
            "mid-join stream must start with its snapshot"
        );

        for threads in [1usize, 2, 8] {
            let (inproc, inproc_mid) = run_inproc(backend, threads);
            assert_eq!(
                inproc, ref_streams,
                "in-process streams changed with thread count ({backend:?}, {threads} threads)"
            );
            assert_eq!(inproc_mid, ref_mid);

            let (wire, wire_mid) = run_wire(backend, threads);
            assert_eq!(
                wire, ref_streams,
                "wire streams diverged from in-process ({backend:?}, {threads} threads)"
            );
            assert_eq!(
                wire_mid, ref_mid,
                "mid-join wire stream diverged ({backend:?}, {threads} threads)"
            );
        }
    }
}

#[test]
fn wire_snapshot_folds_to_the_live_result() {
    let svc = MatchService::with_backend(base_graph(), OracleBackend::Matrix, Parallelism::new(2));
    let server = NetServer::bind("127.0.0.1:0", svc, ServerOptions::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let mut admin = NetClient::connect(addr).unwrap();
    let ids: Vec<u64> = patterns()
        .iter()
        .map(|p| admin.register(p).unwrap())
        .collect();
    for batch in script().iter().take(3) {
        admin.apply(batch).unwrap();
    }

    // A late subscriber's folded stream equals the service's live result.
    let pattern_nodes = patterns()[0].node_count();
    let mut sub = NetClient::connect(addr).unwrap().subscribe(ids[0]).unwrap();
    let live = admin.result(ids[0]).unwrap().expect("registered query");
    let snapshot = sub.next().unwrap().expect("snapshot-first");
    let folded = gpm::fold_deltas(pattern_nodes, [&snapshot]);
    assert_eq!(folded, live, "snapshot did not reproduce the live result");
    handle.shutdown();
}
