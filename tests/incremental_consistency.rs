//! Cross-crate consistency of incremental matching: after any stream of
//! updates, the incrementally maintained match equals a from-scratch run of
//! `Match` on the updated graph (and the maintained distance matrix equals a
//! rebuilt one).

use gpm::{
    bounded_simulation_with_oracle, generate_pattern, random_updates, Dataset, DistanceMatrix,
    EdgeUpdate, IncrementalMatcher, PatternGenConfig, UpdateStreamConfig,
};

fn dag_pattern(graph: &gpm::DataGraph, seed: u64) -> gpm::PatternGraph {
    for attempt in 0..32 {
        let cfg = PatternGenConfig::new(4, 4, 3).with_seed(seed + attempt * 101);
        let (p, _) = generate_pattern(graph, &cfg);
        if p.is_dag() {
            return p;
        }
    }
    panic!("could not generate a DAG pattern");
}

#[test]
fn incremental_matcher_tracks_batch_recompute_on_youtube() {
    let graph = Dataset::YouTube.generate(0.015, 11);
    let pattern = dag_pattern(&graph, 1);
    let mut matcher = IncrementalMatcher::new(pattern.clone(), graph.clone());

    for round in 0..4u64 {
        let updates = random_updates(
            matcher.graph(),
            &UpdateStreamConfig::mixed(40).with_seed(round + 100),
        );
        matcher.apply_batch(&updates).unwrap();

        // Maintained matrix equals a rebuilt one.
        let rebuilt = DistanceMatrix::build(matcher.graph());
        assert_eq!(
            matcher.matrix(),
            &rebuilt,
            "matrix diverged at round {round}"
        );

        // Maintained match equals recomputation.
        let recomputed = bounded_simulation_with_oracle(&pattern, matcher.graph(), &rebuilt);
        assert_eq!(
            matcher.relation(),
            recomputed.relation,
            "match diverged at round {round}"
        );
    }
    assert_eq!(matcher.recompute_fallbacks(), 0);
}

#[test]
fn unit_updates_match_batch_updates() {
    // Applying a stream one update at a time gives the same final state as
    // applying it as one batch.
    let graph = Dataset::PBlog.generate(0.03, 5);
    let pattern = dag_pattern(&graph, 2);
    let updates = random_updates(&graph, &UpdateStreamConfig::mixed(30).with_seed(9));

    let mut unit = IncrementalMatcher::new(pattern.clone(), graph.clone());
    for u in &updates {
        unit.apply(*u).unwrap();
    }

    let mut batch = IncrementalMatcher::new(pattern, graph);
    batch.apply_batch(&updates).unwrap();

    assert_eq!(unit.relation(), batch.relation());
    assert_eq!(unit.matrix(), batch.matrix());
    assert_eq!(unit.graph().edge_count(), batch.graph().edge_count());
}

#[test]
fn deletions_then_reinsertions_restore_the_match() {
    let graph = Dataset::Matter.generate(0.01, 21);
    let pattern = dag_pattern(&graph, 3);
    let mut matcher = IncrementalMatcher::new(pattern, graph.clone());
    let initial = matcher.relation();

    // Delete a handful of edges, then re-insert them in reverse order.
    let victims: Vec<(gpm::NodeId, gpm::NodeId)> = graph.edges().take(12).collect();
    for &(a, b) in &victims {
        matcher.apply(EdgeUpdate::Delete(a, b)).unwrap();
    }
    for &(a, b) in victims.iter().rev() {
        matcher.apply(EdgeUpdate::Insert(a, b)).unwrap();
    }
    assert_eq!(
        matcher.relation(),
        initial,
        "round trip should restore the match"
    );
    assert_eq!(matcher.matrix(), &DistanceMatrix::build(matcher.graph()));
}
