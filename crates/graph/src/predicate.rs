//! Search-condition predicates carried by pattern nodes.
//!
//! In a pattern graph `P = (V_p, E_p, f_v, f_e)`, `f_v(u)` is a conjunction of
//! atomic formulas of the form `A op a`, where `A` is an attribute name, `a` a
//! constant, and `op ∈ {<, <=, =, !=, >, >=}` (Section 2.1). A data node `v`
//! satisfies the predicate iff every atom `A op a` is satisfied: `v.A` must be
//! *defined* and `v.A op a` must hold.

use crate::attributes::Attributes;
use crate::value::AttrValue;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// Comparison operator of an atomic formula.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates `lhs op rhs`, returning `false` when the two values are not
    /// comparable (different incompatible types, or NaN).
    pub fn eval(self, lhs: &AttrValue, rhs: &AttrValue) -> bool {
        match lhs.partial_cmp_value(rhs) {
            Some(ord) => match self {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Ne => ord != Ordering::Equal,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            },
            // `!=` over incomparable values: the paper requires `v.A = a'` to
            // be *defined* and `a' op a` to hold; an incomparable pair cannot
            // witness any comparison, so every operator fails.
            None => false,
        }
    }

    /// The textual form of the operator (`"<"`, `"<="`, ...).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl FromStr for CmpOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "<" => Ok(CmpOp::Lt),
            "<=" => Ok(CmpOp::Le),
            "=" | "==" => Ok(CmpOp::Eq),
            "!=" | "<>" => Ok(CmpOp::Ne),
            ">" => Ok(CmpOp::Gt),
            ">=" => Ok(CmpOp::Ge),
            other => Err(format!("unknown comparison operator `{other}`")),
        }
    }
}

/// An atomic formula `A op a`: attribute `A` compared against constant `a`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AtomicFormula {
    /// The attribute name `A`.
    pub attr: String,
    /// The comparison operator `op`.
    pub op: CmpOp,
    /// The constant `a`.
    pub value: AttrValue,
}

impl AtomicFormula {
    /// Creates the atom `attr op value`.
    pub fn new(attr: impl Into<String>, op: CmpOp, value: impl Into<AttrValue>) -> Self {
        AtomicFormula {
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Whether the attribute tuple `attrs` satisfies this atom.
    ///
    /// Per the paper: `v.A = a'` must be defined in `f_A(v)` and `a' op a`
    /// must hold. An undefined attribute therefore never satisfies an atom,
    /// including `!=` atoms.
    pub fn satisfied_by(&self, attrs: &Attributes) -> bool {
        match attrs.get(&self.attr) {
            Some(actual) => self.op.eval(actual, &self.value),
            None => false,
        }
    }
}

impl fmt::Display for AtomicFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// The predicate `f_v(u)` of a pattern node: a conjunction of atoms.
///
/// The empty conjunction is the always-true predicate (a wildcard node).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    atoms: Vec<AtomicFormula>,
}

impl Predicate {
    /// The always-true predicate (no atoms).
    pub fn any() -> Self {
        Predicate { atoms: Vec::new() }
    }

    /// A predicate made of a single atom.
    pub fn atom(attr: impl Into<String>, op: CmpOp, value: impl Into<AttrValue>) -> Self {
        Predicate {
            atoms: vec![AtomicFormula::new(attr, op, value)],
        }
    }

    /// `attr = value` — the most common predicate shape.
    pub fn label_eq(attr: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        Predicate::atom(attr, CmpOp::Eq, value)
    }

    /// The traditional "node label" predicate `label = value`, used when data
    /// nodes carry a single `label` attribute (plain graph simulation and the
    /// subgraph-isomorphism baselines).
    pub fn label(value: impl Into<AttrValue>) -> Self {
        Predicate::label_eq("label", value)
    }

    /// Adds the atom `attr op value` to the conjunction (builder style).
    pub fn and(mut self, attr: impl Into<String>, op: CmpOp, value: impl Into<AttrValue>) -> Self {
        self.atoms.push(AtomicFormula::new(attr, op, value));
        self
    }

    /// Adds an already-constructed atom to the conjunction.
    pub fn and_atom(mut self, atom: AtomicFormula) -> Self {
        self.atoms.push(atom);
        self
    }

    /// The atoms of the conjunction, in insertion order.
    pub fn atoms(&self) -> &[AtomicFormula] {
        &self.atoms
    }

    /// Number of atoms in the conjunction.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the predicate is the always-true wildcard.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Whether the attribute tuple `attrs` satisfies every atom.
    pub fn satisfied_by(&self, attrs: &Attributes) -> bool {
        self.atoms.iter().all(|a| a.satisfied_by(attrs))
    }

    /// Parses a predicate from a compact textual form, e.g.
    /// `category = "Music" && rate > 4.5 && age <= 500`.
    ///
    /// Supported constants: double-quoted strings, booleans (`true`/`false`),
    /// integers and floats. The empty string parses to the wildcard predicate.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(Predicate::any());
        }
        let mut pred = Predicate::any();
        for clause in text.split("&&") {
            let clause = clause.trim();
            if clause.is_empty() {
                return Err("empty conjunct in predicate".to_string());
            }
            pred.atoms.push(parse_atom(clause)?);
        }
        Ok(pred)
    }
}

fn parse_atom(clause: &str) -> Result<AtomicFormula, String> {
    // Operators are matched longest-first so `<=` is not mis-split as `<`.
    const OPS: [&str; 7] = ["<=", ">=", "!=", "<>", "==", "<", ">"];
    // `=` handled separately to avoid clashing with `==`/`<=`/`>=`/`!=`.
    let (idx, op_str) = OPS
        .iter()
        .filter_map(|op| clause.find(op).map(|i| (i, *op)))
        .min_by_key(|(i, _)| *i)
        .or_else(|| clause.find('=').map(|i| (i, "=")))
        .ok_or_else(|| format!("no comparison operator in `{clause}`"))?;

    let attr = clause[..idx].trim();
    let value_str = clause[idx + op_str.len()..].trim();
    if attr.is_empty() {
        return Err(format!("missing attribute name in `{clause}`"));
    }
    if value_str.is_empty() {
        return Err(format!("missing constant in `{clause}`"));
    }
    let op: CmpOp = op_str.parse()?;
    let value = parse_value(value_str)?;
    Ok(AtomicFormula::new(attr, op, value))
}

fn parse_value(text: &str) -> Result<AttrValue, String> {
    if let Some(stripped) = text
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    {
        return Ok(AttrValue::Str(stripped.to_string()));
    }
    if text == "true" {
        return Ok(AttrValue::Bool(true));
    }
    if text == "false" {
        return Ok(AttrValue::Bool(false));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(AttrValue::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(AttrValue::Float(f));
    }
    // Bare words are treated as strings for convenience (`category = Music`).
    if text.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Ok(AttrValue::Str(text.to_string()));
    }
    Err(format!("cannot parse constant `{text}`"))
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

impl FromStr for Predicate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Predicate::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video(category: &str, rate: f64, age: i64) -> Attributes {
        Attributes::from([("category", AttrValue::from(category))])
            .with("rate", rate)
            .with("age", age)
    }

    #[test]
    fn cmp_op_eval_all_operators() {
        let three = AttrValue::Int(3);
        let five = AttrValue::Int(5);
        assert!(CmpOp::Lt.eval(&three, &five));
        assert!(CmpOp::Le.eval(&three, &three));
        assert!(CmpOp::Eq.eval(&three, &three));
        assert!(CmpOp::Ne.eval(&three, &five));
        assert!(CmpOp::Gt.eval(&five, &three));
        assert!(CmpOp::Ge.eval(&five, &five));
        assert!(!CmpOp::Lt.eval(&five, &three));
        assert!(!CmpOp::Eq.eval(&five, &three));
    }

    #[test]
    fn cmp_op_parsing_and_display() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let round: CmpOp = op.symbol().parse().unwrap();
            assert_eq!(round, op);
        }
        assert_eq!("==".parse::<CmpOp>().unwrap(), CmpOp::Eq);
        assert_eq!("<>".parse::<CmpOp>().unwrap(), CmpOp::Ne);
        assert!("~".parse::<CmpOp>().is_err());
    }

    #[test]
    fn incomparable_values_fail_every_operator() {
        let s = AttrValue::from("abc");
        let i = AttrValue::Int(1);
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert!(!op.eval(&s, &i), "{op} should fail on str vs int");
        }
    }

    #[test]
    fn atom_satisfaction_requires_defined_attribute() {
        let atom = AtomicFormula::new("rate", CmpOp::Gt, 4.0);
        assert!(atom.satisfied_by(&video("Music", 4.5, 100)));
        assert!(!atom.satisfied_by(&video("Music", 3.5, 100)));
        // `rate` undefined -> not satisfied, even for !=.
        let no_rate = Attributes::from([("category", "Music")]);
        assert!(!atom.satisfied_by(&no_rate));
        let ne = AtomicFormula::new("rate", CmpOp::Ne, 4.0);
        assert!(!ne.satisfied_by(&no_rate));
    }

    #[test]
    fn conjunction_semantics() {
        let p = Predicate::label_eq("category", "Music").and("rate", CmpOp::Gt, 3.0);
        assert!(p.satisfied_by(&video("Music", 4.5, 10)));
        assert!(!p.satisfied_by(&video("Music", 2.0, 10)));
        assert!(!p.satisfied_by(&video("Comedy", 4.5, 10)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn wildcard_predicate_matches_everything() {
        let p = Predicate::any();
        assert!(p.is_empty());
        assert!(p.satisfied_by(&Attributes::new()));
        assert!(p.satisfied_by(&video("X", 0.0, 0)));
    }

    #[test]
    fn label_predicate() {
        let p = Predicate::label("AM");
        assert!(p.satisfied_by(&Attributes::labeled("AM")));
        assert!(!p.satisfied_by(&Attributes::labeled("FW")));
    }

    #[test]
    fn parse_simple_and_compound() {
        let p = Predicate::parse("category = \"Music\" && rate > 4.5").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.satisfied_by(&video("Music", 4.8, 1)));
        assert!(!p.satisfied_by(&video("Music", 4.2, 1)));

        let q = Predicate::parse("age <= 500").unwrap();
        assert!(q.satisfied_by(&video("Any", 1.0, 500)));
        assert!(!q.satisfied_by(&video("Any", 1.0, 501)));
    }

    #[test]
    fn parse_bare_word_bool_float() {
        let p = Predicate::parse("category = Music && ok = true && score >= 2.5").unwrap();
        let attrs = Attributes::from([("category", AttrValue::from("Music"))])
            .with("ok", true)
            .with("score", 2.5);
        assert!(p.satisfied_by(&attrs));
    }

    #[test]
    fn parse_empty_is_wildcard() {
        assert!(Predicate::parse("").unwrap().is_empty());
        assert!(Predicate::parse("   ").unwrap().is_empty());
    }

    #[test]
    fn parse_errors() {
        assert!(Predicate::parse("category").is_err());
        assert!(Predicate::parse("= 3").is_err());
        assert!(Predicate::parse("x = ").is_err());
        assert!(Predicate::parse("a = 1 && ").is_err());
    }

    #[test]
    fn display_roundtrip() {
        let p = Predicate::label_eq("category", "Music").and("rate", CmpOp::Gt, 4.5);
        let text = p.to_string();
        assert_eq!(text, "category = \"Music\" && rate > 4.5");
        let q: Predicate = text.parse().unwrap();
        assert_eq!(p, q);
        assert_eq!(Predicate::any().to_string(), "true");
    }

    #[test]
    fn ne_operator_in_predicate() {
        let p = Predicate::atom("category", CmpOp::Ne, "Music");
        assert!(p.satisfied_by(&video("Comedy", 1.0, 1)));
        assert!(!p.satisfied_by(&video("Music", 1.0, 1)));
    }
}
