//! Vendored, dependency-free stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind `parking_lot`'s poison-free API: `lock()`
//! returns the guard directly instead of a `Result`. If a thread panics while
//! holding the lock, the poison flag is simply cleared — matching
//! `parking_lot` semantics, where locks never poison.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std::sync::Mutex::lock`, never returns an error: poisoning is
    /// ignored, as in the real `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (the borrow checker guarantees
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<Vec<u32>> = Mutex::default();
        assert!(m.lock().is_empty());
        let _ = format!("{m:?}");
    }
}
