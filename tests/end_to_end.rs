//! End-to-end integration tests across the whole stack: dataset generation,
//! distance oracles, bounded simulation, result graphs and serialization.

use gpm::{
    bounded_simulation, bounded_simulation_with_oracle, generate_pattern, BfsOracle, Dataset,
    DistanceMatrix, PatternGenConfig, ResultGraph, TwoHopOracle,
};

#[test]
fn youtube_pipeline_end_to_end() {
    // Generate a small simulated YouTube graph, generate patterns against it,
    // match them, and validate every result against the definition.
    let graph = Dataset::YouTube.generate(0.02, 42);
    let matrix = DistanceMatrix::build(&graph);
    assert_eq!(matrix.node_count(), graph.node_count());

    let mut matched_patterns = 0;
    for seed in 0..6u64 {
        let cfg = PatternGenConfig::new(4, 4, 3).with_seed(seed);
        let (pattern, _) = generate_pattern(&graph, &cfg);
        let outcome = bounded_simulation_with_oracle(&pattern, &graph, &matrix);

        // The relation always satisfies the definition of a match.
        assert!(outcome.relation.is_valid_match(&pattern, &graph, &matrix));

        if outcome.relation.is_match(&pattern) {
            matched_patterns += 1;
            let rg = ResultGraph::build(&pattern, &graph, &outcome.relation);
            assert_eq!(rg.pair_count(), outcome.relation.pair_count());
            assert!(rg.node_count() <= graph.node_count());
            // Every result edge witnesses at least one pattern edge.
            for e in rg.edges() {
                assert!(!e.pattern_edges.is_empty());
            }
        }
    }
    // The generator is biased towards positive patterns, so most must match.
    assert!(
        matched_patterns >= 2,
        "only {matched_patterns}/6 patterns matched"
    );
}

#[test]
fn all_three_oracles_agree_on_every_dataset() {
    for dataset in Dataset::ALL {
        let graph = dataset.generate(0.01, 7);
        let matrix = DistanceMatrix::build(&graph);
        let two_hop = TwoHopOracle::build(&graph);
        let bfs = BfsOracle::new();
        for seed in 0..3u64 {
            let cfg = PatternGenConfig::new(4, 4, 3).with_seed(seed);
            let (pattern, _) = generate_pattern(&graph, &cfg);
            let a = bounded_simulation_with_oracle(&pattern, &graph, &matrix);
            let b = bounded_simulation_with_oracle(&pattern, &graph, &two_hop);
            let c = bounded_simulation_with_oracle(&pattern, &graph, &bfs);
            assert_eq!(
                a.relation, b.relation,
                "{dataset} seed {seed}: matrix vs 2-hop"
            );
            assert_eq!(
                a.relation, c.relation,
                "{dataset} seed {seed}: matrix vs BFS"
            );
        }
    }
}

#[test]
fn graph_serialization_roundtrip_preserves_matching() {
    let graph = Dataset::PBlog.generate(0.02, 3);
    let json = gpm::graph::io::data_graph_to_json(&graph).unwrap();
    let restored = gpm::graph::io::data_graph_from_json(&json).unwrap();

    let cfg = PatternGenConfig::new(3, 3, 2).with_seed(5);
    let (pattern, _) = generate_pattern(&graph, &cfg);
    let original = bounded_simulation(&pattern, &graph);
    let after = bounded_simulation(&pattern, &restored);
    assert_eq!(original.relation, after.relation);

    let edge_list = gpm::graph::io::data_graph_to_edge_list(&graph);
    let restored = gpm::graph::io::data_graph_from_edge_list(&edge_list).unwrap();
    let after = bounded_simulation(&pattern, &restored);
    assert_eq!(original.relation, after.relation);
}

#[test]
fn pattern_serialization_roundtrip() {
    let graph = Dataset::Matter.generate(0.01, 9);
    let (pattern, _) = generate_pattern(&graph, &PatternGenConfig::new(5, 6, 3).with_seed(1));
    let json = gpm::graph::io::pattern_to_json(&pattern).unwrap();
    let restored = gpm::graph::io::pattern_from_json(&json).unwrap();
    let a = bounded_simulation(&pattern, &graph);
    let b = bounded_simulation(&restored, &graph);
    assert_eq!(a.relation, b.relation);
}
