//! The pattern graph `P = (V_p, E_p, f_v, f_e)`.
//!
//! Pattern nodes carry a [`Predicate`] (the search condition `f_v(u)`), and
//! pattern edges carry an [`EdgeBound`] (`f_e(u, u')`, a hop bound or `*`).
//! Patterns are small (the paper evaluates up to ~12 nodes), so the
//! representation favours clarity over compactness.
//!
//! Self-loops are rejected: a self-loop `(u, u)` with the non-empty-path
//! semantics would require every match of `u` to lie on a cycle, which the
//! paper's pattern model never uses, and the incremental algorithms assume
//! loop-free patterns.

use crate::edge_bound::EdgeBound;
use crate::error::GraphError;
use crate::node_id::PatternNodeId;
use crate::predicate::Predicate;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A node of a pattern graph: an id plus its search condition.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PatternNode {
    /// The node's id within the pattern.
    pub id: PatternNodeId,
    /// The predicate `f_v(u)` a data node must satisfy to be a candidate.
    pub predicate: Predicate,
    /// Optional human-readable name (e.g. "AM", "p3") used in displays.
    pub name: Option<String>,
}

/// A directed edge of a pattern graph with its hop bound.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternEdge {
    /// Source pattern node.
    pub from: PatternNodeId,
    /// Target pattern node.
    pub to: PatternNodeId,
    /// The bound `f_e(from, to)`.
    pub bound: EdgeBound,
}

/// A pattern graph.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PatternGraph {
    nodes: Vec<PatternNode>,
    edges: Vec<PatternEdge>,
    out_adj: Vec<Vec<usize>>,
    in_adj: Vec<Vec<usize>>,
}

impl PatternGraph {
    /// Creates an empty pattern.
    pub fn new() -> Self {
        PatternGraph::default()
    }

    /// Number of pattern nodes `|V_p|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of pattern edges `|E_p|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the pattern has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `u` is a node of this pattern.
    #[inline]
    pub fn contains_node(&self, u: PatternNodeId) -> bool {
        u.index() < self.nodes.len()
    }

    /// Adds a pattern node with the given predicate and returns its id.
    pub fn add_node(&mut self, predicate: Predicate) -> PatternNodeId {
        let id = PatternNodeId::new(self.nodes.len() as u32);
        self.nodes.push(PatternNode {
            id,
            predicate,
            name: None,
        });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a named pattern node (the name only affects displays).
    pub fn add_named_node(
        &mut self,
        name: impl Into<String>,
        predicate: Predicate,
    ) -> PatternNodeId {
        let id = self.add_node(predicate);
        self.nodes[id.index()].name = Some(name.into());
        id
    }

    /// Adds the pattern edge `(from, to)` with bound `bound`.
    ///
    /// Errors on unknown endpoints, duplicate edges, self-loops, and bounds
    /// of zero hops.
    pub fn add_edge(
        &mut self,
        from: PatternNodeId,
        to: PatternNodeId,
        bound: EdgeBound,
    ) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if let EdgeBound::Hops(0) = bound {
            return Err(GraphError::ZeroEdgeBound);
        }
        if self.find_edge(from, to).is_some() {
            return Err(GraphError::DuplicatePatternEdge(from, to));
        }
        let idx = self.edges.len();
        self.edges.push(PatternEdge { from, to, bound });
        self.out_adj[from.index()].push(idx);
        self.in_adj[to.index()].push(idx);
        Ok(())
    }

    /// The node record of `u`.
    pub fn node(&self, u: PatternNodeId) -> &PatternNode {
        &self.nodes[u.index()]
    }

    /// The predicate of node `u`.
    #[inline]
    pub fn predicate(&self, u: PatternNodeId) -> &Predicate {
        &self.nodes[u.index()].predicate
    }

    /// The display name of node `u` (falls back to `u<i>`).
    pub fn name(&self, u: PatternNodeId) -> String {
        self.nodes[u.index()]
            .name
            .clone()
            .unwrap_or_else(|| format!("{u}"))
    }

    /// The bound of edge `(from, to)` if that edge exists.
    pub fn bound(&self, from: PatternNodeId, to: PatternNodeId) -> Option<EdgeBound> {
        self.find_edge(from, to).map(|i| self.edges[i].bound)
    }

    /// Whether the pattern edge `(from, to)` exists.
    pub fn has_edge(&self, from: PatternNodeId, to: PatternNodeId) -> bool {
        self.find_edge(from, to).is_some()
    }

    /// Iterates over all pattern node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = PatternNodeId> + '_ {
        (0..self.nodes.len() as u32).map(PatternNodeId::new)
    }

    /// Iterates over all node records.
    pub fn nodes(&self) -> impl Iterator<Item = &PatternNode> {
        self.nodes.iter()
    }

    /// Iterates over all pattern edges.
    pub fn edges(&self) -> impl Iterator<Item = &PatternEdge> {
        self.edges.iter()
    }

    /// Outgoing edges of `u` (edges `(u, u')`).
    pub fn out_edges(&self, u: PatternNodeId) -> impl Iterator<Item = &PatternEdge> {
        self.out_adj[u.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Incoming edges of `u` (edges `(u', u)`).
    pub fn in_edges(&self, u: PatternNodeId) -> impl Iterator<Item = &PatternEdge> {
        self.in_adj[u.index()].iter().map(move |&i| &self.edges[i])
    }

    /// Children of `u` in the pattern (targets of out-edges).
    pub fn children(&self, u: PatternNodeId) -> impl Iterator<Item = PatternNodeId> + '_ {
        self.out_edges(u).map(|e| e.to)
    }

    /// Parents of `u` in the pattern (sources of in-edges).
    pub fn parents(&self, u: PatternNodeId) -> impl Iterator<Item = PatternNodeId> + '_ {
        self.in_edges(u).map(|e| e.from)
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: PatternNodeId) -> usize {
        self.out_adj[u.index()].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: PatternNodeId) -> usize {
        self.in_adj[u.index()].len()
    }

    /// Whether the pattern is a DAG (required by `Match+` and `IncMatch`).
    pub fn is_dag(&self) -> bool {
        self.topological_order().is_some()
    }

    /// A topological order of the pattern nodes, or `None` if the pattern is
    /// cyclic. Kahn's algorithm; deterministic (smallest id first).
    pub fn topological_order(&self) -> Option<Vec<PatternNodeId>> {
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.in_adj[i].len()).collect();
        // Binary-heap-free deterministic Kahn: scan for zero in-degree ids in
        // ascending order; patterns are tiny so O(n²) is irrelevant.
        let mut order = Vec::with_capacity(n);
        let mut used = vec![false; n];
        for _ in 0..n {
            let next = (0..n).find(|&i| !used[i] && indeg[i] == 0)?;
            used[next] = true;
            order.push(PatternNodeId::new(next as u32));
            for &e in &self.out_adj[next] {
                indeg[self.edges[e].to.index()] -= 1;
            }
        }
        Some(order)
    }

    /// Returns an error unless the pattern is a DAG.
    pub fn require_dag(&self) -> Result<()> {
        if self.is_dag() {
            Ok(())
        } else {
            Err(GraphError::PatternNotAcyclic)
        }
    }

    /// The largest finite hop bound appearing on any edge (0 if none).
    pub fn max_bound(&self) -> u32 {
        self.edges
            .iter()
            .filter_map(|e| e.bound.hops())
            .max()
            .unwrap_or(0)
    }

    /// Whether any edge is unbounded (`*`).
    pub fn has_unbounded_edge(&self) -> bool {
        self.edges.iter().any(|e| e.bound.is_unbounded())
    }

    /// Returns a copy of the pattern with every edge bound replaced by 1 hop.
    ///
    /// This is the "traditional" projection used when comparing against plain
    /// graph simulation and the subgraph-isomorphism baselines.
    pub fn with_unit_bounds(&self) -> PatternGraph {
        let mut p = PatternGraph::new();
        for node in &self.nodes {
            let id = p.add_node(node.predicate.clone());
            p.nodes[id.index()].name = node.name.clone();
        }
        for e in &self.edges {
            p.add_edge(e.from, e.to, EdgeBound::ONE)
                .expect("copying a valid pattern cannot fail");
        }
        p
    }

    fn find_edge(&self, from: PatternNodeId, to: PatternNodeId) -> Option<usize> {
        self.out_adj
            .get(from.index())?
            .iter()
            .copied()
            .find(|&i| self.edges[i].to == to)
    }

    #[inline]
    fn check_node(&self, u: PatternNodeId) -> Result<()> {
        if self.contains_node(u) {
            Ok(())
        } else {
            Err(GraphError::UnknownPatternNode(u))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn u(i: u32) -> PatternNodeId {
        PatternNodeId::new(i)
    }

    /// The drug-trafficking pattern P0 from Example 1.1: B, AM, S, FW.
    fn p0() -> PatternGraph {
        let mut p = PatternGraph::new();
        let b = p.add_named_node("B", Predicate::label("B"));
        let am = p.add_named_node("AM", Predicate::label("AM"));
        let s = p.add_named_node("S", Predicate::label("S"));
        let fw = p.add_named_node("FW", Predicate::label("FW"));
        p.add_edge(b, am, EdgeBound::ONE).unwrap();
        p.add_edge(b, s, EdgeBound::ONE).unwrap();
        p.add_edge(am, fw, EdgeBound::Hops(3)).unwrap();
        p.add_edge(s, fw, EdgeBound::ONE).unwrap();
        p.add_edge(fw, am, EdgeBound::Hops(3)).unwrap();
        p
    }

    #[test]
    fn build_and_query() {
        let p = p0();
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 5);
        assert!(p.has_edge(u(0), u(1)));
        assert!(!p.has_edge(u(1), u(0)));
        assert_eq!(p.bound(u(1), u(3)), Some(EdgeBound::Hops(3)));
        assert_eq!(p.bound(u(3), u(0)), None);
        assert_eq!(p.name(u(1)), "AM");
        assert_eq!(p.out_degree(u(0)), 2);
        assert_eq!(p.in_degree(u(3)), 2);
        let children: Vec<_> = p.children(u(0)).collect();
        assert_eq!(children, vec![u(1), u(2)]);
        let parents: Vec<_> = p.parents(u(3)).collect();
        assert_eq!(parents, vec![u(1), u(2)]);
    }

    #[test]
    fn unnamed_nodes_get_default_names() {
        let mut p = PatternGraph::new();
        let a = p.add_node(Predicate::any());
        assert_eq!(p.name(a), "u0");
        assert_eq!(p.node(a).name, None);
    }

    #[test]
    fn rejects_self_loops_and_zero_bounds() {
        let mut p = PatternGraph::new();
        let a = p.add_node(Predicate::any());
        let b = p.add_node(Predicate::any());
        assert_eq!(
            p.add_edge(a, a, EdgeBound::ONE),
            Err(GraphError::SelfLoop(a))
        );
        assert_eq!(
            p.add_edge(a, b, EdgeBound::Hops(0)),
            Err(GraphError::ZeroEdgeBound)
        );
        p.add_edge(a, b, EdgeBound::Hops(2)).unwrap();
        assert_eq!(
            p.add_edge(a, b, EdgeBound::Hops(3)),
            Err(GraphError::DuplicatePatternEdge(a, b))
        );
    }

    #[test]
    fn rejects_unknown_nodes() {
        let mut p = PatternGraph::new();
        let a = p.add_node(Predicate::any());
        assert_eq!(
            p.add_edge(a, u(9), EdgeBound::ONE),
            Err(GraphError::UnknownPatternNode(u(9)))
        );
    }

    #[test]
    fn dag_detection() {
        // P0 has a cycle AM -> FW -> AM.
        let p = p0();
        assert!(!p.is_dag());
        assert!(p.topological_order().is_none());
        assert!(p.require_dag().is_err());

        let mut q = PatternGraph::new();
        let a = q.add_node(Predicate::any());
        let b = q.add_node(Predicate::any());
        let c = q.add_node(Predicate::any());
        q.add_edge(a, b, EdgeBound::ONE).unwrap();
        q.add_edge(b, c, EdgeBound::Hops(2)).unwrap();
        q.add_edge(a, c, EdgeBound::Unbounded).unwrap();
        assert!(q.is_dag());
        assert_eq!(q.topological_order().unwrap(), vec![a, b, c]);
        assert!(q.require_dag().is_ok());
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut p = PatternGraph::new();
        let a = p.add_node(Predicate::any());
        let b = p.add_node(Predicate::any());
        let c = p.add_node(Predicate::any());
        let d = p.add_node(Predicate::any());
        p.add_edge(c, a, EdgeBound::ONE).unwrap();
        p.add_edge(a, d, EdgeBound::ONE).unwrap();
        p.add_edge(b, d, EdgeBound::ONE).unwrap();
        let order = p.topological_order().unwrap();
        let pos = |x: PatternNodeId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(c) < pos(a));
        assert!(pos(a) < pos(d));
        assert!(pos(b) < pos(d));
    }

    #[test]
    fn bounds_summary() {
        let p = p0();
        assert_eq!(p.max_bound(), 3);
        assert!(!p.has_unbounded_edge());

        let mut q = PatternGraph::new();
        let a = q.add_node(Predicate::any());
        let b = q.add_node(Predicate::any());
        q.add_edge(a, b, EdgeBound::Unbounded).unwrap();
        assert!(q.has_unbounded_edge());
        assert_eq!(q.max_bound(), 0);
    }

    #[test]
    fn with_unit_bounds_flattens_every_edge() {
        let p = p0();
        let flat = p.with_unit_bounds();
        assert_eq!(flat.node_count(), p.node_count());
        assert_eq!(flat.edge_count(), p.edge_count());
        for e in flat.edges() {
            assert_eq!(e.bound, EdgeBound::ONE);
        }
        assert_eq!(flat.name(u(1)), "AM");
    }

    #[test]
    fn predicates_with_comparisons() {
        let mut p = PatternGraph::new();
        let n = p.add_node(Predicate::label_eq("category", "People").and("rate", CmpOp::Gt, 4.5));
        assert_eq!(p.predicate(n).len(), 2);
    }

    #[test]
    fn iterators_cover_everything() {
        let p = p0();
        assert_eq!(p.node_ids().count(), 4);
        assert_eq!(p.nodes().count(), 4);
        assert_eq!(p.edges().count(), 5);
        assert_eq!(p.out_edges(u(0)).count(), 2);
        assert_eq!(p.in_edges(u(3)).count(), 2);
    }
}
