//! The work-stealing deque the executor's workers schedule from.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A work-stealing deque following the Chase–Lev access discipline: the
/// owning worker pushes and pops at the **bottom** (LIFO, keeping its own
/// recently-produced work hot in cache), while idle workers steal from the
/// **top** (FIFO, taking the oldest — typically largest — pending task).
///
/// The original Chase–Lev structure ("Dynamic circular work-stealing
/// deque", SPAA '05) achieves this lock-free with a circular buffer and
/// atomics, which requires `unsafe` memory management; this workspace
/// forbids `unsafe`, so the same discipline is synchronised with a `std`
/// mutex around a ring buffer instead. Tasks in this codebase are
/// coarse-grained (a BFS source chunk, a pattern-node refinement slice), so
/// the lock is uncontended in practice — the discipline, not the atomics,
/// is what provides the load balancing.
#[derive(Debug, Default)]
pub struct StealDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> StealDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        StealDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Owner operation: pushes a task at the bottom.
    pub fn push_bottom(&self, task: T) {
        self.inner.lock().unwrap().push_back(task);
    }

    /// Owner operation: pops the most recently pushed task (bottom, LIFO).
    pub fn pop_bottom(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_back()
    }

    /// Thief operation: steals the oldest task (top, FIFO).
    pub fn steal_top(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_front()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether no task is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let d = StealDeque::new();
        d.push_bottom(1);
        d.push_bottom(2);
        d.push_bottom(3);
        assert_eq!(d.len(), 3);
        // Owner sees the newest task first...
        assert_eq!(d.pop_bottom(), Some(3));
        // ...a thief takes the oldest.
        assert_eq!(d.steal_top(), Some(1));
        assert_eq!(d.pop_bottom(), Some(2));
        assert_eq!(d.pop_bottom(), None);
        assert_eq!(d.steal_top(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn concurrent_stealing_loses_no_task() {
        let deque = StealDeque::new();
        for i in 0..10_000u64 {
            deque.push_bottom(i);
        }
        let total: u64 = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(s.spawn(|| {
                    let mut sum = 0u64;
                    while let Some(v) = deque.steal_top() {
                        sum += v;
                    }
                    sum
                }));
            }
            let mut own = 0u64;
            while let Some(v) = deque.pop_bottom() {
                own += v;
            }
            own + handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });
        assert_eq!(total, 10_000 * 9_999 / 2);
    }
}
