//! Adversarial topologies for the distance-oracle backends.
//!
//! The random generators in this crate produce well-mixed graphs on which
//! every backend behaves close to its average case. The shapes here are the
//! opposite — each one is the worst case for a specific part of the 2-hop
//! labeling and its incremental repair:
//!
//! * [`star`] — one hub touching every leaf. The hub is the perfect
//!   landmark (every label is tiny), but deleting a hub edge invalidates a
//!   hub-anchored entry in *every* leaf's label at once;
//! * [`deep_chain`] — a directed path. Pruned labeling degenerates: the
//!   node at position `i` reaches `n - i` suffixes and no landmark shortcuts
//!   any of them, so total label size is `Θ(n²)` — the 2-hop index's memory
//!   advantage disappears entirely. Keep chains short (≲ 2 000 nodes);
//! * [`grid`] — a directed `rows × cols` lattice (right + down edges) with
//!   `Θ((rows·cols)²)` many shortest paths sharing midpoints, stressing
//!   pruning-order sensitivity;
//! * [`cliques_with_bridges`] — dense clusters joined by single bridge
//!   edges. Distances are bimodal (1 inside a clique, long across bridges)
//!   and deleting one bridge disconnects half the graph from the other;
//! * [`bowtie`] — `wing` sources fanning into a single waist node that fans
//!   out to `wing` sinks. Every source→sink path crosses the waist, so the
//!   waist's label carries `Θ(wing²)` pairs: deleting one `waist → sink`
//!   edge strands that sink from **every** source at once, while deleting a
//!   `source → waist` edge only empties that source's own row.
//!
//! The companion update scripts ([`cut_chain_updates`],
//! [`delete_hub_updates`], [`cut_bridge_updates`], [`sever_waist_updates`])
//! are the matching worst-case deltas. The root-level `adversarial_topologies` integration
//! test drives both backends through every (topology, script) pair and
//! asserts bit-identical distances — and records, via
//! [`DistanceOracle::rebuilds`](gpm_distance::DistanceOracle::rebuilds),
//! where the incremental 2-hop repair degrades to a counted rebuild.
//!
//! Every generator is deterministic (no RNG at all) and returns a
//! [compacted](gpm_graph::DataGraph::compact) graph.

use gpm_distance::EdgeUpdate;
use gpm_graph::{Attributes, DataGraph, NodeId};

/// A star: node 0 is the hub (label `"hub"`), nodes `1..=leaves` are leaves
/// (label `"leaf"`), with edges in **both** directions between the hub and
/// every leaf. `2 · leaves` edges in total.
pub fn star(leaves: usize) -> DataGraph {
    let mut g = DataGraph::with_capacity(leaves + 1);
    let hub = g.add_node(Attributes::labeled("hub").with("idx", 0i64));
    for i in 0..leaves {
        let leaf = g.add_node(Attributes::labeled("leaf").with("idx", (i + 1) as i64));
        g.add_edge(hub, leaf).expect("fresh edge");
        g.add_edge(leaf, hub).expect("fresh edge");
    }
    g.compact();
    g
}

/// A directed path `0 → 1 → … → len-1`. The endpoints are labeled `"head"`
/// and `"tail"`, interior nodes `"mid"`.
///
/// This is the degenerate case for pruned 2-hop labeling — label size grows
/// quadratically with `len` — so keep `len` small (the tests use ≤ 512).
pub fn deep_chain(len: usize) -> DataGraph {
    let mut g = DataGraph::with_capacity(len);
    for i in 0..len {
        let label = if i == 0 {
            "head"
        } else if i + 1 == len {
            "tail"
        } else {
            "mid"
        };
        g.add_node(Attributes::labeled(label).with("idx", i as i64));
    }
    for i in 1..len {
        g.add_edge(NodeId::new((i - 1) as u32), NodeId::new(i as u32))
            .expect("fresh edge");
    }
    g.compact();
    g
}

/// A directed `rows × cols` grid: node `(r, c)` sits at id `r * cols + c`
/// (label `"cell"`) with edges right (`(r, c) → (r, c+1)`) and down
/// (`(r, c) → (r+1, c)`).
pub fn grid(rows: usize, cols: usize) -> DataGraph {
    let mut g = DataGraph::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            g.add_node(
                Attributes::labeled("cell")
                    .with("row", r as i64)
                    .with("col", c as i64),
            );
        }
    }
    let id = |r: usize, c: usize| NodeId::new((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1)).expect("fresh edge");
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c)).expect("fresh edge");
            }
        }
    }
    g.compact();
    g
}

/// `cliques` bidirectional cliques of `size` nodes each (label `"q<i>"` for
/// clique `i`), chained by single **bridge** edges: the last node of clique
/// `i` points at the first node of clique `i + 1`.
///
/// Node ids are contiguous per clique, so clique `i` spans
/// `i * size .. (i + 1) * size`; [`cut_bridge_updates`] computes the bridge
/// endpoints from the same layout.
pub fn cliques_with_bridges(cliques: usize, size: usize) -> DataGraph {
    let mut g = DataGraph::with_capacity(cliques * size);
    for q in 0..cliques {
        for i in 0..size {
            g.add_node(Attributes::labeled(format!("q{q}")).with("idx", (q * size + i) as i64));
        }
    }
    let id = |q: usize, i: usize| NodeId::new((q * size + i) as u32);
    for q in 0..cliques {
        for a in 0..size {
            for b in 0..size {
                if a != b {
                    g.add_edge(id(q, a), id(q, b)).expect("fresh edge");
                }
            }
        }
        if q + 1 < cliques {
            g.add_edge(id(q, size - 1), id(q + 1, 0))
                .expect("fresh edge");
        }
    }
    g.compact();
    g
}

/// The worst-case chain delta: delete the edge `k → k+1` of a
/// [`deep_chain`] of length `len`, splitting it into a prefix of `k + 1`
/// nodes and an unreachable suffix.
///
/// `k = 0` cuts right at the head — the case the 2-hop delete repair handles
/// in place (only the deleted edge's own source row changes); larger `k`
/// invalidates the prefix rows one by one and exercises the rebuild path.
/// Panics if the edge does not exist (`k + 1 ≥ len`).
pub fn cut_chain_updates(len: usize, k: usize) -> Vec<EdgeUpdate> {
    assert!(
        k + 1 < len,
        "chain of length {len} has no edge at position {k}"
    );
    vec![EdgeUpdate::Delete(
        NodeId::new(k as u32),
        NodeId::new((k + 1) as u32),
    )]
}

/// Deletes the hub, edge by edge: every `hub → leaf` edge of a [`star`] with
/// `leaves` leaves, in leaf order. After the script the hub still *receives*
/// from every leaf but reaches nothing — the maximal single-source distance
/// increase.
pub fn delete_hub_updates(leaves: usize) -> Vec<EdgeUpdate> {
    (0..leaves)
        .map(|i| EdgeUpdate::Delete(NodeId::new(0), NodeId::new((i + 1) as u32)))
        .collect()
}

/// Deletes the bridge between cliques `q` and `q + 1` of a
/// [`cliques_with_bridges`] graph, disconnecting everything after it from
/// everything before. Panics if `q + 1 ≥ cliques`.
pub fn cut_bridge_updates(cliques: usize, size: usize, q: usize) -> Vec<EdgeUpdate> {
    assert!(q + 1 < cliques, "no bridge after clique {q} of {cliques}");
    vec![EdgeUpdate::Delete(
        NodeId::new((q * size + size - 1) as u32),
        NodeId::new(((q + 1) * size) as u32),
    )]
}

/// A bowtie: node 0 is the waist (label `"waist"`), nodes `1..=wing` are
/// sources (label `"src"`, each with an edge into the waist) and nodes
/// `wing+1..=2·wing` are sinks (label `"sink"`, each fed by the waist).
/// `2 · wing` edges; every source→sink shortest path has length 2 and
/// crosses the waist.
pub fn bowtie(wing: usize) -> DataGraph {
    let mut g = DataGraph::with_capacity(2 * wing + 1);
    let waist = g.add_node(Attributes::labeled("waist").with("idx", 0i64));
    for i in 0..wing {
        let src = g.add_node(Attributes::labeled("src").with("idx", (i + 1) as i64));
        g.add_edge(src, waist).expect("fresh edge");
    }
    for i in 0..wing {
        let sink = g.add_node(Attributes::labeled("sink").with("idx", (wing + i + 1) as i64));
        g.add_edge(waist, sink).expect("fresh edge");
    }
    g.compact();
    g
}

/// Severs a [`bowtie`]'s out-wing edge by edge: every `waist → sink` edge,
/// in sink order. Each deletion strands one sink from the waist **and**
/// every source simultaneously — the widest possible blast radius for a
/// single edge, `wing + 1` rows invalidated per deletion.
pub fn sever_waist_updates(wing: usize) -> Vec<EdgeUpdate> {
    (0..wing)
        .map(|i| EdgeUpdate::Delete(NodeId::new(0), NodeId::new((wing + i + 1) as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.edge_count(), 20);
        assert!(g.is_compact());
        let hub = NodeId::new(0);
        assert_eq!(g.out_degree(hub), 10);
        assert_eq!(g.attributes(hub).label(), Some("hub"));
        assert_eq!(g.attributes(NodeId::new(3)).label(), Some("leaf"));
    }

    #[test]
    fn chain_shape() {
        let g = deep_chain(100);
        assert_eq!(g.node_count(), 100);
        assert_eq!(g.edge_count(), 99);
        assert_eq!(g.attributes(NodeId::new(0)).label(), Some("head"));
        assert_eq!(g.attributes(NodeId::new(99)).label(), Some("tail"));
        assert!(g.has_edge(NodeId::new(41), NodeId::new(42)));
        assert!(!g.has_edge(NodeId::new(42), NodeId::new(41)));
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        // right edges: 4 * 4; down edges: 3 * 5.
        assert_eq!(g.edge_count(), 16 + 15);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(0), NodeId::new(5)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn cliques_shape() {
        let (cliques, size) = (3, 4);
        let g = cliques_with_bridges(cliques, size);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), cliques * size * (size - 1) + (cliques - 1));
        assert!(g.has_edge(NodeId::new(3), NodeId::new(4)), "bridge 0→1");
        assert!(g.has_edge(NodeId::new(7), NodeId::new(8)), "bridge 1→2");
        assert_eq!(g.attributes(NodeId::new(5)).label(), Some("q1"));
    }

    #[test]
    fn bowtie_shape() {
        let wing = 6;
        let g = bowtie(wing);
        assert_eq!(g.node_count(), 2 * wing + 1);
        assert_eq!(g.edge_count(), 2 * wing);
        assert!(g.is_compact());
        let waist = NodeId::new(0);
        assert_eq!(g.attributes(waist).label(), Some("waist"));
        assert_eq!(g.out_degree(waist), wing);
        for i in 0..wing as u32 {
            let (src, sink) = (NodeId::new(i + 1), NodeId::new(wing as u32 + i + 1));
            assert_eq!(g.attributes(src).label(), Some("src"));
            assert_eq!(g.attributes(sink).label(), Some("sink"));
            assert!(g.has_edge(src, waist));
            assert!(g.has_edge(waist, sink));
            assert!(!g.has_edge(waist, src));
            assert!(!g.has_edge(sink, waist));
        }
    }

    #[test]
    fn scripts_apply_cleanly() {
        let mut g = deep_chain(16);
        for u in cut_chain_updates(16, 7) {
            assert!(u.apply(&mut g), "{u:?} must take effect");
        }
        let mut g = star(8);
        for u in delete_hub_updates(8) {
            assert!(u.apply(&mut g), "{u:?} must take effect");
        }
        assert_eq!(g.out_degree(NodeId::new(0)), 0);
        let mut g = cliques_with_bridges(3, 4);
        for u in cut_bridge_updates(3, 4, 1) {
            assert!(u.apply(&mut g), "{u:?} must take effect");
        }
        let mut g = bowtie(5);
        for u in sever_waist_updates(5) {
            assert!(u.apply(&mut g), "{u:?} must take effect");
        }
        assert_eq!(g.out_degree(NodeId::new(0)), 0, "waist reaches nothing");
    }

    #[test]
    #[should_panic(expected = "no edge at position")]
    fn cut_past_the_end_panics() {
        let _ = cut_chain_updates(4, 3);
    }
}
