//! Golden tests against the checked-in `fixtures/` mini-dataset.
//!
//! The fixture is produced by `make_fixture` (gpm-bench) from the
//! deterministic YouTube generator, so these tests pin three things at
//! once: the on-disk format stays parseable, the loader binds attributes to
//! the right nodes, and the writer → reader → writer cycle is a byte-level
//! fixpoint (i.e. the committed files are exactly what the exporter emits
//! for the graph they encode).

use gpm::datagen::datasets::YOUTUBE_CATEGORIES;
use gpm::graph::dataset::{dataset_attrs_string, dataset_edges_string};
use gpm::{bounded_simulation, load_dataset, DatasetSource, PatternGraphBuilder};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    // Tests are a target of crates/gpm; the fixtures live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

#[test]
fn fixture_loads_with_expected_shape() {
    let loaded = load_dataset(&fixtures_dir(), "mini-youtube").expect("fixture loads");
    assert_eq!(loaded.name, "mini-youtube");
    assert_eq!(loaded.graph.node_count(), 200);
    assert_eq!(loaded.graph.edge_count(), 795);
    assert_eq!(
        loaded.original_ids,
        (0..200u64).collect::<Vec<_>>(),
        "exporter writes dense ids, so the remap is the identity"
    );

    let schema = loaded.schema.expect("fixture has attributes");
    assert_eq!(
        schema.header_line(),
        "id,age:int,category:str,comments:int,length:int,rate:float,ratings:int,uploader:str,views:int"
    );

    // Every node carries the full YouTube schema with plausible values.
    for v in loaded.graph.nodes() {
        let attrs = loaded.graph.attributes(v);
        let category = attrs.get("category").unwrap().as_str().unwrap();
        assert!(
            YOUTUBE_CATEGORIES.contains(&category),
            "category {category}"
        );
        let rate = attrs.get("rate").unwrap().as_f64().unwrap();
        assert!((0.0..=5.0).contains(&rate));
        assert!(attrs.get("views").unwrap().as_int().is_some());
        assert!(attrs.get("uploader").unwrap().as_str().is_some());
    }
}

#[test]
fn fixture_is_a_byte_level_roundtrip_fixpoint() {
    let dir = fixtures_dir();
    let loaded = load_dataset(&dir, "mini-youtube").expect("fixture loads");
    let edges_disk = std::fs::read_to_string(dir.join("mini-youtube.edges")).unwrap();
    let attrs_disk = std::fs::read_to_string(dir.join("mini-youtube.attrs")).unwrap();
    assert_eq!(
        dataset_edges_string(&loaded.graph),
        edges_disk,
        "re-exporting the imported graph must reproduce the committed .edges bytes"
    );
    assert_eq!(
        dataset_attrs_string(&loaded.graph).unwrap(),
        attrs_disk,
        "re-exporting the imported graph must reproduce the committed .attrs bytes"
    );
}

#[test]
fn fixture_is_discoverable_and_matchable() {
    let sources = DatasetSource::discover(&fixtures_dir()).expect("discover");
    assert!(
        sources.iter().any(|s| s.name() == "mini-youtube"),
        "discovery finds the fixture"
    );
    let source = sources
        .into_iter()
        .find(|s| s.name() == "mini-youtube")
        .unwrap();
    let graph = source.load(1.0, 0).expect("load");

    // The whole point of attributes: a predicate pattern over the fixture
    // finds a non-empty maximum match.
    let (pattern, ids) = PatternGraphBuilder::new()
        .node("hub", gpm::Predicate::any())
        .node("video", gpm::Predicate::atom("rate", gpm::CmpOp::Ge, 0.0))
        .edge("hub", "video", 2u32)
        .build()
        .expect("pattern");
    let outcome = bounded_simulation(&pattern, &graph);
    assert!(
        outcome.relation.is_match(&pattern),
        "fixture graph matches a trivial bounded pattern"
    );
    assert!(!outcome.relation.matches_of(ids["video"]).is_empty());
}
