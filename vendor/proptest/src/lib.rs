//! Vendored, minimal property-testing harness (offline stand-in for the
//! `proptest` crate).
//!
//! Supports the subset of proptest this workspace uses:
//!
//! * the [`proptest!`] macro with `arg in strategy` parameters and an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * range strategies (`0u32..20`), tuples of strategies,
//!   [`collection::vec`], [`Strategy::prop_map`] and
//!   [`Strategy::prop_flat_map`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Unlike the real proptest there is **no shrinking**: a failing case reports
//! its case number and seed so it can be re-run, but is not minimised. Case
//! generation is deterministic per test name, so failures are reproducible.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Deterministic RNG handed to strategies while generating a test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Uniform draw from a half-open integer range.
    pub fn range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        self.inner.gen_range(range)
    }
}

/// How many cases each property runs and related knobs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case, carrying its failure message.
pub type TestCaseError = String;

/// Result type produced by a single property-case closure.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values of type `Self::Value`.
///
/// This is the non-shrinking core of proptest's `Strategy`: `generate` draws
/// one value; the combinators mirror proptest's `prop_map`/`prop_flat_map`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategies producing collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates a `Vec` whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Runs `case` for `config.cases` deterministic cases, panicking (like a
/// failed `assert!`) on the first failure. Called by [`proptest!`]-generated
/// test functions; not intended for direct use.
pub fn run_proptest<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    // A stable per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for case_index in 0..config.cases {
        let case_seed = seed ^ (u64::from(case_index) << 32);
        let mut rng = TestRng::new(case_seed);
        if let Err(message) = case(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case_index} (seed {case_seed:#x}): {message}"
            );
        }
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in 0u32..9) { ... } }`.
///
/// An optional `#![proptest_config(expr)]` first item sets the
/// [`ProptestConfig`] for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not intended for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_proptest(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                    let __outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __outcome
                });
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left),
            stringify!($right),
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn tuples_and_vecs(pairs in collection::vec((0u32..4, 0u32..4), 0..16)) {
            prop_assert!(pairs.len() < 16);
            for (a, b) in pairs {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn map_and_flat_map(v in (1usize..5).prop_flat_map(|n| {
            collection::vec(0u32..10, n..n + 1).prop_map(move |xs| (n, xs))
        })) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failing_case_panics_with_context() {
        crate::run_proptest("always_fails", &ProptestConfig::with_cases(3), |_| {
            Err("boom".to_string())
        });
    }

    #[test]
    fn config_limits_cases() {
        let mut count = 0;
        crate::run_proptest("counted", &ProptestConfig::with_cases(17), |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 17);
    }
}
