//! # gpm — Graph Pattern Matching via Bounded Simulation
//!
//! A Rust implementation of *"Graph Pattern Matching: From Intractable to
//! Polynomial Time"* (Fan, Li, Ma, Tang, Wu & Wu, PVLDB 3(1), 2010).
//!
//! This facade crate re-exports the whole public API:
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | attributed data graphs, pattern graphs, predicates, traversals, dataset IO |
//! | [`exec`] | the work-stealing fork-join executor and its [`Parallelism`] policy |
//! | [`distance`] | distance matrix, BFS and 2-hop oracles, incremental shortest paths, pluggable backends ([`OracleBackend`]) |
//! | [`matching`] | the cubic-time `Match` (bounded simulation), graph simulation, result graphs |
//! | [`incremental`] | `Match−`, `Match+`, `IncMatch`, shared-AFF repair, and the `IncrementalMatcher` facade |
//! | [`service`] | the continuous multi-pattern matching service (`MatchService`: register/apply/subscribe) |
//! | [`net`] | network front-end for the service (CRC-framed wire protocol, server, client; see PROTOCOL.md) |
//! | [`iso`] | subgraph-isomorphism baselines (Ullmann `SubIso`, VF2) |
//! | [`obs`] | zero-dependency metrics/tracing (counters, histograms, spans; `GPM_OBS`) |
//! | [`datagen`] | synthetic graphs, simulated Matter/PBlog/YouTube datasets, adversarial topologies, dataset sources/export, pattern generator, update streams |
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! Data graphs store their adjacency in compressed-sparse-row form with a
//! delta overlay for incremental updates — see the "Physical layout" section
//! of the [`graph`] module docs and [`DataGraph::compact`].
//!
//! ## Parallelism
//!
//! The hot paths — `Match`'s candidate refinement, distance-matrix
//! construction, candidate computation and batch-update repair — run on a
//! shared work-stealing executor (the [`exec`] module). Every entry point
//! defaults to the process-wide [`Parallelism::from_env`] policy (all
//! available cores, overridable with the `GPM_THREADS` environment
//! variable); `*_on`/`*_with` variants accept an explicit [`Executor`] or
//! [`Parallelism`]. Parallel and sequential runs return **bit-identical**
//! results: every merge happens in a fixed order that does not depend on
//! thread count (see `bounded_simulation_with_oracle_on`).
//!
//! ```
//! use gpm::{bounded_simulation_on, Executor, Parallelism};
//! use gpm::{DataGraphBuilder, PatternGraphBuilder};
//!
//! let (graph, _) = DataGraphBuilder::new()
//!     .labeled_node("a").labeled_node("b").path(&["a", "b"])
//!     .build().unwrap();
//! let (pattern, _) = PatternGraphBuilder::new()
//!     .labeled_node("a").labeled_node("b").edge("a", "b", 1u32)
//!     .build().unwrap();
//!
//! let sequential = bounded_simulation_on(&pattern, &graph, &Executor::sequential());
//! let parallel = bounded_simulation_on(
//!     &pattern,
//!     &graph,
//!     &Executor::new(Parallelism::new(8).with_sequential_threshold(0)),
//! );
//! assert_eq!(sequential, parallel); // bit-identical, including stats
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use gpm::{DataGraphBuilder, PatternGraphBuilder, bounded_simulation};
//!
//! // Build a tiny "who supervises whom" data graph.
//! let (graph, _) = DataGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("manager")
//!     .labeled_node("worker")
//!     .path(&["boss", "manager", "worker"])
//!     .build()
//!     .unwrap();
//!
//! // Pattern: a boss connected to a worker within 2 hops.
//! let (pattern, ids) = PatternGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("worker")
//!     .edge("boss", "worker", 2u32)
//!     .build()
//!     .unwrap();
//!
//! let outcome = bounded_simulation(&pattern, &graph);
//! assert!(outcome.relation.is_match(&pattern));
//! assert_eq!(outcome.relation.matches_of(ids["worker"]).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Attributed data graphs and pattern graphs (re-export of `gpm-graph`).
pub mod graph {
    pub use gpm_graph::*;
}

/// The work-stealing fork-join executor (re-export of `gpm-exec`).
pub mod exec {
    pub use gpm_exec::*;
}

/// Distance oracles and incremental shortest paths (re-export of
/// `gpm-distance`).
pub mod distance {
    pub use gpm_distance::*;
}

/// Bounded simulation, graph simulation and result graphs (re-export of
/// `gpm-core`).
pub mod matching {
    pub use gpm_core::*;
}

/// Incremental matching (re-export of `gpm-incremental`).
pub mod incremental {
    pub use gpm_incremental::*;
}

/// The continuous multi-pattern matching service (re-export of
/// `gpm-service`).
pub mod service {
    pub use gpm_service::*;
}

/// Network front-end for the matching service (re-export of `gpm-net`).
///
/// Exposes a [`service::MatchService`] on a TCP socket: CRC-framed wire
/// protocol (PROTOCOL.md), thread-per-connection server with backpressured
/// subscriber streams, and a blocking client. Wire-observed delta streams
/// are bit-identical to in-process [`service::Subscription`] streams.
pub mod net {
    pub use gpm_net::*;
}

/// Subgraph-isomorphism baselines (re-export of `gpm-iso`).
pub mod iso {
    pub use gpm_iso::*;
}

/// Zero-dependency metrics and structured tracing (re-export of `gpm-obs`).
///
/// Disabled by default; enable with the `GPM_OBS=1` environment variable or
/// [`obs::set_enabled`]. See the `gpm-obs` crate docs for the report and
/// JSONL formats.
pub mod obs {
    pub use gpm_obs::*;
}

/// Workload generators and simulated datasets (re-export of `gpm-datagen`).
pub mod datagen {
    pub use gpm_datagen::*;
}

// Root-level convenience re-exports.
pub use gpm_core::{
    bounded_simulation, bounded_simulation_on, bounded_simulation_with_oracle,
    bounded_simulation_with_oracle_on, graph_simulation, MatchOutcome, MatchRelation, MatchStats,
    ResultGraph,
};
pub use gpm_datagen::{
    export_dataset, generate_pattern, random_graph, random_updates, timed_update_stream, Dataset,
    DatasetSource, PatternGenConfig, RandomGraphConfig, TimedBatch, TimedStreamConfig,
    UpdateStreamConfig,
};
pub use gpm_distance::{
    BfsOracle, DistanceMatrix, DistanceOracle, EdgeUpdate, IncrementalTwoHop, OracleBackend,
    TwoHopIndex, TwoHopOracle,
};
pub use gpm_exec::{Executor, Parallelism};
pub use gpm_graph::{
    load_dataset, AttrSchema, AttrType, AttrValue, Attributes, CmpOp, DataGraph, DataGraphBuilder,
    EdgeBound, GraphError, NodeId, OnDiskDataset, PatternGraph, PatternGraphBuilder, PatternNodeId,
    Predicate,
};
pub use gpm_incremental::{
    inc_match, inc_match_with, match_minus, match_plus, repair_match_state, IncrementalMatcher,
    MatchState, RepairOutcome,
};
pub use gpm_iso::{subgraph_isomorphism_ullmann, subgraph_isomorphism_vf2, IsoConfig, IsoOutcome};
pub use gpm_service::{
    fold_deltas, BatchOutcome, DurabilityError, DurableOptions, MatchDelta, MatchService,
    QueryCatalog, QueryId, ServiceStats, Subscription,
};
