//! Fig. 6(b) — efficiency of `Match` vs VF2 on the (simulated) YouTube
//! graph, or a real on-disk dataset via `--dataset-dir`/`--dataset`.
//!
//! X-axis: patterns P(|Vp|, |Ep|, 3) with |Vp| = |Ep| = 3..8.
//! Curves: Match(Total) — including the distance-matrix construction,
//! Match(Match Process) — excluding it (the matrix is computed once and
//! shared by all patterns), and VF2.

use gpm::{bounded_simulation_with_oracle, subgraph_isomorphism_vf2, IsoConfig};
use gpm_bench::{fmt_ms, load_source_or_exit, patterns_for, time, HarnessArgs, Subject, Table};
use std::time::Duration;

fn main() {
    let args = HarnessArgs::from_env();
    let source = args.update_source_or_exit();
    let graph = load_source_or_exit(&source, &args);
    let subject = Subject::new(graph);
    println!(
        "{}: |V| = {}, |E| = {}, matrix build {} ms [{}]\n",
        source.name(),
        subject.graph.node_count(),
        subject.graph.edge_count(),
        fmt_ms(subject.matrix_build_time),
        source.describe(args.scale)
    );

    let mut table = Table::new(
        "Fig. 6(b): Match vs VF2 elapsed time (avg per pattern)",
        &[
            "pattern",
            "Match total (ms)",
            "Match process (ms)",
            "VF2 (ms)",
        ],
    );

    for size in 3..=8usize {
        let patterns = patterns_for(
            &subject.graph,
            size,
            size,
            3,
            args.patterns,
            args.seed + size as u64,
        );
        let mut match_time = Duration::ZERO;
        let mut vf2_time = Duration::ZERO;
        for pattern in &patterns {
            let (_, t) =
                time(|| bounded_simulation_with_oracle(pattern, &subject.graph, &subject.matrix));
            match_time += t;
            let (_, t) =
                time(|| subgraph_isomorphism_vf2(pattern, &subject.graph, &IsoConfig::default()));
            vf2_time += t;
        }
        let n = patterns.len() as u32;
        let match_avg = match_time / n;
        let vf2_avg = vf2_time / n;
        table.row(vec![
            format!("({size},{size},3)"),
            fmt_ms(match_avg + subject.matrix_build_time),
            fmt_ms(match_avg),
            fmt_ms(vf2_avg),
        ]);
    }
    table.print();
    println!(
        "paper reference: the matching process of Match is much faster than VF2; the total time\n\
         is dominated by the (shared, one-off) distance matrix construction."
    );
}
