//! The pattern generator of the paper's appendix.
//!
//! "A pattern generator takes 4 parameters for generating a pattern
//! `P = (V_p, E_p)`: the number of nodes `|V_p|`, the number of edges
//! `|E_p|`, an upper bound `k` for pattern edges, and a data graph `G`. The
//! generator was designed towards producing positive patterns, i.e. the graph
//! `G` matches the pattern `P`."
//!
//! The construction follows the appendix:
//!
//! 1. pattern nodes are anchored to data nodes: `v_1` is built from a random
//!    data node `x_1`; every later `v_i` is built from a node `x_i` found by
//!    walking at most `k'` hops from the anchor `x_j` of an existing pattern
//!    node `v_j` (`k - c <= k' <= k`), and the edge `(v_j, v_i)` gets bound
//!    `k'` (or `*` with a small probability);
//! 2. once the spanning structure has `|V_p| - 1` edges, extra edges between
//!    random pattern node pairs are added until `|E_p|` is reached (these do
//!    not preserve positiveness, exactly as in the paper).
//!
//! Node predicates are derived from the anchor's attributes so the anchor
//! itself always satisfies them.

use gpm_graph::{
    AttrValue, CmpOp, DataGraph, EdgeBound, NodeId, PatternGraph, PatternNodeId, Predicate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the pattern generator, mirroring the appendix's
/// `P(|V_p|, |E_p|, k)` notation plus the small constants it leaves implicit.
#[derive(Clone, Debug, PartialEq)]
pub struct PatternGenConfig {
    /// Number of pattern nodes `|V_p|`.
    pub nodes: usize,
    /// Number of pattern edges `|E_p|` (at least `nodes - 1` is used to form
    /// the positive spanning structure; fewer requested edges are clamped).
    pub edges: usize,
    /// The upper bound `k` on pattern-edge bounds.
    pub max_bound: u32,
    /// The small constant `c`: bounds are drawn from `[max(1, k - c), k]`.
    pub bound_variation: u32,
    /// Probability that an edge is unbounded (`*`) instead of bounded.
    pub unbounded_probability: f64,
    /// Probability of adding a second atom to a node predicate.
    pub second_atom_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PatternGenConfig {
    /// The paper's `P(|V_p|, |E_p|, k)` with default small constants.
    pub fn new(nodes: usize, edges: usize, max_bound: u32) -> Self {
        PatternGenConfig {
            nodes,
            edges,
            max_bound: max_bound.max(1),
            bound_variation: 2,
            unbounded_probability: 0.1,
            second_atom_probability: 0.3,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a pattern for `graph` according to `config`.
///
/// Returns the pattern and, for each pattern node, the data node it was
/// anchored to (useful for diagnostics; the anchor satisfies the node's
/// predicate by construction).
pub fn generate_pattern(
    graph: &DataGraph,
    config: &PatternGenConfig,
) -> (PatternGraph, Vec<NodeId>) {
    assert!(config.nodes >= 1, "a pattern needs at least one node");
    assert!(
        graph.node_count() > 0,
        "cannot anchor a pattern in an empty data graph"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pattern = PatternGraph::new();
    let mut anchors: Vec<NodeId> = Vec::with_capacity(config.nodes);

    // (1) Anchored spanning structure.
    let x1 = NodeId::new(rng.gen_range(0..graph.node_count() as u32));
    let p1 = pattern.add_node(predicate_from_anchor(graph, x1, config, &mut rng));
    anchors.push(x1);

    for _ in 1..config.nodes {
        let (base_idx, anchor, bound) = pick_anchor_by_walk(graph, &anchors, config, &mut rng);
        let pid = pattern.add_node(predicate_from_anchor(graph, anchor, config, &mut rng));
        anchors.push(anchor);
        let base = PatternNodeId::new(base_idx as u32);
        let bound = maybe_unbounded(bound, config, &mut rng);
        pattern
            .add_edge(base, pid, bound)
            .expect("spanning edges are unique by construction");
    }
    let _ = p1;

    // (2) Extra edges between random pattern node pairs.
    let target_edges = config.edges.max(config.nodes.saturating_sub(1));
    let max_possible = config.nodes * (config.nodes - 1);
    let target_edges = target_edges.min(max_possible);
    let mut attempts = 0usize;
    while pattern.edge_count() < target_edges && attempts < target_edges * 50 + 100 {
        attempts += 1;
        let a = PatternNodeId::new(rng.gen_range(0..config.nodes as u32));
        let b = PatternNodeId::new(rng.gen_range(0..config.nodes as u32));
        if a == b || pattern.has_edge(a, b) {
            continue;
        }
        let bound = maybe_unbounded(draw_bound(config, &mut rng), config, &mut rng);
        let _ = pattern.add_edge(a, b, bound);
    }

    (pattern, anchors)
}

/// Draws a bound `k'` with `max(1, k - c) <= k' <= k`.
fn draw_bound(config: &PatternGenConfig, rng: &mut StdRng) -> u32 {
    let low = config
        .max_bound
        .saturating_sub(config.bound_variation)
        .max(1);
    rng.gen_range(low..=config.max_bound)
}

fn maybe_unbounded(bound: u32, config: &PatternGenConfig, rng: &mut StdRng) -> EdgeBound {
    if rng.gen_bool(config.unbounded_probability) {
        EdgeBound::Unbounded
    } else {
        EdgeBound::Hops(bound)
    }
}

/// Walks at most `k'` hops out of the anchor of a random existing pattern
/// node, returning `(base pattern node index, reached data node, k')`.
///
/// If every walk dead-ends on the base anchor itself, a uniformly random data
/// node is returned instead (the pattern may then be negative, as in the
/// paper's step (2)).
fn pick_anchor_by_walk(
    graph: &DataGraph,
    anchors: &[NodeId],
    config: &PatternGenConfig,
    rng: &mut StdRng,
) -> (usize, NodeId, u32) {
    for _ in 0..8 {
        let base_idx = rng.gen_range(0..anchors.len());
        let start = anchors[base_idx];
        let hops = draw_bound(config, rng);
        let mut current = start;
        let mut best: Option<NodeId> = None;
        for _ in 0..hops {
            let outs = graph.out_neighbors(current);
            if outs.is_empty() {
                break;
            }
            current = outs[rng.gen_range(0..outs.len())];
            if current != start {
                best = Some(current);
                // Stop early sometimes so shorter walks also occur.
                if rng.gen_bool(0.35) {
                    break;
                }
            }
        }
        if let Some(found) = best {
            return (base_idx, found, hops);
        }
    }
    let fallback = NodeId::new(rng.gen_range(0..graph.node_count() as u32));
    let base_idx = rng.gen_range(0..anchors.len());
    (base_idx, fallback, config.max_bound)
}

/// Builds a predicate the anchor node satisfies: one equality/comparison atom
/// over a random attribute, optionally a second one.
fn predicate_from_anchor(
    graph: &DataGraph,
    anchor: NodeId,
    config: &PatternGenConfig,
    rng: &mut StdRng,
) -> Predicate {
    let attrs: Vec<(&str, &AttrValue)> = graph.attributes(anchor).iter().collect();
    if attrs.is_empty() {
        return Predicate::any();
    }
    let mut pred = Predicate::any();
    let first = rng.gen_range(0..attrs.len());
    pred = add_atom_for(pred, attrs[first].0, attrs[first].1, rng);
    if attrs.len() > 1 && rng.gen_bool(config.second_atom_probability) {
        let mut second = rng.gen_range(0..attrs.len());
        if second == first {
            second = (second + 1) % attrs.len();
        }
        pred = add_atom_for(pred, attrs[second].0, attrs[second].1, rng);
    }
    pred
}

fn add_atom_for(pred: Predicate, key: &str, value: &AttrValue, rng: &mut StdRng) -> Predicate {
    match value {
        AttrValue::Str(_) | AttrValue::Bool(_) => pred.and(key, CmpOp::Eq, value.clone()),
        AttrValue::Int(_) | AttrValue::Float(_) => {
            // A comparison the anchor satisfies: <=, >= or = its own value.
            let op = match rng.gen_range(0..3) {
                0 => CmpOp::Le,
                1 => CmpOp::Ge,
                _ => CmpOp::Eq,
            };
            pred.and(key, op, value.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_graph::{random_graph, RandomGraphConfig};

    fn sample_graph(seed: u64) -> DataGraph {
        random_graph(&RandomGraphConfig::new(300, 900, 15).with_seed(seed))
    }

    #[test]
    fn produces_requested_shape() {
        let g = sample_graph(1);
        let cfg = PatternGenConfig::new(6, 8, 3).with_seed(2);
        let (p, anchors) = generate_pattern(&g, &cfg);
        assert_eq!(p.node_count(), 6);
        assert_eq!(p.edge_count(), 8);
        assert_eq!(anchors.len(), 6);
    }

    #[test]
    fn edge_count_clamped_to_simple_digraph() {
        let g = sample_graph(3);
        let cfg = PatternGenConfig::new(3, 50, 2).with_seed(0);
        let (p, _) = generate_pattern(&g, &cfg);
        assert_eq!(p.node_count(), 3);
        assert!(p.edge_count() <= 6);
    }

    #[test]
    fn bounds_respect_k_and_variation() {
        let g = sample_graph(5);
        let cfg = PatternGenConfig {
            unbounded_probability: 0.0,
            ..PatternGenConfig::new(8, 12, 5).with_seed(9)
        };
        let (p, _) = generate_pattern(&g, &cfg);
        for e in p.edges() {
            let k = e.bound.hops().expect("no unbounded edges requested");
            assert!((3..=5).contains(&k), "bound {k} outside [k-c, k]");
        }
    }

    #[test]
    fn unbounded_edges_appear_when_forced() {
        let g = sample_graph(6);
        let cfg = PatternGenConfig {
            unbounded_probability: 1.0,
            ..PatternGenConfig::new(5, 7, 4).with_seed(1)
        };
        let (p, _) = generate_pattern(&g, &cfg);
        assert!(p.edges().all(|e| e.bound.is_unbounded()));
    }

    #[test]
    fn anchors_satisfy_their_predicates() {
        let g = sample_graph(7);
        for seed in 0..10 {
            let cfg = PatternGenConfig::new(5, 6, 3).with_seed(seed);
            let (p, anchors) = generate_pattern(&g, &cfg);
            for (u, &anchor) in p.node_ids().zip(anchors.iter()) {
                assert!(
                    g.satisfies(anchor, p.predicate(u)),
                    "anchor {anchor} violates predicate of {u} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = sample_graph(8);
        let cfg = PatternGenConfig::new(6, 9, 4).with_seed(77);
        let (p1, a1) = generate_pattern(&g, &cfg);
        let (p2, a2) = generate_pattern(&g, &cfg);
        assert_eq!(a1, a2);
        assert_eq!(p1.node_count(), p2.node_count());
        assert_eq!(p1.edge_count(), p2.edge_count());
        let e1: Vec<_> = p1.edges().collect();
        let e2: Vec<_> = p2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn single_node_pattern() {
        let g = sample_graph(9);
        let cfg = PatternGenConfig::new(1, 0, 3).with_seed(4);
        let (p, anchors) = generate_pattern(&g, &cfg);
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.edge_count(), 0);
        assert_eq!(anchors.len(), 1);
    }

    #[test]
    #[should_panic(expected = "empty data graph")]
    fn empty_graph_panics() {
        let g = DataGraph::new();
        let cfg = PatternGenConfig::new(2, 1, 2);
        let _ = generate_pattern(&g, &cfg);
    }
}
