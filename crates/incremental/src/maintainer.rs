//! `IncrementalMatcher` — an owning facade over the incremental machinery.
//!
//! The paper's workflow is: "compute matches in `G` once, and then
//! incrementally maintain the matches when `G` is updated". This type bundles
//! everything that workflow needs — the pattern, the evolving data graph, the
//! distance matrix `M` and the match state — and routes updates to
//! `Match−` / `Match+` / `IncMatch` as appropriate. For the combinations the
//! incremental algorithms do not cover (insertions with cyclic patterns), it
//! falls back to recomputation so callers always end up in a consistent
//! state.

use crate::affected::IncrementalOutcome;
use crate::batch::inc_match_with;
use crate::delete::match_minus;
use crate::insert::match_plus;
use crate::state::MatchState;
use gpm_core::{MatchRelation, ResultGraph};
use gpm_distance::{update_matrix_batch_with, update_matrix_with, DistanceMatrix, EdgeUpdate};
use gpm_exec::{Executor, Parallelism};
use gpm_graph::{DataGraph, GraphError, PatternGraph};

/// Owns a pattern, a data graph, the distance matrix and the match state, and
/// keeps them consistent under edge updates.
#[derive(Clone, Debug)]
pub struct IncrementalMatcher {
    pattern: PatternGraph,
    graph: DataGraph,
    matrix: DistanceMatrix,
    state: MatchState,
    exec: Executor,
    recompute_fallbacks: usize,
}

impl IncrementalMatcher {
    /// Builds the matcher: computes the distance matrix and the initial
    /// maximum match (the "batch" phase). Uses the process-default
    /// [`Parallelism`] policy; see [`IncrementalMatcher::with_parallelism`].
    pub fn new(pattern: PatternGraph, graph: DataGraph) -> Self {
        Self::with_parallelism(pattern, graph, Parallelism::from_env())
    }

    /// Builds the matcher with an explicit [`Parallelism`] policy, used for
    /// the initial matrix build and match, and for every subsequent update's
    /// affected-area repair.
    pub fn with_parallelism(
        pattern: PatternGraph,
        graph: DataGraph,
        parallelism: Parallelism,
    ) -> Self {
        let exec = Executor::new(parallelism);
        let matrix = DistanceMatrix::build_with(&graph, &exec);
        let state = MatchState::initialise_with(&pattern, &graph, &matrix, &exec);
        IncrementalMatcher {
            pattern,
            graph,
            matrix,
            state,
            exec,
            recompute_fallbacks: 0,
        }
    }

    /// The pattern being maintained.
    pub fn pattern(&self) -> &PatternGraph {
        &self.pattern
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The maintained distance matrix `M`.
    pub fn matrix(&self) -> &DistanceMatrix {
        &self.matrix
    }

    /// The current maximum match (`∅` if the pattern is not matched).
    pub fn relation(&self) -> MatchRelation {
        self.state.relation()
    }

    /// Whether the pattern currently matches the graph (`P ⊴ G`).
    pub fn is_match(&self) -> bool {
        self.state.all_matched()
    }

    /// The result graph of the current maximum match.
    pub fn result_graph(&self) -> ResultGraph {
        ResultGraph::build(&self.pattern, &self.graph, &self.relation())
    }

    /// How many times an update had to fall back to full recomputation
    /// (insertions with a cyclic pattern).
    pub fn recompute_fallbacks(&self) -> usize {
        self.recompute_fallbacks
    }

    /// Folds the data graph's CSR delta overlay back into its base arrays
    /// (see [`DataGraph::compact`]).
    ///
    /// Incremental updates deliberately leave per-node side lists behind
    /// instead of rebuilding the CSR layout on every edge change; calling
    /// this at a quiesce point (end of an update burst, before a read-heavy
    /// phase) restores fully contiguous neighbour iteration. Never required
    /// for correctness.
    pub fn compact_graph(&mut self) {
        self.graph.compact();
    }

    /// Applies a single edge update incrementally.
    ///
    /// Deletions use `Match−` (any pattern); insertions use `Match+` for DAG
    /// patterns and fall back to maintaining the matrix incrementally plus
    /// recomputing the match for cyclic patterns.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<IncrementalOutcome, GraphError> {
        match update {
            EdgeUpdate::Delete(a, b) => match_minus(
                &self.pattern,
                &mut self.graph,
                &mut self.matrix,
                &mut self.state,
                a,
                b,
            ),
            EdgeUpdate::Insert(a, b) => {
                if self.pattern.is_dag() {
                    match_plus(
                        &self.pattern,
                        &mut self.graph,
                        &mut self.matrix,
                        &mut self.state,
                        a,
                        b,
                    )
                } else {
                    self.graph.add_edge(a, b)?;
                    let aff1 = update_matrix_with(
                        &self.graph,
                        &mut self.matrix,
                        EdgeUpdate::Insert(a, b),
                        &self.exec,
                    );
                    self.recompute_state();
                    Ok(IncrementalOutcome::new(aff1, Default::default(), 0))
                }
            }
        }
    }

    /// Applies a batch of updates.
    ///
    /// DAG patterns use `IncMatch`; cyclic patterns maintain the matrix with
    /// `UpdateBM` and recompute the match.
    pub fn apply_batch(
        &mut self,
        updates: &[EdgeUpdate],
    ) -> Result<IncrementalOutcome, GraphError> {
        if self.pattern.is_dag() {
            return inc_match_with(
                &self.pattern,
                &mut self.graph,
                &mut self.matrix,
                &mut self.state,
                updates,
                &self.exec,
            );
        }
        let mut applied = Vec::with_capacity(updates.len());
        for u in updates {
            if u.apply(&mut self.graph) {
                applied.push(*u);
            }
        }
        let aff1 = update_matrix_batch_with(&self.graph, &mut self.matrix, &applied, &self.exec);
        self.recompute_state();
        Ok(IncrementalOutcome::new(aff1, Default::default(), 0))
    }

    fn recompute_state(&mut self) {
        self.recompute_fallbacks += 1;
        self.state =
            MatchState::initialise_with(&self.pattern, &self.graph, &self.matrix, &self.exec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_datagen::{random_graph, random_updates, RandomGraphConfig, UpdateStreamConfig};
    use gpm_graph::{NodeId, PatternGraphBuilder, Predicate};

    fn dag_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .node("z", Predicate::label("a2"))
            .edge("x", "y", 2u32)
            .edge("y", "z", 3u32)
            .build()
            .unwrap();
        p
    }

    fn cyclic_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .edge("x", "y", 2u32)
            .edge("y", "x", 2u32)
            .build()
            .unwrap();
        p
    }

    #[test]
    fn unit_updates_keep_matcher_consistent() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(5));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(30).with_seed(6));
        for u in updates {
            matcher.apply(u).unwrap();
            let recomputed = bounded_simulation_with_oracle(
                matcher.pattern(),
                matcher.graph(),
                matcher.matrix(),
            );
            assert_eq!(matcher.relation(), recomputed.relation);
        }
        assert_eq!(matcher.recompute_fallbacks(), 0);
    }

    #[test]
    fn batch_updates_keep_matcher_consistent() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(7));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(40).with_seed(8));
        let out = matcher.apply_batch(&updates).unwrap();
        assert_eq!(out.stats.aff1, out.aff1.len());
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.matrix());
        assert_eq!(matcher.relation(), recomputed.relation);
    }

    #[test]
    fn cyclic_pattern_falls_back_on_insertions() {
        let g = random_graph(&RandomGraphConfig::new(30, 60, 4).with_seed(9));
        let mut matcher = IncrementalMatcher::new(cyclic_pattern(), g.clone());
        // Deletion: incremental (Match− supports cyclic patterns).
        let (a, b) = g.edges().next().unwrap();
        matcher.apply(EdgeUpdate::Delete(a, b)).unwrap();
        assert_eq!(matcher.recompute_fallbacks(), 0);
        // Insertion: falls back to recomputation.
        let mut inserted = None;
        'outer: for x in g.nodes() {
            for y in g.nodes() {
                if !matcher.graph().has_edge(x, y) {
                    inserted = Some((x, y));
                    break 'outer;
                }
            }
        }
        let (x, y) = inserted.unwrap();
        matcher.apply(EdgeUpdate::Insert(x, y)).unwrap();
        assert_eq!(matcher.recompute_fallbacks(), 1);
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.matrix());
        assert_eq!(matcher.relation(), recomputed.relation);

        // Batch with a cyclic pattern also falls back but stays consistent.
        let updates = random_updates(matcher.graph(), &UpdateStreamConfig::mixed(10).with_seed(1));
        matcher.apply_batch(&updates).unwrap();
        assert_eq!(matcher.recompute_fallbacks(), 2);
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.matrix());
        assert_eq!(matcher.relation(), recomputed.relation);
    }

    #[test]
    fn compacting_between_update_bursts_preserves_consistency() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(21));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(24).with_seed(22));
        for (i, u) in updates.into_iter().enumerate() {
            matcher.apply(u).unwrap();
            if i % 8 == 7 {
                matcher.compact_graph();
                assert!(matcher.graph().is_compact());
                let recomputed = bounded_simulation_with_oracle(
                    matcher.pattern(),
                    matcher.graph(),
                    matcher.matrix(),
                );
                assert_eq!(matcher.relation(), recomputed.relation);
            }
        }
    }

    #[test]
    fn accessors_and_result_graph() {
        let g = random_graph(&RandomGraphConfig::new(25, 60, 3).with_seed(11));
        let matcher = IncrementalMatcher::new(dag_pattern(), g);
        assert_eq!(matcher.pattern().node_count(), 3);
        assert_eq!(matcher.graph().node_count(), 25);
        assert_eq!(matcher.matrix().node_count(), 25);
        let rg = matcher.result_graph();
        if matcher.is_match() {
            assert!(!rg.is_empty());
        } else {
            assert!(rg.is_empty());
        }
    }

    #[test]
    fn invalid_updates_propagate_errors() {
        let g = random_graph(&RandomGraphConfig::new(10, 20, 2).with_seed(13));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        // Delete a non-existent edge.
        let missing = {
            let mut found = None;
            'outer: for x in g.nodes() {
                for y in g.nodes() {
                    if !g.has_edge(x, y) {
                        found = Some((x, y));
                        break 'outer;
                    }
                }
            }
            found.unwrap()
        };
        assert!(matcher
            .apply(EdgeUpdate::Delete(missing.0, missing.1))
            .is_err());
        // Insert a node that does not exist.
        assert!(matcher
            .apply(EdgeUpdate::Insert(NodeId::new(999), NodeId::new(0)))
            .is_err());
    }
}
