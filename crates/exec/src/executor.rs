//! The [`Executor`]: scoped fork-join regions scheduled over work-stealing
//! deques.

use crate::deque::StealDeque;
use crate::parallelism::Parallelism;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Shared handles into the `exec` observability scope. All executor counters
/// are scheduling-dependent (chunk counts, steal opportunities and busy time
/// vary with `GPM_THREADS`), so they register as nondeterministic.
struct ExecMetrics {
    scope: Arc<gpm_obs::Scope>,
    regions: Arc<gpm_obs::Counter>,
    tasks_spawned: Arc<gpm_obs::Counter>,
    steals: Arc<gpm_obs::Counter>,
    busy_ns: Arc<gpm_obs::Counter>,
}

fn metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let scope = gpm_obs::registry().scope("exec");
        ExecMetrics {
            regions: scope.nondet_counter("regions"),
            tasks_spawned: scope.nondet_counter("tasks_spawned"),
            steals: scope.nondet_counter("steals"),
            busy_ns: scope.nondet_counter("busy_ns"),
            scope,
        }
    })
}

/// A task queued in a parallel region: borrowed-data fork-join closures.
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// How many tasks each worker thread is dealt (on average) by the chunked
/// combinators. More tasks than workers is what gives stealing room to
/// balance skewed per-item costs; 4 is plenty for the coarse-grained work in
/// this codebase.
const TASKS_PER_WORKER: usize = 4;

/// A scoped fork-join executor over a [`Parallelism`] policy.
///
/// The executor is a cheap value type (a policy, not a thread pool): worker
/// threads are `std::thread::scope`d to each parallel region, so tasks can
/// borrow from the caller's stack and every region joins before returning.
/// See the [crate docs](crate) for the design rationale.
#[derive(Clone, Debug, Default)]
pub struct Executor {
    cfg: Parallelism,
}

impl Executor {
    /// Creates an executor with the given policy.
    pub fn new(cfg: Parallelism) -> Self {
        Executor { cfg }
    }

    /// An executor that runs everything inline on the caller thread.
    pub fn sequential() -> Self {
        Executor::new(Parallelism::sequential())
    }

    /// An executor with the process-default policy
    /// ([`Parallelism::from_env`]).
    pub fn from_env() -> Self {
        Executor::new(Parallelism::from_env())
    }

    /// The policy this executor schedules with.
    pub fn parallelism(&self) -> &Parallelism {
        &self.cfg
    }

    /// Number of worker threads (including the caller), `>= 1`.
    pub fn threads(&self) -> usize {
        self.cfg.threads()
    }

    /// Runs a fork-join region: `f` spawns any number of tasks on the
    /// [`Scope`]; all of them have completed when `scope` returns.
    ///
    /// Tasks may borrow data living outside the call. A panicking task
    /// panics the region: remaining unstarted tasks may be skipped and the
    /// first panic payload is re-raised on the caller thread.
    pub fn scope<'env, F>(&self, f: F)
    where
        F: FnOnce(&mut Scope<'env>),
    {
        let mut scope = Scope { tasks: Vec::new() };
        f(&mut scope);
        self.run_tasks(scope.tasks);
    }

    /// Runs `n` index-addressed tasks and returns their results **in index
    /// order** (the deterministic merge every ported hot path relies on).
    ///
    /// `work_hint` is the region's item count for the sequential-fallback
    /// decision (often, but not necessarily, `n` — the matcher passes the
    /// data-graph size when `n` is a small pattern dimension). Below the
    /// threshold the same tasks run inline in index order, so results are
    /// identical either way.
    pub fn map_tasks<R, F>(&self, n: usize, work_hint: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n <= 1 || !self.cfg.should_parallelise(work_hint) {
            return (0..n).map(f).collect();
        }
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            let f = &f;
            for (i, slot) in slots.iter().enumerate() {
                s.spawn(move || {
                    let value = f(i);
                    *slot.lock().unwrap() = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("scope joined every task, so every slot is filled")
            })
            .collect()
    }

    /// Runs `f` for every index in `0..n`, splitting the range into chunks
    /// scheduled across the workers. `f` must tolerate any execution order.
    pub fn par_for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if !self.cfg.should_parallelise(n) {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let chunk = chunk_len(n, self.threads());
        self.scope(|s| {
            let f = &f;
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                s.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
                start = end;
            }
        });
    }

    /// Maps every index in `0..n`, returning the results in index order.
    /// Chunked like [`Executor::par_for_each_index`]; deterministic like
    /// [`Executor::map_tasks`].
    pub fn par_map_index<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if !self.cfg.should_parallelise(n) {
            return (0..n).map(f).collect();
        }
        let chunk = chunk_len(n, self.threads());
        let n_chunks = n.div_ceil(chunk);
        let mut per_chunk = self.map_tasks(n_chunks, n, |c| {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(n);
            (start..end).map(&f).collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(n);
        for vals in per_chunk.drain(..) {
            out.extend(vals);
        }
        out
    }

    /// Maps a slice, returning results in element order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_index(items.len(), |i| f(&items[i]))
    }

    /// Runs `f` for every element of a slice (any execution order).
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.par_for_each_index(items.len(), |i| f(i, &items[i]));
    }

    /// Splits `data` into consecutive chunks of (at most) `chunk_len`
    /// elements and runs `f(chunk_index, chunk)` for each, in parallel.
    /// Chunks are disjoint `&mut` slices, so no synchronisation is needed
    /// inside `f`.
    ///
    /// # Panics
    /// Panics if `chunk_len` is zero.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be positive");
        if data.len() <= chunk_len || !self.cfg.should_parallelise(data.len()) {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        self.scope(|s| {
            let f = &f;
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                s.spawn(move || f(i, chunk));
            }
        });
    }

    /// Parallel reduction: maps every index in `0..n` and folds the results
    /// with `fold`, starting from `identity()`.
    ///
    /// In deterministic mode ([`Parallelism::deterministic`], the default)
    /// partial results are folded in index order; otherwise they are folded
    /// in completion order, which is only observably different when `fold`
    /// is not commutative/associative.
    pub fn par_reduce<R, I, F, G>(&self, n: usize, identity: I, map: F, fold: G) -> R
    where
        R: Send,
        I: Fn() -> R,
        F: Fn(usize) -> R + Sync,
        G: Fn(R, R) -> R + Sync,
    {
        if !self.cfg.should_parallelise(n) {
            return (0..n).map(&map).fold(identity(), &fold);
        }
        let chunk = chunk_len(n, self.threads());
        let n_chunks = n.div_ceil(chunk);
        let partials: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
        self.scope(|s| {
            let map = &map;
            let fold = &fold;
            let partials = &partials;
            for c in 0..n_chunks {
                s.spawn(move || {
                    let start = c * chunk;
                    let end = ((c + 1) * chunk).min(n);
                    let mut acc: Option<R> = None;
                    for i in start..end {
                        let v = map(i);
                        acc = Some(match acc {
                            None => v,
                            Some(a) => fold(a, v),
                        });
                    }
                    if let Some(a) = acc {
                        partials.lock().unwrap().push((c, a));
                    }
                });
            }
        });
        let mut partials = partials.into_inner().unwrap();
        if self.cfg.deterministic() {
            partials.sort_unstable_by_key(|&(c, _)| c);
        }
        partials.into_iter().map(|(_, r)| r).fold(identity(), fold)
    }

    /// Executes a collected task list: inline when the region is degenerate
    /// (`<= 1` task or a single worker), otherwise over scoped workers with
    /// round-robin dealing and work stealing.
    fn run_tasks<'env>(&self, tasks: Vec<Task<'env>>) {
        let n = tasks.len();
        if gpm_obs::enabled() && n > 0 {
            let m = metrics();
            m.regions.inc();
            m.tasks_spawned.add(n as u64);
        }
        let workers = self.cfg.threads().min(n);
        if workers <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let deques: Vec<StealDeque<Task<'env>>> = (0..workers).map(|_| StealDeque::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            deques[i % workers].push_bottom(task);
        }
        let panicked = AtomicBool::new(false);
        let payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        std::thread::scope(|s| {
            for w in 1..workers {
                let deques = &deques;
                let panicked = &panicked;
                let payload = &payload;
                s.spawn(move || worker_loop(w, deques, panicked, payload));
            }
            worker_loop(0, &deques, &panicked, &payload);
        });
        if panicked.load(Ordering::Relaxed) {
            let p = payload
                .into_inner()
                .unwrap()
                .expect("panicked flag implies a stored payload");
            resume_unwind(p);
        }
    }
}

/// Collects the tasks of one fork-join region (see [`Executor::scope`]).
pub struct Scope<'env> {
    tasks: Vec<Task<'env>>,
}

impl<'env> Scope<'env> {
    /// Queues a task; it runs when the surrounding [`Executor::scope`] call
    /// executes the region.
    pub fn spawn<F>(&mut self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.tasks.push(Box::new(f));
    }

    /// Number of tasks queued so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task has been queued yet.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// One worker: drain the own deque bottom-first, then steal from the others
/// top-first; stop when every deque is empty or the region has panicked.
fn worker_loop<'env>(
    me: usize,
    deques: &[StealDeque<Task<'env>>],
    panicked: &AtomicBool,
    payload: &Mutex<Option<Box<dyn Any + Send>>>,
) {
    // Steals and busy time accumulate in locals and flush once at region
    // exit, so the hot loop stays free of shared-counter traffic.
    let obs = gpm_obs::enabled().then(metrics);
    let mut steals = 0u64;
    let mut busy_ns = 0u64;
    loop {
        if panicked.load(Ordering::Relaxed) {
            break;
        }
        let mut stolen = false;
        let task = deques[me].pop_bottom().or_else(|| {
            (1..deques.len())
                .find_map(|k| deques[(me + k) % deques.len()].steal_top())
                .map(|t| {
                    stolen = true;
                    t
                })
        });
        let Some(task) = task else { break };
        if stolen {
            steals += 1;
        }
        let result = if obs.is_some() {
            let start = Instant::now();
            let r = catch_unwind(AssertUnwindSafe(task));
            busy_ns += start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            r
        } else {
            catch_unwind(AssertUnwindSafe(task))
        };
        if let Err(p) = result {
            let mut slot = payload.lock().unwrap();
            if slot.is_none() {
                *slot = Some(p);
            }
            panicked.store(true, Ordering::Relaxed);
            break;
        }
    }
    if let Some(m) = obs {
        if steals > 0 {
            m.steals.add(steals);
        }
        if busy_ns > 0 {
            m.busy_ns.add(busy_ns);
            m.scope
                .nondet_counter(&format!("worker{me}.busy_ns"))
                .add(busy_ns);
        }
    }
}

/// Chunk length that deals roughly [`TASKS_PER_WORKER`] tasks per worker.
fn chunk_len(n: usize, workers: usize) -> usize {
    n.div_ceil(workers.max(1) * TASKS_PER_WORKER).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn forced(threads: usize) -> Executor {
        // Threshold 0: even tiny regions exercise the threaded machinery.
        Executor::new(Parallelism::new(threads).with_sequential_threshold(0))
    }

    #[test]
    fn zero_and_single_task_regions() {
        for exec in [Executor::sequential(), forced(4)] {
            exec.scope(|_| {}); // empty region is a no-op
            assert!(exec.par_map_index(0, |i| i).is_empty());
            assert_eq!(exec.map_tasks(0, usize::MAX, |i| i), Vec::<usize>::new());
            assert_eq!(exec.par_map_index(1, |i| i + 7), vec![7]);
            exec.par_chunks_mut(&mut [] as &mut [u8], 3, |_, _| unreachable!());
        }
    }

    #[test]
    fn threads_1_is_a_passthrough() {
        let exec = Executor::new(Parallelism::new(1).with_sequential_threshold(0));
        // Inline execution happens in task order on the caller thread.
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        exec.scope(|s| {
            for i in 0..5 {
                let order = &order;
                s.spawn(move || {
                    assert_eq!(std::thread::current().id(), caller);
                    order.lock().unwrap().push(i);
                });
            }
        });
        assert_eq!(order.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn map_results_are_in_index_order() {
        let exec = forced(4);
        let expected: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(exec.par_map_index(1000, |i| i * 3), expected);
        assert_eq!(exec.map_tasks(100, usize::MAX, |i| i * 3), expected[..100]);
        let items: Vec<usize> = (0..500).collect();
        assert_eq!(exec.par_map(&items, |&v| v * 3), expected[..500]);
    }

    #[test]
    fn for_each_visits_every_index_once() {
        let exec = forced(3);
        let counts: Vec<AtomicUsize> = (0..777).map(|_| AtomicUsize::new(0)).collect();
        exec.par_for_each_index(777, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        let items = vec![2u64; 40];
        let sum = AtomicUsize::new(0);
        exec.par_for_each(&items, |_, &v| {
            sum.fetch_add(v as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 80);
    }

    #[test]
    fn chunks_mut_partitions_exactly() {
        let exec = forced(4);
        let mut data = vec![0u32; 103];
        exec.par_chunks_mut(&mut data, 10, |ci, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 10 + j) as u32;
            }
        });
        let expected: Vec<u32> = (0..103).collect();
        assert_eq!(data, expected);
    }

    #[test]
    fn reduce_deterministic_and_not() {
        let exec = forced(4);
        let sum = exec.par_reduce(1000, || 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(sum, 499_500);
        // Non-deterministic mode still produces the right answer for a
        // commutative fold.
        let loose = Executor::new(
            Parallelism::new(4)
                .with_sequential_threshold(0)
                .with_deterministic(false),
        );
        assert_eq!(
            loose.par_reduce(1000, || 0u64, |i| i as u64, |a, b| a + b),
            499_500
        );
        // Deterministic mode folds partials in index order even for a
        // non-commutative fold (string concatenation).
        let cat = exec.par_reduce(
            26,
            String::new,
            |i| char::from(b'a' + i as u8).to_string(),
            |a, b| a + &b,
        );
        assert_eq!(cat, "abcdefghijklmnopqrstuvwxyz");
    }

    #[test]
    fn scope_panics_propagate() {
        let exec = forced(4);
        let err = catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|s| {
                for i in 0..64 {
                    s.spawn(move || {
                        if i == 13 {
                            panic!("boom {i}");
                        }
                    });
                }
            });
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().map(String::as_str);
        assert_eq!(msg, Some("boom 13"));
        // And inline regions propagate identically.
        let seq = Executor::sequential();
        let err = catch_unwind(AssertUnwindSafe(|| {
            seq.scope(|s| s.spawn(|| panic!("inline boom")));
        }))
        .unwrap_err();
        assert_eq!(err.downcast_ref::<&str>(), Some(&"inline boom"));
    }

    #[test]
    fn borrowed_data_mutation_through_scope() {
        let exec = forced(2);
        let mut out = vec![0usize; 8];
        {
            let slots: Vec<_> = out.chunks_mut(1).collect();
            exec.scope(|s| {
                for (i, slot) in slots.into_iter().enumerate() {
                    s.spawn(move || slot[0] = i * i);
                }
            });
        }
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn scope_len_accessors() {
        let exec = Executor::sequential();
        exec.scope(|s| {
            assert!(s.is_empty());
            s.spawn(|| {});
            assert_eq!(s.len(), 1);
            assert!(!s.is_empty());
        });
    }

    #[test]
    fn work_hint_gates_map_tasks() {
        // With a high threshold and a small hint, map_tasks runs inline even
        // for many tasks — observable through the thread id.
        let exec = Executor::new(Parallelism::new(4).with_sequential_threshold(1_000_000));
        let caller = std::thread::current().id();
        let ids = exec.map_tasks(32, 10, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }
}
