//! `IncMatch` — incremental maintenance under a **batch** of edge updates
//! (Fig. 8 of the paper). Requires a DAG pattern; data graphs may be cyclic.
//!
//! The batch algorithm updates the distance matrix once for the whole list of
//! updates (`UpdateBM`), then repairs the match from the combined `AFF1`:
//!
//! 1. sources whose outgoing distances **increased** are handled with the
//!    removal propagation of `Match−`;
//! 2. sources whose outgoing distances **decreased** are handled with the
//!    addition propagation of `Match+`.
//!
//! Removals are processed before additions: a match that loses its witness
//! through one update of the batch but regains a (different) witness through
//! another is first moved out of the match and then re-added by the addition
//! pass — this is the role of the paper's "move `v'` to `can(u')` instead of
//! dropping it" remark, and processing the phases in this order is what makes
//! the combined repair confluent.

use crate::affected::IncrementalOutcome;
use crate::repair::repair_match_state;
use crate::state::MatchState;
use gpm_distance::{DistanceOracle, EdgeUpdate};
use gpm_exec::Executor;
use gpm_graph::{DataGraph, GraphError, PatternGraph};

/// Applies a batch `δ` of edge updates to `graph`, maintains `oracle` and
/// `state`, and reports the affected areas.
///
/// Updates that are no-ops at their position in the batch (inserting an
/// existing edge, deleting a missing one) are skipped, matching the
/// behaviour of the update-stream generator. Errors with
/// [`GraphError::PatternNotAcyclic`] for cyclic patterns (nothing modified).
pub fn inc_match<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &mut DataGraph,
    oracle: &mut O,
    state: &mut MatchState,
    updates: &[EdgeUpdate],
) -> Result<IncrementalOutcome, GraphError> {
    inc_match_with(
        pattern,
        graph,
        oracle,
        state,
        updates,
        &Executor::from_env(),
    )
}

/// [`inc_match`] on an explicit executor.
///
/// The expensive half of batch maintenance — `UpdateBM`'s distance repair —
/// is partitioned by affected area across the workers (source rows for
/// insertions, affected sink columns for deletions; see
/// [`gpm_distance::update_matrix_with`]) with merges in a fixed order, so
/// the maintained oracle, match state and reported `AFF1`/`AFF2` are
/// identical at every thread count. The match-repair passes themselves
/// (`Match−`/`Match+` propagation) stay sequential: their work is
/// proportional to `|AFF2|`, which the paper shows to be small.
pub fn inc_match_with<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &mut DataGraph,
    oracle: &mut O,
    state: &mut MatchState,
    updates: &[EdgeUpdate],
    exec: &Executor,
) -> Result<IncrementalOutcome, GraphError> {
    pattern.require_dag()?;

    // Apply the batch to the graph, remembering which updates took effect.
    let mut applied: Vec<EdgeUpdate> = Vec::with_capacity(updates.len());
    for u in updates {
        if u.apply(graph) {
            applied.push(*u);
        }
    }
    let aff1 = oracle.apply_batch(graph, &applied, exec);

    // Removals first, then additions (see module docs) — the shared repair
    // entry point preserves that order; the DAG requirement is already
    // checked above, so it cannot fail here.
    let repair = repair_match_state(pattern, graph, oracle, state, &aff1)?;
    Ok(IncrementalOutcome::new(
        aff1,
        repair.aff2,
        repair.verifications,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_datagen::{random_graph, random_updates, RandomGraphConfig, UpdateStreamConfig};
    use gpm_distance::DistanceMatrix;
    use gpm_graph::{PatternGraphBuilder, Predicate};
    use proptest::prelude::*;

    fn dag_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .node("z", Predicate::label("a2"))
            .node("w", Predicate::label("a3"))
            .edge("x", "y", 2u32)
            .edge("y", "z", 3u32)
            .edge("x", "z", 4u32)
            .unbounded_edge("z", "w")
            .build()
            .unwrap();
        p
    }

    fn run_batch_and_compare(seed: u64, nodes: usize, edges: usize, batch: usize) {
        let mut g = random_graph(&RandomGraphConfig::new(nodes, edges, 5).with_seed(seed));
        let p = dag_pattern();
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);

        let updates = random_updates(
            &g,
            &UpdateStreamConfig::mixed(batch).with_seed(seed * 31 + 1),
        );
        let out = inc_match(&p, &mut g, &mut m, &mut s, &updates).unwrap();

        // The matrix and the match equal a from-scratch recomputation.
        assert_eq!(
            m,
            DistanceMatrix::build(&g),
            "matrix diverged (seed {seed})"
        );
        let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
        assert_eq!(
            s.relation(),
            recomputed.relation,
            "match diverged (seed {seed})"
        );
        assert_eq!(out.stats.aff2, out.aff2.len());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut g = random_graph(&RandomGraphConfig::new(30, 60, 5).with_seed(1));
        let p = dag_pattern();
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        let before = s.relation();
        let out = inc_match(&p, &mut g, &mut m, &mut s, &[]).unwrap();
        assert!(out.aff1.is_empty());
        assert!(out.aff2.is_empty());
        assert_eq!(s.relation(), before);
    }

    #[test]
    fn cyclic_pattern_is_rejected() {
        let mut g = random_graph(&RandomGraphConfig::new(10, 20, 3).with_seed(2));
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .edge("x", "y", 1u32)
            .edge("y", "x", 1u32)
            .build()
            .unwrap();
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        let err = inc_match(&p, &mut g, &mut m, &mut s, &[]);
        assert_eq!(err.unwrap_err(), GraphError::PatternNotAcyclic);
    }

    #[test]
    fn mixed_batches_match_recompute_fixed_seeds() {
        for seed in 0..12u64 {
            run_batch_and_compare(seed, 40, 100, 25);
        }
    }

    #[test]
    fn deletion_only_batches() {
        for seed in 0..6u64 {
            let mut g = random_graph(&RandomGraphConfig::new(35, 90, 5).with_seed(seed));
            let p = dag_pattern();
            let mut m = DistanceMatrix::build(&g);
            let mut s = MatchState::initialise(&p, &g, &m);
            let updates =
                random_updates(&g, &UpdateStreamConfig::deletions(20).with_seed(seed + 99));
            inc_match(&p, &mut g, &mut m, &mut s, &updates).unwrap();
            let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
            assert_eq!(s.relation(), recomputed.relation, "seed {seed}");
        }
    }

    #[test]
    fn insertion_only_batches() {
        for seed in 0..6u64 {
            let mut g = random_graph(&RandomGraphConfig::new(35, 60, 5).with_seed(seed));
            let p = dag_pattern();
            let mut m = DistanceMatrix::build(&g);
            let mut s = MatchState::initialise(&p, &g, &m);
            let updates =
                random_updates(&g, &UpdateStreamConfig::insertions(20).with_seed(seed + 7));
            inc_match(&p, &mut g, &mut m, &mut s, &updates).unwrap();
            let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
            assert_eq!(s.relation(), recomputed.relation, "seed {seed}");
        }
    }

    #[test]
    fn repeated_batches_stay_consistent() {
        let mut g = random_graph(&RandomGraphConfig::new(40, 90, 5).with_seed(3));
        let p = dag_pattern();
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        for round in 0..5u64 {
            let updates =
                random_updates(&g, &UpdateStreamConfig::mixed(15).with_seed(round * 13 + 5));
            inc_match(&p, &mut g, &mut m, &mut s, &updates).unwrap();
            let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
            assert_eq!(s.relation(), recomputed.relation, "round {round}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// IncMatch equals recomputation from scratch for arbitrary seeds and
        /// batch sizes.
        #[test]
        fn prop_incmatch_equals_recompute(seed in 0u64..5_000, batch in 1usize..40) {
            run_batch_and_compare(seed, 30, 70, batch);
        }
    }
}
