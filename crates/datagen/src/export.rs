//! Exporting generated graphs in the on-disk attributed-dataset format.
//!
//! Any graph the generators produce can be written as a
//! `<name>.edges`/`<name>.attrs` pair (the format of
//! [`gpm_graph::dataset`]) and reloaded bit-identically — same node ids,
//! same edges, same attributes. That round trip is what makes the checked-in
//! `fixtures/` mini-dataset testable offline and regenerable on demand.
//!
//! ```
//! use gpm_datagen::{export_dataset, Dataset, DatasetSource};
//!
//! let dir = std::env::temp_dir().join(format!("gpm-export-doc-{}", std::process::id()));
//! let g = Dataset::YouTube.generate(0.002, 42);
//! export_dataset(&dir, "yt-tiny", &g).unwrap();
//!
//! let back = DatasetSource::discover(&dir).unwrap()[0].load(1.0, 0).unwrap();
//! assert_eq!(back.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use gpm_graph::dataset::write_dataset;
use gpm_graph::{DataGraph, GraphError};
use std::path::{Path, PathBuf};

/// Writes `<dir>/<name>.edges` and `<dir>/<name>.attrs` for a generated
/// graph, creating `dir` if needed. Returns the paths written.
///
/// The writer emits attribute rows in `NodeId` order and edges in
/// [`DataGraph::edges`] order, so reloading the pair through
/// [`gpm_graph::dataset::load_dataset`] (or
/// [`DatasetSource`](crate::DatasetSource)) reproduces the graph
/// bit-identically — the golden property the round-trip tests assert.
pub fn export_dataset(
    dir: &Path,
    name: &str,
    g: &DataGraph,
) -> Result<(PathBuf, PathBuf), GraphError> {
    write_dataset(dir, name, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;
    use gpm_graph::dataset::load_dataset;

    #[test]
    fn export_import_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("gpm-export-test-{}", std::process::id()));
        let g = Dataset::YouTube.generate(0.005, 5);
        let (edges_path, attrs_path) = export_dataset(&dir, "yt", &g).unwrap();
        assert!(edges_path.ends_with("yt.edges"));
        assert!(attrs_path.ends_with("yt.attrs"));

        let loaded = load_dataset(&dir, "yt").unwrap();
        assert_eq!(loaded.graph.node_count(), g.node_count());
        assert_eq!(
            loaded.graph.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
        for v in g.nodes() {
            assert_eq!(loaded.graph.attributes(v), g.attributes(v), "attrs of {v}");
        }
        assert_eq!(
            loaded.original_ids,
            (0..g.node_count() as u64).collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
