//! Compressed-sparse-row adjacency with a mutable delta overlay.
//!
//! One direction (out- or in-) of a [`crate::DataGraph`]'s adjacency is
//! stored as two flat arrays:
//!
//! ```text
//! offsets: [0,    2,       5, 5,    7]        (node_count + 1 entries)
//! targets: [1, 3, 0, 2, 4,    1, 2]           (one entry per edge)
//!           └─v0─┘ └──v1──┘ └─v3─┘            (v2 has no neighbours)
//! ```
//!
//! `targets[offsets[v] .. offsets[v + 1]]` is the neighbour list of `v`, so
//! the BFS-heavy distance oracles and the matcher's candidate refinement
//! iterate contiguous memory instead of chasing one heap allocation per node
//! (the `Vec<Vec<NodeId>>` layout this replaced).
//!
//! Because the incremental algorithms (`Match+`, `Match−`, `IncMatch`)
//! mutate the graph edge by edge, the CSR base is paired with a **delta
//! overlay**: the first update that touches a node copies that node's base
//! slice into a per-node side list and edits the copy; lookups consult the
//! overlay first and fall back to the base. An update therefore costs
//! `O(deg(v))` on first touch and `O(1)`/`O(deg(v))` afterwards — never the
//! `O(|E|)` a full CSR rebuild would cost. [`CsrAdjacency::compact`] folds
//! the overlay back into a fresh base in `O(|V| + |E|)`; bulk constructors
//! (builders, IO loaders, generators) call it once after loading.

use crate::node_id::NodeId;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// One direction of adjacency: a CSR base plus a per-node delta overlay.
///
/// Invariants:
///
/// * `offsets.len() == node_count + 1` once at least one node exists (the
///   freshly-`Default`ed state with no nodes is also valid);
/// * `offsets` is non-decreasing and `*offsets.last() == targets.len()`;
/// * an overlay entry for `v` holds `v`'s *complete, current* neighbour
///   list — the base slice of `v` is stale and ignored until `compact`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub(crate) struct CsrAdjacency {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    overlay: FxHashMap<u32, Vec<NodeId>>,
}

impl CsrAdjacency {
    /// Creates an empty adjacency with room reserved for `nodes` nodes.
    pub(crate) fn with_capacity(nodes: usize) -> Self {
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0);
        CsrAdjacency {
            offsets,
            targets: Vec::new(),
            overlay: FxHashMap::default(),
        }
    }

    /// Number of nodes covered.
    pub(crate) fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Registers one more node (with no neighbours).
    pub(crate) fn push_node(&mut self) {
        let end = self.offsets.last().copied().unwrap_or_else(|| {
            self.offsets.push(0);
            0
        });
        self.offsets.push(end);
    }

    /// The base slice of `v` in the CSR arrays (ignores the overlay).
    #[inline]
    fn base(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// The current neighbour list of `v` as one contiguous slice.
    #[inline]
    pub(crate) fn neighbors(&self, v: NodeId) -> &[NodeId] {
        // The `is_empty` check keeps the common compacted case free of a
        // hash lookup.
        if !self.overlay.is_empty() {
            if let Some(list) = self.overlay.get(&v.0) {
                return list;
            }
        }
        self.base(v)
    }

    /// Current degree of `v`.
    #[inline]
    pub(crate) fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// The overlay list of `v`, materialising it from the base on first use.
    fn materialise(&mut self, v: NodeId) -> &mut Vec<NodeId> {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        let targets = &self.targets;
        self.overlay
            .entry(v.0)
            .or_insert_with(|| targets[lo..hi].to_vec())
    }

    /// Appends `w` to the neighbour list of `v` (duplicate checking is the
    /// caller's job — `DataGraph` guards with its edge set).
    pub(crate) fn insert(&mut self, v: NodeId, w: NodeId) {
        self.materialise(v).push(w);
    }

    /// Removes the first occurrence of `w` from the neighbour list of `v`
    /// (swap-remove; list order is not semantically meaningful once edges
    /// are deleted).
    pub(crate) fn remove(&mut self, v: NodeId, w: NodeId) {
        let list = self.materialise(v);
        if let Some(pos) = list.iter().position(|&x| x == w) {
            list.swap_remove(pos);
        }
    }

    /// Whether the overlay is empty (every list lives in the CSR base).
    pub(crate) fn is_compact(&self) -> bool {
        self.overlay.is_empty()
    }

    /// Number of nodes whose lists currently live in the overlay.
    pub(crate) fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// Folds the overlay back into a freshly-packed CSR base.
    /// `O(|V| + |E|)`; a no-op when already compact.
    pub(crate) fn compact(&mut self) {
        if self.overlay.is_empty() {
            return;
        }
        let n = self.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0);
        for v in 0..n as u32 {
            targets.extend_from_slice(self.neighbors(NodeId::new(v)));
            offsets.push(targets.len() as u32);
        }
        self.offsets = offsets;
        self.targets = targets;
        self.overlay.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_and_push_node() {
        let mut a = CsrAdjacency::default();
        assert_eq!(a.node_count(), 0);
        a.push_node();
        a.push_node();
        assert_eq!(a.node_count(), 2);
        assert!(a.neighbors(n(0)).is_empty());
        assert!(a.neighbors(n(1)).is_empty());
        assert!(a.is_compact());
    }

    #[test]
    fn insert_remove_compact_roundtrip() {
        let mut a = CsrAdjacency::with_capacity(3);
        for _ in 0..3 {
            a.push_node();
        }
        a.insert(n(0), n(1));
        a.insert(n(0), n(2));
        a.insert(n(2), n(0));
        assert!(!a.is_compact());
        assert_eq!(a.neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(a.degree(n(2)), 1);

        a.compact();
        assert!(a.is_compact());
        assert_eq!(a.overlay_len(), 0);
        assert_eq!(a.neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(a.neighbors(n(1)), &[] as &[NodeId]);
        assert_eq!(a.neighbors(n(2)), &[n(0)]);

        // Mutating after compaction touches only the affected node.
        a.remove(n(0), n(1));
        assert_eq!(a.overlay_len(), 1);
        assert_eq!(a.neighbors(n(0)), &[n(2)]);
        assert_eq!(a.neighbors(n(2)), &[n(0)]); // untouched node: base slice
    }

    #[test]
    fn push_node_with_dirty_overlay() {
        let mut a = CsrAdjacency::with_capacity(2);
        a.push_node();
        a.push_node();
        a.insert(n(0), n(1));
        a.push_node(); // node 2 arrives while node 0 lives in the overlay
        assert_eq!(a.node_count(), 3);
        assert!(a.neighbors(n(2)).is_empty());
        assert_eq!(a.neighbors(n(0)), &[n(1)]);
        a.compact();
        assert_eq!(a.neighbors(n(0)), &[n(1)]);
        assert!(a.neighbors(n(2)).is_empty());
    }

    /// Reference model: the `Vec<Vec<NodeId>>` layout CSR replaced, mutated
    /// with exactly the old semantics (push on insert, swap-remove first
    /// occurrence on delete).
    #[derive(Default)]
    struct VecVecModel {
        lists: Vec<Vec<NodeId>>,
    }

    impl VecVecModel {
        fn push_node(&mut self) {
            self.lists.push(Vec::new());
        }
        fn insert(&mut self, v: NodeId, w: NodeId) {
            self.lists[v.index()].push(w);
        }
        fn remove(&mut self, v: NodeId, w: NodeId) {
            let list = &mut self.lists[v.index()];
            if let Some(pos) = list.iter().position(|&x| x == w) {
                list.swap_remove(pos);
            }
        }
    }

    fn sorted(s: &[NodeId]) -> Vec<NodeId> {
        let mut v = s.to_vec();
        v.sort();
        v
    }

    proptest! {
        /// Under random interleaved inserts, deletes, node additions and
        /// compactions, the CSR+overlay neighbour multisets equal the old
        /// `Vec<Vec<_>>` semantics at every step.
        #[test]
        fn prop_matches_vecvec_model(
            ops in proptest::collection::vec((0u32..10, 0u32..10, 0u8..10), 0..200),
        ) {
            let mut csr = CsrAdjacency::default();
            let mut model = VecVecModel::default();
            let base_nodes = 10u32;
            for _ in 0..base_nodes {
                csr.push_node();
                model.push_node();
            }
            let mut nodes = base_nodes;
            for &(a, b, kind) in &ops {
                let (a, b) = (n(a % nodes), n(b % nodes));
                match kind {
                    0..=4 => {
                        csr.insert(a, b);
                        model.insert(a, b);
                    }
                    5..=7 => {
                        csr.remove(a, b);
                        model.remove(a, b);
                    }
                    8 => {
                        csr.compact();
                        prop_assert!(csr.is_compact());
                    }
                    _ => {
                        csr.push_node();
                        model.push_node();
                        nodes += 1;
                    }
                }
                // The multiset of neighbours must agree after every op
                // (order may differ only across a compact boundary, where
                // overlay swap-removes have been re-packed).
                for v in 0..nodes {
                    prop_assert_eq!(
                        sorted(csr.neighbors(n(v))),
                        sorted(&model.lists[v as usize]),
                        "node {} diverged", v
                    );
                    prop_assert_eq!(csr.degree(n(v)), model.lists[v as usize].len());
                }
            }
            csr.compact();
            for v in 0..nodes {
                prop_assert_eq!(sorted(csr.neighbors(n(v))), sorted(&model.lists[v as usize]));
            }
        }
    }
}
