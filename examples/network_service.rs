//! The continuous-service scenario, over a real socket.
//!
//! The same fraud-monitoring setup as `examples/continuous_service.rs`,
//! but the service lives behind a loopback [`gpm::net::NetServer`] and
//! every interaction — registering the standing queries, streaming the
//! update batches, following a delta stream — travels through the framed
//! wire protocol specified in `PROTOCOL.md`. The punchline is the same
//! one `tests/net_differential.rs` proves exhaustively: the wire changes
//! nothing. The subscriber's folded stream still reconstructs the live
//! result exactly.
//!
//! Run with `cargo run --example network_service`.

use gpm::net::{EndReason, NetClient, NetServer, ServerOptions};
use gpm::{fold_deltas, DataGraphBuilder, EdgeUpdate, MatchService, PatternGraphBuilder};

fn main() {
    // The payments graph from the continuous_service example.
    let (mut graph, ids) = DataGraphBuilder::new()
        .labeled_node("src1")
        .labeled_node("src2")
        .labeled_node("mule1")
        .labeled_node("mule2")
        .labeled_node("sink")
        .edge("src1", "mule1")
        .edge("src2", "mule2")
        .build()
        .unwrap();
    for (name, label) in [
        ("src1", "account"),
        ("src2", "account"),
        ("mule1", "mule"),
        ("mule2", "mule"),
        ("sink", "collector"),
    ] {
        graph.attributes_mut(ids[name]).set("label", label);
    }

    // Put the service behind a socket. Port 0 lets the OS pick.
    let svc = MatchService::new(graph);
    let server = NetServer::bind("127.0.0.1:0", svc, ServerOptions::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();
    println!("serving MatchService on {addr}\n");

    // An "admin" connection registers the standing queries.
    let mut admin = NetClient::connect(addr).unwrap();
    println!(
        "handshake: protocol v{}, backend {}, epoch {}",
        gpm::net::PROTOCOL_VERSION,
        admin.backend(),
        admin.epoch_at_connect()
    );

    let (funnel, _) = PatternGraphBuilder::new()
        .labeled_node("account")
        .labeled_node("collector")
        .edge("account", "collector", 2u32)
        .build()
        .unwrap();
    let (chain, _) = PatternGraphBuilder::new()
        .labeled_node("account")
        .labeled_node("mule")
        .labeled_node("collector")
        .edge("account", "mule", 1u32)
        .edge("mule", "collector", 1u32)
        .build()
        .unwrap();
    let q_funnel = admin.register(&funnel).unwrap();
    let q_chain = admin.register(&chain).unwrap();
    println!("registered funnel as q{q_funnel}, chain as q{q_chain}\n");

    // A second connection becomes a delta stream for the chain query. Its
    // first delta is a snapshot of the result at subscribe time.
    let mut sub = NetClient::connect(addr)
        .unwrap()
        .subscribe(q_chain)
        .unwrap();
    let snapshot = sub.next().unwrap().expect("snapshot-first");
    println!(
        "subscribed to q{q_chain}: snapshot with {} pairs",
        snapshot.added.len()
    );

    // Stream update batches through the admin connection; pull the chain
    // query's deltas off the subscriber socket as they arrive.
    let batches: Vec<(&str, Vec<EdgeUpdate>)> = vec![
        (
            "mules forward to the collection account",
            vec![
                EdgeUpdate::Insert(ids["mule1"], ids["sink"]),
                EdgeUpdate::Insert(ids["mule2"], ids["sink"]),
            ],
        ),
        (
            "kickback: sink wires back to src1",
            vec![EdgeUpdate::Insert(ids["sink"], ids["src1"])],
        ),
        (
            "mule1's forwarding edge is taken down",
            vec![EdgeUpdate::Delete(ids["mule1"], ids["sink"])],
        ),
    ];

    let mut stream = vec![snapshot];
    for (label, batch) in batches {
        let out = admin.apply(&batch).unwrap();
        println!("batch {} ({label}): |AFF1| = {}", out.epoch, out.aff1);
        for d in out.deltas.iter().filter(|d| d.query.value() == q_chain) {
            let wire = sub.next().unwrap().expect("stream is live");
            assert_eq!(&wire, d, "wire delta differs from the batch outcome");
            println!(
                "  q{q_chain} via socket: +{} pairs, -{} pairs (epoch {})",
                wire.added.len(),
                wire.removed.len(),
                wire.epoch
            );
            stream.push(wire);
        }
    }

    // Lossless over the wire: folding the streamed deltas from an empty
    // relation reproduces the live result the admin connection reads.
    let folded = fold_deltas(3, stream.iter());
    let live = admin.result(q_chain).unwrap().expect("registered");
    assert_eq!(folded, live);
    println!(
        "\nchain result ({} pairs) reconstructed exactly from the wire stream",
        folded.pair_count()
    );

    // Deregistering ends the stream with an explicit marker, never a
    // silent hang-up.
    admin.deregister(q_chain).unwrap();
    let tail = sub.collect_to_end().unwrap();
    assert!(tail.is_empty());
    assert_eq!(sub.end_reason(), Some(EndReason::QueryClosed));
    println!("stream ended explicitly: {:?}", sub.end_reason().unwrap());

    handle.shutdown();
}
