//! Shared driver for the incremental experiments (Figs. 6(i), 6(j), 6(k)).
//!
//! The subject graph comes from [`HarnessArgs::update_source`]: the
//! simulated YouTube stand-in by default, or a real on-disk dataset with
//! `--dataset-dir`/`--dataset`. For each batch size `|δ|` on the x-axis the
//! driver:
//!
//! 1. generates an update stream with the requested insert/delete mix;
//! 2. runs `IncMatch` starting from the precomputed match and matrix;
//! 3. runs the batch baseline: apply the updates to a copy of the graph,
//!    **recompute the distance matrix** (its cost is counted, as in the
//!    paper) and re-run `Match`;
//! 4. checks the two results agree and reports both times plus
//!    `|AFF| = |AFF1| + |AFF2|` per update.

use crate::{fmt_ms, load_source_or_exit, time, HarnessArgs, Table};
use gpm::{
    bounded_simulation_with_oracle, generate_pattern, random_updates, DistanceMatrix,
    IncrementalMatcher, PatternGenConfig, PatternGraph, UpdateStreamConfig,
};

/// Which update mix an experiment uses.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum UpdateMix {
    /// Half insertions, half deletions (Fig. 6(i)).
    Mixed,
    /// Deletions only (Fig. 6(j)).
    Deletions,
    /// Insertions only (Fig. 6(k)).
    Insertions,
}

impl UpdateMix {
    fn config(self, count: usize) -> UpdateStreamConfig {
        match self {
            UpdateMix::Mixed => UpdateStreamConfig::mixed(count),
            UpdateMix::Deletions => UpdateStreamConfig::deletions(count),
            UpdateMix::Insertions => UpdateStreamConfig::insertions(count),
        }
    }
}

/// Generates a DAG pattern for the incremental experiments (IncMatch requires
/// acyclic patterns); retries seeds until the generator produces one.
pub fn dag_pattern(
    graph: &gpm::DataGraph,
    nodes: usize,
    edges: usize,
    bound: u32,
    seed: u64,
) -> PatternGraph {
    for attempt in 0..64u64 {
        let cfg = PatternGenConfig::new(nodes, edges, bound).with_seed(seed + attempt * 7919);
        let (pattern, _) = generate_pattern(graph, &cfg);
        if pattern.is_dag() {
            return pattern;
        }
    }
    // Spanning structures are always DAGs, so this is effectively unreachable;
    // fall back to a tree-shaped pattern.
    let cfg = PatternGenConfig::new(nodes, nodes.saturating_sub(1), bound).with_seed(seed);
    generate_pattern(graph, &cfg).0
}

/// Runs one of the incremental experiments and prints its table.
pub fn run_update_experiment(
    title: &str,
    mix: UpdateMix,
    paper_deltas: &[usize],
    args: &HarnessArgs,
) {
    let source = args.update_source_or_exit();
    let graph = load_source_or_exit(&source, args);
    println!(
        "{}: |V| = {}, |E| = {} [{}]",
        source.name(),
        graph.node_count(),
        graph.edge_count(),
        source.describe(args.scale)
    );

    let pattern = dag_pattern(&graph, 4, 4, 3, args.seed);
    let (base, setup_time) = time(|| IncrementalMatcher::new(pattern.clone(), graph.clone()));
    println!(
        "initial Match (matrix + maximum match): {} ms, {} pairs\n",
        fmt_ms(setup_time),
        base.relation().pair_count()
    );

    let mut table = Table::new(
        title.to_string(),
        &[
            "|δ| (paper)",
            "|δ| (scaled)",
            "IncMatch (ms)",
            "Match recompute (ms)",
            "|AFF|/update",
            "agree",
        ],
    );

    for &paper_delta in paper_deltas {
        let delta = ((paper_delta as f64 * args.scale).round() as usize).max(4);
        let updates = random_updates(
            base.graph(),
            &mix.config(delta).with_seed(args.seed + paper_delta as u64),
        );

        // Incremental: start from the shared precomputed state.
        let mut matcher = base.clone();
        let (outcome, inc_time) = time(|| matcher.apply_batch(&updates).expect("DAG pattern"));

        // Batch baseline: apply updates, rebuild the matrix (cost counted),
        // re-run Match.
        let mut updated_graph = base.graph().clone();
        for u in &updates {
            u.apply(&mut updated_graph);
        }
        let (batch_relation, batch_time) = time(|| {
            let matrix = DistanceMatrix::build(&updated_graph);
            bounded_simulation_with_oracle(&pattern, &updated_graph, &matrix).relation
        });

        let agree = matcher.relation() == batch_relation;
        let aff_per_update = if updates.is_empty() {
            0
        } else {
            outcome.stats.total_affected() / updates.len()
        };
        table.row(vec![
            paper_delta.to_string(),
            updates.len().to_string(),
            fmt_ms(inc_time),
            fmt_ms(batch_time),
            aff_per_update.to_string(),
            agree.to_string(),
        ]);
    }
    table.print();
}
