//! Example 2.1/2.2 of the paper: social matching (pattern P1 over graph G1)
//! and cross-disciplinary collaboration (pattern P2 over graph G2).
//!
//! P1: to start a company, user A looks for a software engineer (SE) and an
//! HR expert within 2 hops, and sales-department managers (DM) who play golf,
//! are within 1 hop of the SE and 2 hops of the HR person, and are connected
//! to A by a chain of friends.
//!
//! Run with `cargo run -p gpm --example social_matching`.

use gpm::{
    bounded_simulation, Attributes, CmpOp, DataGraphBuilder, EdgeBound, PatternGraphBuilder,
    Predicate,
};

fn main() {
    // ---- P1 / G1 : the Facebook-style start-up team --------------------
    // G1 nodes: A, HR, SE, a person who is both HR and SE, and two sales
    // managers who play golf.
    let (g1, _) = DataGraphBuilder::new()
        .node("A", Attributes::new().with("title", "A"))
        .node("HR", Attributes::new().with("title", "HR"))
        .node(
            "HRSE",
            Attributes::new()
                .with("title", "HR")
                .with("also", "SE")
                .with("se", true)
                .with("hr", true),
        )
        .node("SE", Attributes::new().with("title", "SE").with("se", true))
        .node(
            "DMl",
            Attributes::new().with("title", "DM").with("hobby", "golf"),
        )
        .node(
            "DMr",
            Attributes::new().with("title", "DM").with("hobby", "golf"),
        )
        .edge("A", "HR")
        .edge("HR", "HRSE")
        .edge("A", "HRSE")
        .edge("HRSE", "SE")
        .edge("SE", "DMr")
        .edge("HRSE", "DMl")
        .edge("DMl", "A")
        .edge("DMr", "DMl")
        .build()
        .unwrap();

    // P1: A; SE within 2 hops; HR within 2 hops; DM (golf) within 1 hop of
    // SE, 2 hops of HR, and connected back to A by an unbounded chain.
    let (p1, p1_ids) = PatternGraphBuilder::new()
        .node("A", Predicate::label_eq("title", "A"))
        .node("SE", Predicate::label_eq("se", true))
        .node("HR", Predicate::label_eq("title", "HR"))
        .node(
            "DM",
            Predicate::label_eq("title", "DM").and("hobby", CmpOp::Eq, "golf"),
        )
        .edge("A", "SE", 2u32)
        .edge("A", "HR", 2u32)
        .edge("SE", "DM", 1u32)
        .edge("HR", "DM", 2u32)
        .unbounded_edge("DM", "A")
        .build()
        .unwrap();

    let out1 = bounded_simulation(&p1, &g1);
    println!("P1 ⊴ G1: {}", out1.relation.is_match(&p1));
    for (name, id) in &p1_ids {
        let matches: Vec<String> = out1
            .relation
            .matches_of(*id)
            .iter()
            .map(|v| v.to_string())
            .collect();
        println!("  {name:<3} -> {}", matches.join(", "));
    }
    println!(
        "  note: SE and HR can both map to the HR+SE person, and DM maps to two\n\
         people — relations, not bijections.\n"
    );

    // ---- P2 / G2 : cross-disciplinary collaborators ---------------------
    let (g2, g2_ids) = DataGraphBuilder::new()
        .node("DB", Attributes::labeled("DB").with("dept", "CS"))
        .node("AI", Attributes::labeled("AI").with("dept", "CS"))
        .node("Gen", Attributes::labeled("Gen").with("dept", "Bio"))
        .node("Eco", Attributes::labeled("Eco").with("dept", "Bio"))
        .node("Med", Attributes::labeled("Med").with("dept", "Med"))
        .node("Soc", Attributes::labeled("Soc").with("dept", "Soc"))
        .node("Chem", Attributes::labeled("Chem").with("dept", "Chem"))
        .edge("DB", "Gen")
        .edge("Gen", "Eco")
        .edge("Eco", "Med")
        .edge("Med", "Soc")
        .edge("Soc", "DB")
        .edge("Gen", "Soc")
        .edge("Med", "DB")
        .edge("AI", "Chem")
        .edge("Chem", "AI")
        .build()
        .unwrap();

    let build_p2 = || {
        PatternGraphBuilder::new()
            .node("CS", Predicate::label_eq("dept", "CS"))
            .node("Bio", Predicate::label_eq("dept", "Bio"))
            .node("Med", Predicate::label_eq("dept", "Med"))
            .node("Soc", Predicate::label_eq("dept", "Soc"))
            .edge("CS", "Bio", 2u32)
            .edge("CS", "Soc", 3u32)
            .edge("Bio", "Soc", 2u32)
            .edge("Bio", "Med", 3u32)
            .unbounded_edge("Med", "CS")
            .build()
            .unwrap()
    };
    let (p2, p2_ids) = build_p2();
    let out2 = bounded_simulation(&p2, &g2);
    println!("P2 ⊴ G2: {}", out2.relation.is_match(&p2));
    for (name, id) in &p2_ids {
        let matches: Vec<String> = out2
            .relation
            .matches_of(*id)
            .iter()
            .map(|&v| g2.attributes(v).label().unwrap_or("?").to_string())
            .collect();
        println!("  {name:<3} -> [{}]", matches.join(", "));
    }

    // Example 2.2 (3): drop the edge (DB, Gen) — CS can no longer reach Soc
    // within 3 hops, and the match disappears.
    let mut g3 = g2.clone();
    g3.remove_edge(g2_ids["DB"], g2_ids["Gen"]).unwrap();
    let (p2_again, _) = build_p2();
    let out3 = bounded_simulation(&p2_again, &g3);
    println!(
        "\nafter removing (DB, Gen):  P2 ⊴ G3: {}   (the community dissolves, as in Example 2.2(3))",
        out3.relation.is_match(&p2_again)
    );

    let _ = EdgeBound::Unbounded; // keep the import obviously used
}
