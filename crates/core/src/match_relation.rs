//! The match relation `S ⊆ V_p × V` and its verification helpers.
//!
//! A match relates every pattern node to a *set* of data nodes (Section 2.2,
//! Remark (1)) — this is precisely what distinguishes bounded simulation from
//! the bijective functions of subgraph isomorphism. The maximum match is
//! unique (Prop. 2.1); [`MatchRelation::verify`] checks the two defining
//! conditions of a match, and is used throughout the test suites to validate
//! every algorithm (batch, incremental, naive) against the definition itself.

use gpm_distance::DistanceOracle;
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};
use serde::{Deserialize, Serialize};

/// A binary relation between pattern nodes and data nodes.
///
/// Stored as one sorted, deduplicated `Vec<NodeId>` per pattern node.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchRelation {
    per_pattern: Vec<Vec<NodeId>>,
}

impl MatchRelation {
    /// The empty relation over a pattern with `pattern_nodes` nodes.
    pub fn empty(pattern_nodes: usize) -> Self {
        MatchRelation {
            per_pattern: vec![Vec::new(); pattern_nodes],
        }
    }

    /// Builds a relation from per-pattern-node candidate sets. Each set is
    /// sorted and deduplicated.
    pub fn from_sets(mut sets: Vec<Vec<NodeId>>) -> Self {
        for s in &mut sets {
            s.sort();
            s.dedup();
        }
        MatchRelation { per_pattern: sets }
    }

    /// Number of pattern nodes the relation is defined over.
    pub fn pattern_node_count(&self) -> usize {
        self.per_pattern.len()
    }

    /// The data nodes matched to pattern node `u` (sorted).
    pub fn matches_of(&self, u: PatternNodeId) -> &[NodeId] {
        &self.per_pattern[u.index()]
    }

    /// Whether `(u, v)` is in the relation.
    pub fn contains(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.per_pattern[u.index()].binary_search(&v).is_ok()
    }

    /// Inserts `(u, v)`; returns `true` if it was not already present.
    pub fn insert(&mut self, u: PatternNodeId, v: NodeId) -> bool {
        match self.per_pattern[u.index()].binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.per_pattern[u.index()].insert(pos, v);
                true
            }
        }
    }

    /// Removes `(u, v)`; returns `true` if it was present.
    pub fn remove(&mut self, u: PatternNodeId, v: NodeId) -> bool {
        match self.per_pattern[u.index()].binary_search(&v) {
            Ok(pos) => {
                self.per_pattern[u.index()].remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Clears the whole relation (used when some pattern node loses all of
    /// its matches: the paper's algorithms then return `∅`).
    pub fn clear(&mut self) {
        for s in &mut self.per_pattern {
            s.clear();
        }
    }

    /// Total number of `(u, v)` pairs, `|S|`.
    pub fn pair_count(&self) -> usize {
        self.per_pattern.iter().map(Vec::len).sum()
    }

    /// Whether the relation contains no pairs at all.
    pub fn is_empty(&self) -> bool {
        self.per_pattern.iter().all(Vec::is_empty)
    }

    /// Whether this relation witnesses `P ⊴ G`: the pattern is non-empty and
    /// every pattern node has at least one match. (An empty pattern matches
    /// trivially.)
    pub fn is_match(&self, pattern: &PatternGraph) -> bool {
        debug_assert_eq!(self.per_pattern.len(), pattern.node_count());
        self.per_pattern.iter().all(|s| !s.is_empty())
    }

    /// Iterates over all `(u, v)` pairs of the relation.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (PatternNodeId, NodeId)> + '_ {
        self.per_pattern.iter().enumerate().flat_map(|(i, vs)| {
            let u = PatternNodeId::new(i as u32);
            vs.iter().map(move |&v| (u, v))
        })
    }

    /// The set of *distinct* data nodes appearing in the relation (the node
    /// set `V_r` of the result graph).
    pub fn data_nodes(&self) -> Vec<NodeId> {
        let mut all: Vec<NodeId> = self.iter_pairs().map(|(_, v)| v).collect();
        all.sort();
        all.dedup();
        all
    }

    /// Whether `self ⊆ other` (every pair of `self` is a pair of `other`).
    pub fn is_subrelation_of(&self, other: &MatchRelation) -> bool {
        self.iter_pairs().all(|(u, v)| other.contains(u, v))
    }

    /// Number of matches per pattern node, averaged — the metric reported in
    /// Exp-1 ("matches per pattern node").
    pub fn average_matches_per_pattern_node(&self) -> f64 {
        if self.per_pattern.is_empty() {
            return 0.0;
        }
        self.pair_count() as f64 / self.per_pattern.len() as f64
    }

    /// Checks that this relation is a *match* in the sense of Section 2.2:
    /// for every `(u, v)`,
    ///
    /// 1. `f_A(v)` satisfies `f_v(u)`, and
    /// 2. for every pattern edge `(u, u')` there is a node `v'` matched to
    ///    `u'` with a non-empty path `v → v'` admitted by the edge bound.
    ///
    /// Returns the list of violating pairs (empty = valid match relation).
    /// Note that the *empty* relation is trivially a valid (non-maximum)
    /// match.
    pub fn verify<O: DistanceOracle + ?Sized>(
        &self,
        pattern: &PatternGraph,
        graph: &DataGraph,
        oracle: &O,
    ) -> Vec<(PatternNodeId, NodeId, String)> {
        let mut violations = Vec::new();
        for (u, v) in self.iter_pairs() {
            if !graph.satisfies(v, pattern.predicate(u)) {
                violations.push((
                    u,
                    v,
                    format!("{v} does not satisfy {}", pattern.predicate(u)),
                ));
                continue;
            }
            for edge in pattern.out_edges(u) {
                let ok = self
                    .matches_of(edge.to)
                    .iter()
                    .any(|&v2| oracle.within(graph, v, v2, edge.bound));
                if !ok {
                    violations.push((
                        u,
                        v,
                        format!(
                            "no witness for pattern edge ({u}, {}) with bound {}",
                            edge.to, edge.bound
                        ),
                    ));
                }
            }
        }
        violations
    }

    /// Convenience wrapper around [`MatchRelation::verify`] returning a bool.
    pub fn is_valid_match<O: DistanceOracle + ?Sized>(
        &self,
        pattern: &PatternGraph,
        graph: &DataGraph,
        oracle: &O,
    ) -> bool {
        self.verify(pattern, graph, oracle).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_distance::DistanceMatrix;
    use gpm_graph::{DataGraphBuilder, EdgeBound, PatternGraphBuilder, Predicate};

    fn pn(i: u32) -> PatternNodeId {
        PatternNodeId::new(i)
    }

    fn dn(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = MatchRelation::empty(2);
        assert!(s.insert(pn(0), dn(3)));
        assert!(!s.insert(pn(0), dn(3)));
        assert!(s.insert(pn(0), dn(1)));
        assert!(s.insert(pn(1), dn(2)));
        assert_eq!(s.pair_count(), 3);
        assert!(s.contains(pn(0), dn(3)));
        assert!(!s.contains(pn(1), dn(3)));
        assert_eq!(s.matches_of(pn(0)), &[dn(1), dn(3)]);
        assert!(s.remove(pn(0), dn(3)));
        assert!(!s.remove(pn(0), dn(3)));
        assert_eq!(s.pair_count(), 2);
    }

    #[test]
    fn from_sets_sorts_and_dedups() {
        let s = MatchRelation::from_sets(vec![vec![dn(3), dn(1), dn(3)], vec![]]);
        assert_eq!(s.matches_of(pn(0)), &[dn(1), dn(3)]);
        assert!(s.matches_of(pn(1)).is_empty());
    }

    #[test]
    fn is_match_requires_every_pattern_node_matched() {
        let mut p = gpm_graph::PatternGraph::new();
        p.add_node(Predicate::any());
        p.add_node(Predicate::any());
        let mut s = MatchRelation::empty(2);
        s.insert(pn(0), dn(0));
        assert!(!s.is_match(&p));
        s.insert(pn(1), dn(1));
        assert!(s.is_match(&p));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.is_match(&p));
    }

    #[test]
    fn data_nodes_and_average() {
        let mut s = MatchRelation::empty(2);
        s.insert(pn(0), dn(5));
        s.insert(pn(1), dn(5));
        s.insert(pn(1), dn(7));
        assert_eq!(s.data_nodes(), vec![dn(5), dn(7)]);
        assert!((s.average_matches_per_pattern_node() - 1.5).abs() < 1e-9);
        assert_eq!(
            MatchRelation::empty(0).average_matches_per_pattern_node(),
            0.0
        );
    }

    #[test]
    fn subrelation() {
        let mut a = MatchRelation::empty(1);
        a.insert(pn(0), dn(1));
        let mut b = a.clone();
        b.insert(pn(0), dn(2));
        assert!(a.is_subrelation_of(&b));
        assert!(!b.is_subrelation_of(&a));
        assert!(a.is_subrelation_of(&a));
    }

    #[test]
    fn iter_pairs_enumerates_in_order() {
        let mut s = MatchRelation::empty(2);
        s.insert(pn(1), dn(0));
        s.insert(pn(0), dn(9));
        let pairs: Vec<_> = s.iter_pairs().collect();
        assert_eq!(pairs, vec![(pn(0), dn(9)), (pn(1), dn(0))]);
    }

    /// Build the simple example: data graph a -> b -> c, pattern A -[2]-> C.
    fn example() -> (gpm_graph::DataGraph, gpm_graph::PatternGraph) {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .path(&["A", "B", "C"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", EdgeBound::Hops(2))
            .build()
            .unwrap();
        (g, p)
    }

    #[test]
    fn verify_accepts_correct_match() {
        let (g, p) = example();
        let m = DistanceMatrix::build(&g);
        let mut s = MatchRelation::empty(2);
        s.insert(pn(0), dn(0)); // A -> a
        s.insert(pn(1), dn(2)); // C -> c
        assert!(s.is_valid_match(&p, &g, &m));
        assert!(s.verify(&p, &g, &m).is_empty());
    }

    #[test]
    fn verify_rejects_predicate_violation() {
        let (g, p) = example();
        let m = DistanceMatrix::build(&g);
        let mut s = MatchRelation::empty(2);
        s.insert(pn(0), dn(1)); // B does not satisfy label = A
        s.insert(pn(1), dn(2));
        let violations = s.verify(&p, &g, &m);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].2.contains("does not satisfy"));
    }

    #[test]
    fn verify_rejects_missing_witness() {
        let (g, p) = example();
        let m = DistanceMatrix::build(&g);
        let mut s = MatchRelation::empty(2);
        s.insert(pn(0), dn(0));
        // No match for C at all: the edge (A, C) has no witness.
        let violations = s.verify(&p, &g, &m);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].2.contains("no witness"));
        assert!(!s.is_valid_match(&p, &g, &m));
    }

    #[test]
    fn empty_relation_is_trivially_valid() {
        let (g, p) = example();
        let m = DistanceMatrix::build(&g);
        let s = MatchRelation::empty(2);
        assert!(s.is_valid_match(&p, &g, &m));
        assert!(!s.is_match(&p));
    }
}
