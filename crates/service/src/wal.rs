//! Write-ahead log for [`crate::MatchService`] durability.
//!
//! Every state-changing operation the service performs — an update batch,
//! a catalog change, or a lazy activation triggered by a read — is appended
//! to a single log file **before** it is considered applied, so a crashed
//! service can be reopened and replayed into the exact state (and the exact
//! subsequent [`crate::Subscription`] stream) of an uninterrupted run.
//!
//! ## On-disk format
//!
//! ```text
//! wal.log := MAGIC frame*
//! MAGIC   := b"GPMWAL1\n"                                (8 bytes)
//! frame   := len:u32le crc:u32le payload[len]
//! crc     := CRC-32/IEEE over (len:u32le ++ payload)
//! payload := compact JSON of a WalRecord
//! ```
//!
//! The checksum covers the **length prefix as well as the payload**, so a
//! flipped bit anywhere in a frame — including in the length field itself —
//! is detected deterministically (CRC-32 catches all burst errors of ≤ 32
//! bits). Readers treat the first incomplete or checksum-failing frame as a
//! *torn tail*: everything before it is trusted, everything from it on is
//! truncated on recovery and never silently replayed. A CRC-valid frame
//! that fails to decode is *not* a torn tail — the bytes were written that
//! way — and surfaces as a hard [`DurabilityError::Codec`] error instead.
//!
//! [`FailpointWriter`] is the crash-point injection layer used by the
//! differential recovery suites: it models the kernel losing every byte
//! past an fsync horizon, letting tests materialise the log as it would
//! look after a crash at **any** byte boundary.

use gpm_distance::EdgeUpdate;
use gpm_graph::PatternGraph;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::OnceLock;

/// File name of the write-ahead log inside a durable service directory.
pub const WAL_FILE: &str = "wal.log";

/// Magic bytes opening every WAL file (8 bytes, versioned).
pub const WAL_MAGIC: &[u8; 8] = b"GPMWAL1\n";

/// Bytes of framing overhead per record: `len: u32le` + `crc: u32le`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Errors from the durability layer (WAL + snapshot).
#[derive(Debug)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A CRC-valid payload could not be encoded or decoded — a format
    /// version mismatch or a bug, never a torn write.
    Codec(String),
    /// Persisted state is structurally invalid in a way checksums cannot
    /// excuse: bad magic, non-monotonic sequence numbers, a manifest that
    /// references missing segments, or an inconsistent match state.
    Corrupt(String),
    /// The requested operation does not fit the directory's state, e.g.
    /// creating a durable service where one already exists.
    State(String),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurabilityError::Codec(m) => write!(f, "durability codec error: {m}"),
            DurabilityError::Corrupt(m) => write!(f, "durable state corrupt: {m}"),
            DurabilityError::State(m) => write!(f, "durability state error: {m}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<serde_json::Error> for DurabilityError {
    fn from(e: serde_json::Error) -> Self {
        DurabilityError::Codec(e.to_string())
    }
}

/// CRC-32/IEEE (the zlib/PNG polynomial, reflected), table-driven.
///
/// Hand-rolled because the workspace is offline; matches the standard
/// `crc32fast`/zlib check value: `crc32(b"123456789") == 0xCBF4_3926`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One logged state-changing operation.
///
/// Everything that can alter what a future [`crate::MatchService::apply`] or
/// [`crate::MatchService::result`] observes must appear here — including
/// [`WalOp::Read`], because reading a lazily-resumed query *materialises*
/// its state and emits a catch-up delta, mutating the query's visible
/// emitted relation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalOp {
    /// One `apply` call with its (possibly empty) update batch. Empty
    /// batches still bump the service epoch, so they are logged too.
    Batch(Vec<EdgeUpdate>),
    /// `register(pattern)` — assigns the next monotonic [`crate::QueryId`].
    Register(PatternGraph),
    /// `deregister(id)`.
    Deregister(u64),
    /// `suspend(id)` — frees the match state.
    Suspend(u64),
    /// `resume(id)` — reactivates lazily; no state is rebuilt yet.
    Resume(u64),
    /// A `result(id)` call that materialised a lazily-resumed state and
    /// emitted its catch-up delta. Reads that observed an already-live
    /// state are pure and are **not** logged.
    Read(u64),
}

/// A WAL record: a monotonic sequence number plus the operation.
///
/// Sequence numbers start at 0 for a fresh log and increase by exactly 1
/// per record across the whole history of the directory (snapshots record
/// the last folded sequence number, letting replay skip records a snapshot
/// already covers).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Position of this record in the directory's operation history.
    pub seq: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// Frames an arbitrary payload as `len:u32le ++ crc:u32le ++ payload`,
/// with the CRC covering the length bytes and the payload.
///
/// This is the shared integrity envelope of the durability layer: WAL
/// records and the snapshot manifest both use it, so both inherit the same
/// single-byte-corruption detection guarantee.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, DurabilityError> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        DurabilityError::Codec(format!("payload of {} bytes exceeds u32", payload.len()))
    })?;
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    let mut crc_input = Vec::with_capacity(4 + payload.len());
    crc_input.extend_from_slice(&len.to_le_bytes());
    crc_input.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Strict inverse of [`encode_frame`]: the slice must contain exactly one
/// complete, checksum-valid frame and nothing else. Returns the payload.
pub fn decode_frame_exact(frame: &[u8]) -> Result<&[u8], DurabilityError> {
    if frame.len() < FRAME_HEADER_LEN {
        return Err(DurabilityError::Corrupt(format!(
            "frame of {} bytes is shorter than the {FRAME_HEADER_LEN}-byte header",
            frame.len()
        )));
    }
    let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
    if frame.len() != FRAME_HEADER_LEN + len {
        return Err(DurabilityError::Corrupt(format!(
            "frame length {} does not match header ({} payload bytes expected)",
            frame.len(),
            len
        )));
    }
    let stored_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    let mut crc_input = Vec::with_capacity(4 + len);
    crc_input.extend_from_slice(&frame[0..4]);
    crc_input.extend_from_slice(&frame[8..]);
    let computed = crc32(&crc_input);
    if stored_crc != computed {
        return Err(DurabilityError::Corrupt(format!(
            "frame checksum mismatch: stored {stored_crc:#010x}, computed {computed:#010x}"
        )));
    }
    Ok(&frame[FRAME_HEADER_LEN..])
}

/// Encodes one record as a framed byte string (`len ++ crc ++ payload`).
pub fn encode_record(record: &WalRecord) -> Result<Vec<u8>, DurabilityError> {
    encode_frame(serde_json::to_string(record)?.as_bytes())
}

/// Strict decoder for exactly one frame: the slice must contain one
/// complete, checksum-valid record and nothing else.
///
/// This is the codec the round-trip/corruption proptests exercise: for any
/// encoded record, `decode_record_exact(&encode_record(r)) == r`, and any
/// single-byte change to the frame is rejected.
pub fn decode_record_exact(frame: &[u8]) -> Result<WalRecord, DurabilityError> {
    let payload = decode_frame_exact(frame)?;
    let text = std::str::from_utf8(payload)
        .map_err(|e| DurabilityError::Codec(format!("checksum-valid payload is not UTF-8: {e}")))?;
    Ok(serde_json::from_str(text)?)
}

/// Result of reading a (possibly crash-torn) WAL.
#[derive(Clone, Debug, PartialEq)]
pub struct WalReadOutcome {
    /// All records in the trusted prefix, in sequence order.
    pub records: Vec<WalRecord>,
    /// Byte length of the trusted prefix (magic + complete valid frames).
    /// Recovery truncates the file to this length before appending. A
    /// value below the magic length means even the header was torn and the
    /// file must be rewritten from scratch.
    pub valid_len: u64,
    /// Bytes of torn/corrupt tail that were discarded (0 for a clean log).
    pub torn_bytes: u64,
}

/// Reads a WAL image, trusting the longest well-formed prefix.
///
/// Torn or checksum-failing tails are reported, not errored: they are the
/// expected shape of a crash. Hard [`DurabilityError`]s are reserved for
/// states a crash cannot produce — a wrong magic, a CRC-valid frame that
/// does not decode, or non-monotonic sequence numbers.
pub fn read_wal_bytes(bytes: &[u8]) -> Result<WalReadOutcome, DurabilityError> {
    let header = &bytes[..bytes.len().min(WAL_MAGIC.len())];
    if header != &WAL_MAGIC[..header.len()] {
        return Err(DurabilityError::Corrupt(format!(
            "bad WAL magic: expected {WAL_MAGIC:?} prefix, found {header:?}"
        )));
    }
    if bytes.len() < WAL_MAGIC.len() {
        // Torn while writing the header of a brand-new log: nothing usable.
        return Ok(WalReadOutcome {
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
        });
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < FRAME_HEADER_LEN {
            break; // torn mid-header
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let Some(frame) = rest.get(..FRAME_HEADER_LEN + len) else {
            break; // torn mid-payload, or the length field itself is garbled
        };
        match decode_record_exact(frame) {
            Ok(record) => {
                let expected = records.last().map(|r: &WalRecord| r.seq + 1);
                if let Some(expected) = expected {
                    if record.seq != expected {
                        return Err(DurabilityError::Corrupt(format!(
                            "WAL sequence jumped from {} to {} at byte {pos}",
                            expected - 1,
                            record.seq
                        )));
                    }
                }
                records.push(record);
                pos += frame.len();
            }
            Err(DurabilityError::Corrupt(_)) => break, // checksum-failing tail
            Err(hard) => return Err(hard),
        }
    }
    Ok(WalReadOutcome {
        records,
        valid_len: pos as u64,
        torn_bytes: (bytes.len() - pos) as u64,
    })
}

/// Reads a WAL file from disk; see [`read_wal_bytes`].
pub fn read_wal(path: &Path) -> Result<WalReadOutcome, DurabilityError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    read_wal_bytes(&bytes)
}

/// Append handle on a WAL file. Every [`WalWriter::append`] writes one
/// framed record and syncs it to disk before returning.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    next_seq: u64,
}

impl WalWriter {
    /// Creates (or truncates to empty) a WAL at `path`, writing and syncing
    /// the magic header. The first appended record gets sequence `first_seq`.
    pub fn create(path: &Path, first_seq: u64) -> Result<Self, DurabilityError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            next_seq: first_seq,
        })
    }

    /// Reopens an existing WAL after recovery: truncates any torn tail to
    /// `outcome.valid_len` in place, then positions for appending. If even
    /// the header was torn, the file is rewritten from scratch.
    pub fn resume(
        path: &Path,
        outcome: &WalReadOutcome,
        next_seq: u64,
    ) -> Result<Self, DurabilityError> {
        if outcome.valid_len < WAL_MAGIC.len() as u64 {
            return Self::create(path, next_seq);
        }
        let mut file = OpenOptions::new().write(true).read(true).open(path)?;
        file.set_len(outcome.valid_len)?;
        file.sync_all()?;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter { file, next_seq })
    }

    /// Sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one operation, durably (frame written + fdatasync), and
    /// returns the sequence number it was assigned.
    pub fn append(&mut self, op: WalOp) -> Result<u64, DurabilityError> {
        let m = crate::metrics::wal();
        let append_span = m.append_ns.span();
        let record = WalRecord {
            seq: self.next_seq,
            op,
        };
        let frame = encode_record(&record)?;
        self.file.write_all(&frame)?;
        let fsync_span = m.fsync_ns.span();
        self.file.sync_data()?;
        fsync_span.finish();
        self.next_seq += 1;
        m.appends.inc();
        m.bytes.add(frame.len() as u64);
        append_span.finish();
        Ok(record.seq)
    }
}

/// Crash-point injection: an [`io::Write`] adapter that silently discards
/// every byte past a budget, modelling a kernel that lost the unsynced tail
/// of a file at a crash. Optionally garbles (XOR-flips) one byte inside the
/// surviving prefix, modelling a torn sector.
///
/// Writes past the budget still report success — exactly like `write(2)`
/// into a page cache that never reaches the platter — so the code under
/// test cannot observe the failpoint.
///
/// ```
/// use gpm_service::wal::FailpointWriter;
/// use std::io::Write;
///
/// let mut out = Vec::new();
/// let mut w = FailpointWriter::new(&mut out, Some(4), None);
/// w.write_all(b"abcdefgh").unwrap(); // reports success…
/// drop(w);
/// assert_eq!(out, b"abcd"); // …but only 4 bytes survived the "crash"
/// ```
#[derive(Debug)]
pub struct FailpointWriter<W: Write> {
    inner: W,
    /// Bytes still allowed through; `None` = unlimited.
    remaining: Option<u64>,
    /// `(absolute_offset, xor_mask)` applied to at most one surviving byte.
    garble: Option<(u64, u8)>,
    offset: u64,
}

impl<W: Write> FailpointWriter<W> {
    /// Wraps `inner`, letting at most `budget` bytes through (`None` for
    /// unlimited) and XOR-flipping the byte at `garble.0` with `garble.1`.
    pub fn new(inner: W, budget: Option<u64>, garble: Option<(u64, u8)>) -> Self {
        FailpointWriter {
            inner,
            remaining: budget,
            garble,
            offset: 0,
        }
    }
}

impl<W: Write> Write for FailpointWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let survive = match self.remaining {
            None => buf.len(),
            Some(r) => buf.len().min(r as usize),
        };
        if survive > 0 {
            let mut chunk = buf[..survive].to_vec();
            if let Some((at, mask)) = self.garble {
                if at >= self.offset && at < self.offset + survive as u64 {
                    chunk[(at - self.offset) as usize] ^= mask;
                }
            }
            self.inner.write_all(&chunk)?;
            if let Some(r) = self.remaining.as_mut() {
                *r -= survive as u64;
            }
        }
        self.offset += survive as u64;
        // Report the full length: the crash is invisible to the writer.
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::NodeId;

    fn sample_record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Batch(vec![
                EdgeUpdate::Insert(NodeId::new(1), NodeId::new(2)),
                EdgeUpdate::Delete(NodeId::new(3), NodeId::new(4)),
            ]),
        }
    }

    #[test]
    fn crc32_matches_reference_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        let record = sample_record(7);
        let frame = encode_record(&record).unwrap();
        assert_eq!(decode_record_exact(&frame).unwrap(), record);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let frame = encode_record(&sample_record(0)).unwrap();
        for i in 0..frame.len() {
            for mask in [0x01u8, 0x80u8] {
                let mut bad = frame.clone();
                bad[i] ^= mask;
                assert!(
                    decode_record_exact(&bad).is_err(),
                    "corrupting byte {i} with mask {mask:#04x} went undetected"
                );
            }
        }
    }

    #[test]
    fn read_wal_trusts_longest_prefix_and_reports_torn_tail() {
        let mut bytes = WAL_MAGIC.to_vec();
        let frames: Vec<Vec<u8>> = (0..3)
            .map(|s| encode_record(&sample_record(s)).unwrap())
            .collect();
        for f in &frames {
            bytes.extend_from_slice(f);
        }
        let clean_len = bytes.len() as u64;
        // Clean read.
        let out = read_wal_bytes(&bytes).unwrap();
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.valid_len, clean_len);
        assert_eq!(out.torn_bytes, 0);
        // Every truncation point inside the last frame loses exactly it.
        let last_start = (clean_len as usize) - frames[2].len();
        for cut in last_start..bytes.len() {
            let out = read_wal_bytes(&bytes[..cut]).unwrap();
            assert_eq!(out.records.len(), 2, "cut at byte {cut}");
            assert_eq!(out.valid_len as usize, last_start);
            assert_eq!(out.torn_bytes as usize, cut - last_start);
        }
    }

    #[test]
    fn read_wal_handles_torn_header_and_rejects_bad_magic() {
        for cut in 0..WAL_MAGIC.len() {
            let out = read_wal_bytes(&WAL_MAGIC[..cut]).unwrap();
            assert!(out.records.is_empty());
            assert_eq!(out.valid_len, 0);
        }
        assert!(read_wal_bytes(b"NOTAWAL!").is_err());
    }

    #[test]
    fn read_wal_rejects_sequence_gap() {
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_record(&sample_record(0)).unwrap());
        bytes.extend_from_slice(&encode_record(&sample_record(2)).unwrap());
        assert!(matches!(
            read_wal_bytes(&bytes),
            Err(DurabilityError::Corrupt(_))
        ));
    }

    #[test]
    fn failpoint_writer_truncates_and_garbles() {
        let mut out = Vec::new();
        let mut w = FailpointWriter::new(&mut out, Some(6), Some((2, 0xFF)));
        w.write_all(b"abcd").unwrap();
        w.write_all(b"efgh").unwrap();
        w.flush().unwrap();
        assert_eq!(out, [b'a', b'b', b'c' ^ 0xFF, b'd', b'e', b'f']);
    }

    #[test]
    fn wal_writer_roundtrips_through_file() {
        let dir = std::env::temp_dir().join(format!("gpm-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::create(&path, 0).unwrap();
        assert_eq!(w.append(WalOp::Suspend(1)).unwrap(), 0);
        assert_eq!(w.append(WalOp::Resume(1)).unwrap(), 1);
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[1].op, WalOp::Resume(1));
        // Resume after a simulated torn tail: chop 3 bytes off the file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let torn = read_wal(&path).unwrap();
        assert_eq!(torn.records.len(), 1);
        let mut w = WalWriter::resume(&path, &torn, torn.records.len() as u64).unwrap();
        w.append(WalOp::Deregister(9)).unwrap();
        drop(w);
        let out = read_wal(&path).unwrap();
        assert_eq!(out.torn_bytes, 0);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[1].op, WalOp::Deregister(9));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
