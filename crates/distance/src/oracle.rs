//! The common interface of the distance back-ends.
//!
//! The matching algorithms in `gpm-core` are generic over a
//! [`DistanceOracle`], which lets Exp-2's three variants (distance matrix,
//! on-demand BFS, 2-hop-filtered BFS) share one matching implementation and
//! makes the ablation benches a one-liner.
//!
//! Since PR 6 the trait also carries the *incremental-maintenance* surface
//! (`UpdateM`/`UpdateBM` semantics): a maintainable oracle can repair itself
//! under edge insertions and deletions and report `AFF1`, the set of node
//! pairs whose distance changed. This is what lets `IncrementalMatcher`,
//! `inc_match_with` and `MatchService` run on any backend — the quadratic
//! [`DistanceMatrix`] or the sublinear-memory
//! [`crate::IncrementalTwoHop`] labeling — selected at runtime via
//! [`crate::OracleBackend`].

use crate::incremental::{AffectedPairs, EdgeUpdate};
use crate::matrix::DistanceMatrix;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, EdgeBound, NodeId};

/// Answers non-empty shortest-path queries over a fixed data graph, and —
/// for maintainable back-ends — repairs itself under edge updates.
///
/// Implementations may cache internally (hence `&self` methods may use
/// interior mutability), but must stay consistent with the graph they were
/// created for: mutating the graph invalidates the oracle unless the oracle
/// is *maintainable* ([`supports_incremental`](Self::supports_incremental)
/// returns `true`) and is repaired through
/// [`apply_insert`](Self::apply_insert) / [`apply_delete`](Self::apply_delete)
/// / [`apply_batch`](Self::apply_batch) for every graph mutation.
///
/// # Incremental maintenance contract
///
/// The maintenance methods mirror the paper's `UpdateM`/`UpdateBM`: the graph
/// passed in must **already reflect** the update(s), the oracle must reflect
/// the graph **before** the update(s), and the returned
/// [`AffectedPairs`] (`AFF1`) lists exactly the source–sink pairs whose
/// non-empty distance changed, with old and new values.
///
/// # Example
///
/// Repairing a boxed oracle under an insertion instead of rebuilding it:
///
/// ```
/// use gpm_distance::{DistanceMatrix, DistanceOracle};
/// use gpm_exec::Executor;
/// use gpm_graph::{DataGraph, NodeId};
///
/// let mut g = DataGraph::new();
/// g.add_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// let mut oracle: Box<dyn DistanceOracle + Send + Sync> =
///     Box::new(DistanceMatrix::build(&g));
/// assert!(oracle.supports_incremental());
/// assert_eq!(oracle.nonempty_distance(&g, NodeId::new(0), NodeId::new(2)), None);
///
/// // Mutate the graph first, then repair the oracle and inspect AFF1.
/// g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// let exec = Executor::from_env();
/// let aff1 = oracle.apply_insert(&g, NodeId::new(1), NodeId::new(2), &exec);
/// assert!(aff1
///     .iter()
///     .any(|p| p.source == NodeId::new(0) && p.sink == NodeId::new(2) && !p.increased()));
/// assert_eq!(oracle.nonempty_distance(&g, NodeId::new(0), NodeId::new(2)), Some(2));
/// ```
pub trait DistanceOracle {
    /// Length of the shortest **non-empty** path from `from` to `to`, or
    /// `None` if there is none.
    fn nonempty_distance(&self, g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32>;

    /// Whether some non-empty path from `from` to `to` satisfies `bound`.
    ///
    /// The default implementation asks for the full distance; back-ends that
    /// can terminate early for bounded queries should override it.
    fn within(&self, g: &DataGraph, from: NodeId, to: NodeId, bound: EdgeBound) -> bool {
        match (self.nonempty_distance(g, from, to), bound) {
            (None, _) => false,
            (Some(_), EdgeBound::Unbounded) => true,
            (Some(d), EdgeBound::Hops(k)) => d <= k,
        }
    }

    /// A short label used in benchmark output ("matrix", "bfs", "2-hop"...).
    fn name(&self) -> &'static str;

    /// Whether this oracle can be repaired in place under edge updates.
    ///
    /// When `false` (the default), the maintenance methods below panic; the
    /// oracle is query-only and must be rebuilt after any graph mutation.
    fn supports_incremental(&self) -> bool {
        false
    }

    /// `UpdateM` for an insertion: repairs the oracle after the edge
    /// `(from, to)` was added to `g` and returns `AFF1`.
    ///
    /// `g` must already contain the new edge.
    ///
    /// # Panics
    ///
    /// The default implementation panics: back-ends that return `false` from
    /// [`supports_incremental`](Self::supports_incremental) do not maintain
    /// themselves. Callers gate on that flag.
    fn apply_insert(
        &mut self,
        _g: &DataGraph,
        _from: NodeId,
        _to: NodeId,
        _exec: &Executor,
    ) -> AffectedPairs {
        panic!(
            "distance oracle `{}` does not support incremental maintenance",
            self.name()
        );
    }

    /// `UpdateM` for a deletion: repairs the oracle after the edge
    /// `(from, to)` was removed from `g` and returns `AFF1`.
    ///
    /// `g` must no longer contain the deleted edge.
    ///
    /// # Panics
    ///
    /// The default implementation panics, exactly as
    /// [`apply_insert`](Self::apply_insert).
    fn apply_delete(
        &mut self,
        _g: &DataGraph,
        _from: NodeId,
        _to: NodeId,
        _exec: &Executor,
    ) -> AffectedPairs {
        panic!(
            "distance oracle `{}` does not support incremental maintenance",
            self.name()
        );
    }

    /// `UpdateBM`: repairs the oracle after a **batch** of updates and
    /// returns the combined `AFF1` (pairs whose distance differs between the
    /// state before the first update and after the last one).
    ///
    /// `g` must reflect the state after the whole batch; `updates` lists the
    /// updates in application order. No-op updates (duplicate inserts /
    /// missing deletes) are skipped.
    ///
    /// The default implementation reconstructs each intermediate graph by
    /// undoing the batch in reverse on a scratch copy and replays it unit by
    /// unit through [`apply_insert`](Self::apply_insert) /
    /// [`apply_delete`](Self::apply_delete), merging the per-unit `AFF1`s —
    /// the exact semantics of `update_matrix_batch_with`.
    fn apply_batch(
        &mut self,
        g: &DataGraph,
        updates: &[EdgeUpdate],
        exec: &Executor,
    ) -> AffectedPairs {
        let mut combined = AffectedPairs::default();
        if updates.is_empty() {
            return combined;
        }
        // Reconstruct the pre-batch graph by undoing the updates in reverse.
        let mut scratch = g.clone();
        for u in updates.iter().rev() {
            u.inverse().apply(&mut scratch);
        }
        for u in updates {
            if !u.apply(&mut scratch) {
                continue; // no-op update (duplicate insert / missing delete)
            }
            let (from, to) = u.endpoints();
            let aff = if u.is_insert() {
                self.apply_insert(&scratch, from, to, exec)
            } else {
                self.apply_delete(&scratch, from, to, exec)
            };
            combined.merge(aff);
        }
        combined
    }

    /// How many updates degraded to a full index rebuild so far.
    ///
    /// Always `0` for back-ends whose repairs never fall back (the matrix)
    /// and for query-only back-ends.
    fn rebuilds(&self) -> usize {
        0
    }

    /// Approximate resident size of the oracle in bytes (`0` = unknown).
    fn memory_bytes(&self) -> usize {
        0
    }

    /// A deep copy of this oracle as a boxed trait object, or `None` if the
    /// backend is not cloneable.
    ///
    /// Owning facades that are themselves `Clone` (e.g. the benchmark
    /// harness's `IncrementalMatcher`) duplicate their backend through this
    /// hook; the two backends selectable via [`crate::OracleBackend`] both
    /// support it.
    fn clone_box(&self) -> Option<Box<dyn DistanceOracle + Send + Sync>> {
        None
    }
}

impl DistanceOracle for DistanceMatrix {
    #[inline]
    fn nonempty_distance(&self, _g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32> {
        DistanceMatrix::nonempty_distance(self, from, to)
    }

    #[inline]
    fn within(&self, _g: &DataGraph, from: NodeId, to: NodeId, bound: EdgeBound) -> bool {
        match bound {
            EdgeBound::Hops(k) => self.within_hops(from, to, k),
            EdgeBound::Unbounded => self.reachable(from, to),
        }
    }

    fn name(&self) -> &'static str {
        "matrix"
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    fn apply_insert(
        &mut self,
        g: &DataGraph,
        from: NodeId,
        to: NodeId,
        exec: &Executor,
    ) -> AffectedPairs {
        let m = crate::metrics::matrix();
        let _span = m.apply_ns.span();
        let aff =
            crate::incremental::update_matrix_with(g, self, EdgeUpdate::Insert(from, to), exec);
        m.note_unit(true, aff.len());
        aff
    }

    fn apply_delete(
        &mut self,
        g: &DataGraph,
        from: NodeId,
        to: NodeId,
        exec: &Executor,
    ) -> AffectedPairs {
        let m = crate::metrics::matrix();
        let _span = m.apply_ns.span();
        let aff =
            crate::incremental::update_matrix_with(g, self, EdgeUpdate::Delete(from, to), exec);
        m.note_unit(false, aff.len());
        aff
    }

    fn apply_batch(
        &mut self,
        g: &DataGraph,
        updates: &[EdgeUpdate],
        exec: &Executor,
    ) -> AffectedPairs {
        // The native batch path bypasses the unit methods, so account the
        // units here (insert/delete splits and the combined AFF1 size).
        let m = crate::metrics::matrix();
        let _span = m.apply_ns.span();
        let aff = crate::incremental::update_matrix_batch_with(g, self, updates, exec);
        if gpm_obs::enabled() {
            let inserts = updates.iter().filter(|u| u.is_insert()).count();
            m.inserts.add(inserts as u64);
            m.deletes.add((updates.len() - inserts) as u64);
            m.aff1_pairs.add(aff.len() as u64);
            m.aff1_size.record(aff.len() as u64);
        }
        aff
    }

    fn memory_bytes(&self) -> usize {
        DistanceMatrix::memory_bytes(self)
    }

    fn clone_box(&self) -> Option<Box<dyn DistanceOracle + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn matrix_implements_oracle() {
        let g = line();
        let m = DistanceMatrix::build(&g);
        let oracle: &dyn DistanceOracle = &m;
        assert_eq!(oracle.nonempty_distance(&g, n(0), n(3)), Some(3));
        assert_eq!(oracle.nonempty_distance(&g, n(3), n(0)), None);
        assert!(oracle.within(&g, n(0), n(3), EdgeBound::Hops(3)));
        assert!(!oracle.within(&g, n(0), n(3), EdgeBound::Hops(2)));
        assert!(oracle.within(&g, n(0), n(3), EdgeBound::Unbounded));
        assert!(!oracle.within(&g, n(3), n(0), EdgeBound::Unbounded));
        assert_eq!(oracle.name(), "matrix");
        assert!(oracle.supports_incremental());
        assert_eq!(oracle.rebuilds(), 0);
        assert!(oracle.memory_bytes() > 0);
    }

    #[test]
    fn default_within_is_consistent_with_distance() {
        // Exercise the trait's default `within` using a thin wrapper oracle.
        struct Wrapper(DistanceMatrix);
        impl DistanceOracle for Wrapper {
            fn nonempty_distance(&self, _g: &DataGraph, a: NodeId, b: NodeId) -> Option<u32> {
                self.0.nonempty_distance(a, b)
            }
            fn name(&self) -> &'static str {
                "wrapper"
            }
        }
        let g = line();
        let w = Wrapper(DistanceMatrix::build(&g));
        assert!(w.within(&g, n(0), n(2), EdgeBound::Hops(2)));
        assert!(!w.within(&g, n(0), n(2), EdgeBound::Hops(1)));
        assert!(w.within(&g, n(0), n(2), EdgeBound::Unbounded));
        assert!(!w.within(&g, n(2), n(0), EdgeBound::Unbounded));
        assert!(!w.supports_incremental());
        assert_eq!(w.rebuilds(), 0);
        assert_eq!(w.memory_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "does not support incremental maintenance")]
    fn non_incremental_oracle_panics_on_maintenance() {
        struct Fixed;
        impl DistanceOracle for Fixed {
            fn nonempty_distance(&self, _g: &DataGraph, _a: NodeId, _b: NodeId) -> Option<u32> {
                None
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let mut g = line();
        g.add_edge(n(3), n(0)).unwrap();
        Fixed.apply_insert(&g, n(3), n(0), &Executor::sequential());
    }

    #[test]
    fn matrix_maintenance_through_the_trait_matches_rebuild() {
        let mut g = line();
        let exec = Executor::sequential();
        let mut oracle: Box<dyn DistanceOracle + Send + Sync> = Box::new(DistanceMatrix::build(&g));

        g.add_edge(n(3), n(0)).unwrap();
        let aff = oracle.apply_insert(&g, n(3), n(0), &exec);
        assert!(!aff.is_empty());
        let rebuilt = DistanceMatrix::build(&g);
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    oracle.nonempty_distance(&g, x, y),
                    rebuilt.nonempty_distance(x, y)
                );
            }
        }

        g.remove_edge(n(1), n(2)).unwrap();
        let aff = oracle.apply_delete(&g, n(1), n(2), &exec);
        assert!(!aff.is_empty());
        let rebuilt = DistanceMatrix::build(&g);
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    oracle.nonempty_distance(&g, x, y),
                    rebuilt.nonempty_distance(x, y)
                );
            }
        }
    }

    #[test]
    fn default_apply_batch_replays_units() {
        // A wrapper that delegates the *unit* methods only, so the batch goes
        // through the trait's default inverse-replay implementation — its
        // result must equal the matrix's native batch path.
        struct UnitOnly(DistanceMatrix);
        impl DistanceOracle for UnitOnly {
            fn nonempty_distance(&self, _g: &DataGraph, a: NodeId, b: NodeId) -> Option<u32> {
                self.0.nonempty_distance(a, b)
            }
            fn name(&self) -> &'static str {
                "unit-only"
            }
            fn supports_incremental(&self) -> bool {
                true
            }
            fn apply_insert(
                &mut self,
                g: &DataGraph,
                from: NodeId,
                to: NodeId,
                exec: &Executor,
            ) -> AffectedPairs {
                self.0.apply_insert(g, from, to, exec)
            }
            fn apply_delete(
                &mut self,
                g: &DataGraph,
                from: NodeId,
                to: NodeId,
                exec: &Executor,
            ) -> AffectedPairs {
                self.0.apply_delete(g, from, to, exec)
            }
        }

        let exec = Executor::sequential();
        let mut g = line();
        let mut via_default = UnitOnly(DistanceMatrix::build(&g));
        let mut native = DistanceMatrix::build(&g);
        let updates = [
            EdgeUpdate::Insert(n(3), n(0)),
            EdgeUpdate::Delete(n(0), n(1)),
            EdgeUpdate::Insert(n(0), n(2)),
            EdgeUpdate::Delete(n(3), n(0)), // delete the edge inserted above
            EdgeUpdate::Insert(n(0), n(2)), // duplicate: no-op
        ];
        for u in &updates {
            u.apply(&mut g);
        }
        let aff_default = via_default.apply_batch(&g, &updates, &exec);
        let aff_native = native.apply_batch(&g, &updates, &exec);
        assert_eq!(aff_default, aff_native);
        assert_eq!(via_default.0, native);
        assert_eq!(native, DistanceMatrix::build(&g));
    }
}
