//! Observability handles for the service layer: the `"service"` scope
//! (batch apply, fan-out and delta accounting) and the `"wal"` scope
//! (append/fsync timing and volume).

use gpm_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

pub(crate) struct ServiceMetrics {
    pub scope: Arc<gpm_obs::Scope>,
    pub batches: Arc<Counter>,
    pub updates_applied: Arc<Counter>,
    pub repairs: Arc<Counter>,
    pub recompute_fallbacks: Arc<Counter>,
    pub activations: Arc<Counter>,
    pub verifications: Arc<Counter>,
    pub deltas_emitted: Arc<Counter>,
    pub delta_pairs: Arc<Counter>,
    pub registers: Arc<Counter>,
    pub snapshots: Arc<Counter>,
    /// Whole-batch apply latency — the headline percentile table.
    pub batch_ns: Arc<Histogram>,
    /// Shared AFF1 maintenance (`UpdateBM`) duration per batch.
    pub aff_ns: Arc<Histogram>,
    /// Queries repaired per batch (the fan-out width).
    pub fanout_size: Arc<Histogram>,
    /// Pairs per emitted delta (added + removed).
    pub delta_size: Arc<Histogram>,
    /// Snapshot fold duration ([`crate::MatchService::snapshot_now`]).
    pub fold_ns: Arc<Histogram>,
    pub register_ns: Arc<Histogram>,
}

pub(crate) fn service() -> &'static ServiceMetrics {
    static M: OnceLock<ServiceMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let scope = gpm_obs::registry().scope("service");
        ServiceMetrics {
            batches: scope.counter("batches"),
            updates_applied: scope.counter("updates_applied"),
            repairs: scope.counter("repairs"),
            recompute_fallbacks: scope.counter("recompute_fallbacks"),
            activations: scope.counter("activations"),
            verifications: scope.counter("verifications"),
            deltas_emitted: scope.counter("deltas_emitted"),
            delta_pairs: scope.counter("delta_pairs"),
            registers: scope.counter("registers"),
            snapshots: scope.counter("snapshots"),
            batch_ns: scope.histogram("batch_ns"),
            aff_ns: scope.histogram("aff_ns"),
            fanout_size: scope.histogram("fanout_size"),
            delta_size: scope.histogram("delta_size"),
            fold_ns: scope.histogram("fold_ns"),
            register_ns: scope.histogram("register_ns"),
            scope,
        }
    })
}

pub(crate) struct WalMetrics {
    pub appends: Arc<Counter>,
    pub bytes: Arc<Counter>,
    pub append_ns: Arc<Histogram>,
    pub fsync_ns: Arc<Histogram>,
}

pub(crate) fn wal() -> &'static WalMetrics {
    static M: OnceLock<WalMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let scope = gpm_obs::registry().scope("wal");
        WalMetrics {
            appends: scope.counter("appends"),
            bytes: scope.counter("bytes"),
            append_ns: scope.histogram("append_ns"),
            fsync_ns: scope.histogram("fsync_ns"),
        }
    })
}
