//! T1 — the dataset-size table of Section 5.
//!
//! By default: the paper-reported sizes of the three real-life graphs next
//! to the sizes of the simulated stand-ins generated at the requested
//! `--scale`. With `--dataset-dir <path>`: the sizes of the on-disk
//! datasets actually loaded (paper columns show `-` for datasets the paper
//! does not report).

use gpm::DatasetSource;
use gpm_bench::{load_source_or_exit, HarnessArgs, Table};

fn main() {
    let args = HarnessArgs::from_env();
    let sources = args.dataset_sources_or_exit();
    let mut table = Table::new(
        format!("Table 1: real-life datasets (scale {})", args.scale),
        &[
            "dataset",
            "source",
            "|V| (paper)",
            "|E| (paper)",
            "|V| (loaded)",
            "|E| (loaded)",
        ],
    );
    for source in &sources {
        let (paper_nodes, paper_edges) = match source {
            DatasetSource::Synthetic(d) => {
                let spec = d.spec();
                (spec.nodes.to_string(), spec.edges.to_string())
            }
            DatasetSource::OnDisk { .. } => ("-".to_string(), "-".to_string()),
        };
        let g = load_source_or_exit(source, &args);
        table.row(vec![
            source.name(),
            if source.is_synthetic() {
                "synthetic".to_string()
            } else {
                "on-disk".to_string()
            },
            paper_nodes,
            paper_edges,
            g.node_count().to_string(),
            g.edge_count().to_string(),
        ]);
    }
    table.print();
}
