//! Appendix statistics — |Gr| (result-graph size) and the relationship
//! between |AFF1|, |AFF2| and the "relevant" part of AFF1 (pairs that touch a
//! current match), complementing Exp-2/Exp-3.

use gpm::{
    bounded_simulation_with_oracle, random_updates, IncrementalMatcher, ResultGraph,
    UpdateStreamConfig,
};
use gpm_bench::{dag_pattern, load_source_or_exit, patterns_for, HarnessArgs, Subject, Table};

fn main() {
    let args = HarnessArgs::from_env();
    let source = args.update_source_or_exit();
    let graph = load_source_or_exit(&source, &args);
    let subject = Subject::new(graph);
    println!(
        "{}: |V| = {}, |E| = {} [{}]\n",
        source.name(),
        subject.graph.node_count(),
        subject.graph.edge_count(),
        source.describe(args.scale)
    );

    // (1) Result-graph sizes for P(4,4,3) patterns.
    let mut table = Table::new(
        "Result-graph size |Gr| for P(4,4,3) patterns",
        &["pattern", "|S| pairs", "Gr nodes", "Gr edges", "components"],
    );
    let patterns = patterns_for(&subject.graph, 4, 4, 3, args.patterns, args.seed);
    for (i, pattern) in patterns.iter().enumerate() {
        let outcome = bounded_simulation_with_oracle(pattern, &subject.graph, &subject.matrix);
        let rg = ResultGraph::build(pattern, &subject.graph, &outcome.relation);
        table.row(vec![
            format!("P#{i}"),
            outcome.relation.pair_count().to_string(),
            rg.node_count().to_string(),
            rg.edge_count().to_string(),
            rg.weakly_connected_components().len().to_string(),
        ]);
    }
    table.print();
    println!(
        "paper reference: around 70 nodes and 174 edges per result graph for (4,4,3) patterns\n\
         on the full-size YouTube graph (sizes scale with --scale).\n"
    );

    // (2) AFF statistics for insertion batches — read off the `incremental`
    // scope of the `gpm::obs` registry rather than recomputed ad hoc:
    // `repair_match_state` counts the relevant AFF1 pairs (source or sink
    // matched before or after the repair) as it runs, so the table and any
    // JSONL consumer see the same numbers.
    gpm::obs::set_enabled(true);
    let pattern = dag_pattern(&subject.graph, 4, 4, 3, args.seed);
    let base = IncrementalMatcher::new(pattern, subject.graph.clone());
    let mut table = Table::new(
        "Affected areas for insertion batches",
        &["|δ|", "|AFF1|", "|AFF1| relevant", "|AFF2|"],
    );
    for &delta in &[50usize, 100, 200, 400] {
        let updates = random_updates(
            base.graph(),
            &UpdateStreamConfig::insertions(delta).with_seed(args.seed + delta as u64),
        );
        let mut matcher = base.clone();
        gpm::obs::registry().reset();
        let outcome = matcher.apply_batch(&updates).expect("DAG pattern");
        let counters = gpm::obs::registry().snapshot().det_counters();
        let get = |name: &str| {
            counters
                .get(&format!("incremental.{name}"))
                .copied()
                .unwrap_or(0)
        };
        assert_eq!(
            get("aff1_pairs"),
            outcome.stats.aff1 as u64,
            "obs counter must agree with the repair outcome"
        );
        table.row(vec![
            updates.len().to_string(),
            get("aff1_pairs").to_string(),
            get("aff1_relevant").to_string(),
            get("aff2_pairs").to_string(),
        ]);
    }
    table.print();
    println!(
        "paper reference: although |AFF1| can be large, only a small fraction of it can affect\n\
         the match, and |AFF2| stays far smaller than |AFF1| — bounded simulation is relatively\n\
         insensitive to data-graph updates."
    );
}
