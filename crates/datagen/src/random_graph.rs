//! Uniform random digraphs — the synthetic data of Exp-1/Exp-2.
//!
//! The paper generated synthetic graphs with the C++ Boost generator,
//! "with 3 parameters: the number of nodes, the number of edges, and a set of
//! node attributes". This module reproduces that model: a `G(n, m)` digraph
//! with `m` distinct uniform random edges and a configurable attribute
//! domain — each node gets a `label` attribute drawn uniformly from
//! `attribute_values` distinct values plus a numeric `weight` attribute, so
//! both equality and comparison predicates have something to bite on.

use gpm_graph::{Attributes, DataGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the uniform random graph generator.
#[derive(Clone, Debug, PartialEq)]
pub struct RandomGraphConfig {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of (distinct) directed edges `|E|`.
    pub edges: usize,
    /// Number of distinct `label` values (the paper uses e.g. 2 000 distinct
    /// attributes on a 20K-node graph).
    pub attribute_values: usize,
    /// RNG seed; the same seed reproduces the same graph.
    pub seed: u64,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            nodes: 1_000,
            edges: 2_000,
            attribute_values: 100,
            seed: 0,
        }
    }
}

impl RandomGraphConfig {
    /// Convenience constructor mirroring the paper's `(|V|, |E|, #attrs)`
    /// triple.
    pub fn new(nodes: usize, edges: usize, attribute_values: usize) -> Self {
        RandomGraphConfig {
            nodes,
            edges,
            attribute_values: attribute_values.max(1),
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a uniform random attributed digraph.
///
/// Self-loops are allowed (they occur in real networks and exercise the
/// non-empty-path semantics); parallel edges are not. If `edges` exceeds the
/// number of distinct pairs the generator stops at the maximum.
pub fn random_graph(config: &RandomGraphConfig) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let mut g = DataGraph::with_capacity(n);
    for i in 0..n {
        let label = format!("a{}", rng.gen_range(0..config.attribute_values));
        let weight = rng.gen_range(0..1_000i64);
        let attrs = Attributes::labeled(label)
            .with("weight", weight)
            .with("idx", i as i64);
        g.add_node(attrs);
    }
    if n == 0 {
        return g;
    }
    let max_edges = n * n;
    let target = config.edges.min(max_edges);
    let mut attempts = 0usize;
    // Rejection sampling is fine while the graph is sparse (all our
    // workloads are); bail out if the graph is nearly complete.
    let attempt_cap = target.saturating_mul(40) + 1_000;
    while g.edge_count() < target && attempts < attempt_cap {
        attempts += 1;
        let a = NodeId::new(rng.gen_range(0..n as u32));
        let b = NodeId::new(rng.gen_range(0..n as u32));
        let _ = g.try_add_edge(a, b);
    }
    // Dense fallback: fill deterministically if rejection sampling stalled.
    if g.edge_count() < target {
        'outer: for a in 0..n as u32 {
            for b in 0..n as u32 {
                if g.edge_count() >= target {
                    break 'outer;
                }
                let _ = g.try_add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
    }
    // Fold the build-time delta overlay into the CSR base: generated graphs
    // are read-heavy from here on.
    g.compact();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_node_and_edge_counts() {
        let cfg = RandomGraphConfig::new(200, 600, 20).with_seed(7);
        let g = random_graph(&cfg);
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 600);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = RandomGraphConfig::new(50, 120, 5).with_seed(42);
        let g1 = random_graph(&cfg);
        let g2 = random_graph(&cfg);
        assert_eq!(g1.edge_count(), g2.edge_count());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        for v in g1.nodes() {
            assert_eq!(g1.attributes(v), g2.attributes(v));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_graph(&RandomGraphConfig::new(50, 120, 5).with_seed(1));
        let b = random_graph(&RandomGraphConfig::new(50, 120, 5).with_seed(2));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn attributes_are_within_domain() {
        let cfg = RandomGraphConfig::new(100, 100, 3).with_seed(0);
        let g = random_graph(&cfg);
        for v in g.nodes() {
            let label = g.attributes(v).label().unwrap();
            assert!(["a0", "a1", "a2"].contains(&label), "unexpected {label}");
            let w = g.attributes(v).get("weight").unwrap().as_int().unwrap();
            assert!((0..1000).contains(&w));
        }
    }

    #[test]
    fn edge_cap_on_tiny_graphs() {
        // 2 nodes -> at most 4 distinct directed edges (self-loops allowed).
        let cfg = RandomGraphConfig::new(2, 100, 1).with_seed(3);
        let g = random_graph(&cfg);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn empty_graph() {
        let g = random_graph(&RandomGraphConfig::new(0, 10, 1));
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = RandomGraphConfig::default();
        assert!(cfg.nodes > 0 && cfg.edges > 0 && cfg.attribute_values > 0);
    }
}
