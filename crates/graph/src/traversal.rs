//! Generic traversals over data graphs.
//!
//! These are the shared building blocks of the distance oracles and the
//! matching algorithms: BFS (orders and bounded distances), DFS postorder,
//! reachability, topological sorting and Tarjan's strongly connected
//! components.

use crate::data_graph::DataGraph;
use crate::node_id::NodeId;
use std::collections::VecDeque;

/// Distance value used by the traversal helpers: `None` = unreachable.
pub type Hops = Option<u32>;

/// Breadth-first order of the nodes reachable from `start` (including
/// `start` itself, first).
pub fn bfs_order(g: &DataGraph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.out_neighbors(v) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Shortest distances (in hops) from `start` to every node, stopping the
/// expansion at `max_hops` when given. `dist[start] == Some(0)`.
///
/// This is the *standard* distance (empty path allowed); the non-empty
/// distance needed by bounded simulation is provided by `gpm-distance`.
pub fn bfs_distances_bounded(g: &DataGraph, start: NodeId, max_hops: Option<u32>) -> Vec<Hops> {
    let mut dist: Vec<Hops> = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].expect("queued nodes have distances");
        if let Some(limit) = max_hops {
            if d >= limit {
                continue;
            }
        }
        for &w in g.out_neighbors(v) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The set of nodes reachable from `start` (including `start`), as a boolean
/// mask indexed by node id.
pub fn reachable_from(g: &DataGraph, start: NodeId) -> Vec<bool> {
    let mut visited = vec![false; g.node_count()];
    let mut stack = vec![start];
    visited[start.index()] = true;
    while let Some(v) = stack.pop() {
        for &w in g.out_neighbors(v) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                stack.push(w);
            }
        }
    }
    visited
}

/// Whether there is a (possibly empty) path from `from` to `to`.
pub fn reaches(g: &DataGraph, from: NodeId, to: NodeId) -> bool {
    if from == to {
        return true;
    }
    reachable_from(g, from)[to.index()]
}

/// Depth-first postorder of the whole graph (every node appears exactly once,
/// roots chosen in ascending id order). Iterative, so deep graphs do not
/// overflow the stack.
pub fn dfs_postorder(g: &DataGraph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    for root in g.nodes() {
        if visited[root.index()] {
            continue;
        }
        // (node, next child index) explicit stack.
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        visited[root.index()] = true;
        while let Some((v, ci)) = stack.pop() {
            let outs = g.out_neighbors(v);
            if ci < outs.len() {
                stack.push((v, ci + 1));
                let w = outs[ci];
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    stack.push((w, 0));
                }
            } else {
                post.push(v);
            }
        }
    }
    post
}

/// Whether the data graph is a DAG.
pub fn is_dag(g: &DataGraph) -> bool {
    topological_order(g).is_some()
}

/// A topological order of the data graph, or `None` if it contains a cycle.
/// Kahn's algorithm with a FIFO queue (deterministic for a fixed graph).
pub fn topological_order(g: &DataGraph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indeg: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
    let mut queue: VecDeque<NodeId> = g.nodes().filter(|v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in g.out_neighbors(v) {
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push_back(w);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Strongly connected components (Tarjan, iterative). Returns one `Vec` of
/// node ids per component, in reverse topological order of the condensation.
pub fn strongly_connected_components(g: &DataGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut components = Vec::new();

    // Explicit DFS stack: (node, next-out-edge position).
    let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

    for root in g.nodes() {
        if index[root.index()] != UNSET {
            continue;
        }
        call_stack.push((root, 0));
        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            if *ei == 0 {
                index[v.index()] = next_index;
                lowlink[v.index()] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v.index()] = true;
            }
            let outs = g.out_neighbors(v);
            if *ei < outs.len() {
                let w = outs[*ei];
                *ei += 1;
                if index[w.index()] == UNSET {
                    call_stack.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w.index()] = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attributes;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 1 -> 2 -> 3, 0 -> 2, 4 isolated.
    fn chain_graph() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(5);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g
    }

    /// Two SCCs: {0,1,2} cycle and {3}; edge from the cycle to 3.
    fn cyclic_graph() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn bfs_order_visits_reachable_once() {
        let g = chain_graph();
        let order = bfs_order(&g, n(0));
        assert_eq!(order[0], n(0));
        assert_eq!(order.len(), 4); // node 4 unreachable
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn bfs_distances() {
        let g = chain_graph();
        let d = bfs_distances_bounded(&g, n(0), None);
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(1)); // via the shortcut 0 -> 2
        assert_eq!(d[3], Some(2));
        assert_eq!(d[4], None);
    }

    #[test]
    fn bfs_distances_respect_bound() {
        let g = chain_graph();
        let d = bfs_distances_bounded(&g, n(0), Some(1));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], Some(1));
        assert_eq!(d[3], None); // beyond the 1-hop horizon
    }

    #[test]
    fn reachability() {
        let g = chain_graph();
        assert!(reaches(&g, n(0), n(3)));
        assert!(reaches(&g, n(2), n(2))); // empty path
        assert!(!reaches(&g, n(3), n(0)));
        assert!(!reaches(&g, n(0), n(4)));
        let mask = reachable_from(&g, n(1));
        assert_eq!(mask, vec![false, true, true, true, false]);
    }

    #[test]
    fn postorder_contains_every_node_once() {
        let g = cyclic_graph();
        let post = dfs_postorder(&g);
        assert_eq!(post.len(), 4);
        let mut sorted = post.clone();
        sorted.sort();
        assert_eq!(sorted, vec![n(0), n(1), n(2), n(3)]);
    }

    #[test]
    fn dag_and_topological_order() {
        let g = chain_graph();
        assert!(is_dag(&g));
        let order = topological_order(&g).unwrap();
        let pos = |x: NodeId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(n(0)) < pos(n(1)));
        assert!(pos(n(1)) < pos(n(2)));
        assert!(pos(n(2)) < pos(n(3)));

        let c = cyclic_graph();
        assert!(!is_dag(&c));
        assert!(topological_order(&c).is_none());
    }

    #[test]
    fn scc_detects_cycle_and_singletons() {
        let g = cyclic_graph();
        let mut sccs = strongly_connected_components(&g);
        for c in &mut sccs {
            c.sort();
        }
        sccs.sort_by_key(|c| c.len());
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0], vec![n(3)]);
        assert_eq!(sccs[1], vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn scc_on_dag_gives_singletons() {
        let g = chain_graph();
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 5);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn self_loop_is_its_own_scc_and_breaks_dagness() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::new());
        g.add_edge(n(0), n(0)).unwrap();
        assert!(!is_dag(&g));
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs, vec![vec![n(0)]]);
    }

    fn arbitrary_graph(max_n: usize, max_e: usize) -> impl Strategy<Value = DataGraph> {
        (2..max_n).prop_flat_map(move |n_nodes| {
            proptest::collection::vec((0..n_nodes as u32, 0..n_nodes as u32), 0..max_e).prop_map(
                move |edges| {
                    let mut g = DataGraph::new();
                    g.add_nodes(n_nodes);
                    for (a, b) in edges {
                        let _ = g.try_add_edge(NodeId::new(a), NodeId::new(b));
                    }
                    g
                },
            )
        })
    }

    proptest! {
        /// BFS distances satisfy the triangle property over edges: if (v, w)
        /// is an edge and v is reachable, then dist(w) <= dist(v) + 1.
        #[test]
        fn prop_bfs_distance_edge_relaxed(g in arbitrary_graph(20, 80)) {
            let d = bfs_distances_bounded(&g, NodeId::new(0), None);
            for (v, w) in g.edges() {
                if let Some(dv) = d[v.index()] {
                    let dw = d[w.index()].expect("neighbour of reachable node is reachable");
                    prop_assert!(dw <= dv + 1);
                }
            }
        }

        /// Every node belongs to exactly one SCC.
        #[test]
        fn prop_sccs_partition_nodes(g in arbitrary_graph(25, 100)) {
            let sccs = strongly_connected_components(&g);
            let mut seen = vec![0usize; g.node_count()];
            for c in &sccs {
                for v in c {
                    seen[v.index()] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }

        /// A graph is a DAG iff every SCC is a singleton without a self-loop.
        #[test]
        fn prop_dag_iff_trivial_sccs(g in arbitrary_graph(20, 60)) {
            let trivial = strongly_connected_components(&g)
                .iter()
                .all(|c| c.len() == 1 && !g.has_edge(c[0], c[0]));
            prop_assert_eq!(is_dag(&g), trivial);
        }
    }
}
