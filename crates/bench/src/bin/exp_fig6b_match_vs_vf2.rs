//! Fig. 6(b) — efficiency of `Match` vs VF2 — plus the larger-pattern
//! sweep where VF2's exponential blow-up becomes visible.
//!
//! Two tables:
//!
//! 1. **Fig. 6(b) sweep** on the (simulated) YouTube graph — or a real
//!    on-disk dataset via `--dataset-dir`/`--dataset` — with patterns
//!    P(|Vp|, |Ep|, 3), |Vp| = |Ep| = 3..12 (the paper plots 3..8). VF2
//!    runs with its default enumeration limits; the generated patterns are
//!    selective, so this is VF2's *friendly* regime (cf. BENCHMARKS.md
//!    batch 1).
//! 2. **Blow-up leg**: the same sweep against a 2-label power-law graph
//!    with *exhaustive* VF2 enumeration (`max_embeddings` unbounded).
//!    With only two labels every pattern node has ~|V|/2 candidates and
//!    backtracking explodes combinatorially — this is where subgraph
//!    isomorphism's NP-hardness bites while `Match` stays polynomial.
//!
//! Both legs are guarded two ways so the harness never hangs:
//!
//! * a **wall-clock budget** (`--cutoff-ms`, default 2 s): once a size's
//!   accumulated VF2 time crosses it, remaining patterns of that size are
//!   skipped and every larger size skips VF2 entirely (`cut off`);
//! * the `IsoConfig::max_steps` **work budget** bounds each individual
//!   run, so even the first pattern of a hopeless size terminates; budget
//!   truncation is flagged with `*` in the table.

use gpm::datagen::{powerlaw_graph, PowerLawConfig};
use gpm::{bounded_simulation_with_oracle, subgraph_isomorphism_vf2, DataGraph, IsoConfig};
use gpm_bench::{fmt_ms, load_source_or_exit, patterns_for, time, HarnessArgs, Subject, Table};
use std::time::Duration;

/// Pattern sizes: the paper's 3..=8 plus the blow-up extension 9..=12.
const MIN_SIZE: usize = 3;
const MAX_SIZE: usize = 12;

/// Runs one Match-vs-VF2 sweep over the size axis and prints its table.
fn sweep(title: &str, graph: DataGraph, iso: &IsoConfig, args: &HarnessArgs) {
    let subject = Subject::with_parallelism(graph, args.parallelism());
    let cutoff = Duration::from_millis(args.cutoff_ms);
    println!(
        "|V| = {}, |E| = {}, matrix build {} ms, VF2 budget {} ms/size",
        subject.graph.node_count(),
        subject.graph.edge_count(),
        fmt_ms(subject.matrix_build_time),
        args.cutoff_ms,
    );

    let mut table = Table::new(
        title.to_string(),
        &[
            "pattern",
            "Match total (ms)",
            "Match process (ms)",
            "VF2 (ms)",
        ],
    );

    let mut vf2_alive = true;
    for size in MIN_SIZE..=MAX_SIZE {
        let patterns = patterns_for(
            &subject.graph,
            size,
            size,
            3,
            args.patterns,
            args.seed + size as u64,
        );
        let mut match_time = Duration::ZERO;
        let mut vf2_time = Duration::ZERO;
        let mut vf2_runs = 0usize;
        let mut vf2_truncated = false;
        for pattern in &patterns {
            let (_, t) =
                time(|| bounded_simulation_with_oracle(pattern, &subject.graph, &subject.matrix));
            match_time += t;
            // The wall-clock guard: stop burning budget on this size the
            // moment it is exhausted (each individual run stays bounded by
            // the max_steps work budget).
            if vf2_alive && vf2_time < cutoff {
                let (out, t) = time(|| subgraph_isomorphism_vf2(pattern, &subject.graph, iso));
                vf2_time += t;
                vf2_runs += 1;
                vf2_truncated |= out.truncated;
            }
        }
        let n = patterns.len() as u32;
        let match_avg = match_time / n;
        let vf2_cell = if !vf2_alive || vf2_runs == 0 {
            "cut off".to_string()
        } else {
            let avg = vf2_time / vf2_runs as u32;
            let mut cell = fmt_ms(avg);
            if vf2_runs < patterns.len() {
                // Budget ran out mid-size: the average is a lower bound.
                cell = format!(">={cell} ({vf2_runs}/{n} runs)");
            }
            if vf2_truncated {
                cell.push('*');
            }
            cell
        };
        // A size that blew its budget disqualifies every larger size.
        if vf2_time >= cutoff {
            vf2_alive = false;
        }
        table.row(vec![
            format!("({size},{size},3)"),
            fmt_ms(match_avg + subject.matrix_build_time),
            fmt_ms(match_avg),
            vf2_cell,
        ]);
    }
    table.print();
}

fn main() {
    let args = HarnessArgs::from_env();

    // Leg 1: the paper's Fig. 6(b) setting, extended to size 12.
    let source = args.update_source_or_exit();
    let graph = load_source_or_exit(&source, &args);
    println!("{} [{}]", source.name(), source.describe(args.scale));
    sweep(
        "Fig. 6(b) + larger patterns: Match vs VF2 (avg per pattern, default VF2 limits)",
        graph,
        &IsoConfig::default(),
        &args,
    );

    // Leg 2: exhaustive enumeration on a label-poor graph — VF2's
    // exponential worst case. Match keeps its polynomial profile on the
    // identical instances.
    let nodes = args.scaled(2_000);
    let mut dense = powerlaw_graph(&PowerLawConfig::new(nodes, nodes * 4).with_seed(args.seed));
    for v in 0..dense.node_count() {
        let label = format!("a{}", v % 2);
        dense
            .attributes_mut(gpm::NodeId::new(v as u32))
            .set("label", label);
    }
    println!("\nblow-up leg: 2-label power-law graph, exhaustive VF2 enumeration");
    let exhaustive = IsoConfig {
        max_embeddings: usize::MAX,
        ..IsoConfig::default()
    };
    sweep(
        "VF2 blow-up sweep: Match vs exhaustive VF2 (avg per pattern)",
        dense,
        &exhaustive,
        &args,
    );

    println!(
        "\npaper reference: the matching process of Match stays polynomial as patterns grow;\n\
         VF2's enumeration blows up once candidates stop being selective (`*` = truncated by\n\
         the max_steps work budget, `cut off` = the {} ms wall-clock budget was exhausted at\n\
         a smaller size). The Match total is dominated by the shared, one-off matrix build.",
        args.cutoff_ms
    );
}
