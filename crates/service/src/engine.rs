//! The continuous-query engine: one evolving graph, many standing patterns.
//!
//! [`MatchService`] owns the shared state every registered query needs — the
//! data graph and its maintained distance oracle — and multiplexes update
//! batches across the catalog:
//!
//! 1. the batch is applied to the graph and the oracle is maintained with
//!    `UpdateBM` **once**, producing the shared affected area `AFF1`
//!    (this is the expensive step, and it is paid per batch, not per query);
//! 2. every active query repairs its own match state from that shared
//!    `AFF1` (`gpm_incremental::repair_match_state`), fanned out across the
//!    `gpm-exec` work-stealing executor — queries are independent, so each
//!    task owns exactly one query's state;
//! 3. deltas are emitted sequentially in registration order, so the
//!    per-query streams (and the batch outcome) are bit-identical at any
//!    thread count.
//!
//! Cyclic patterns are first-class: batches that only increase distances
//! repair them incrementally (`Match−` propagation); batches with distance
//! decreases fall back to recomputing that query's state against the
//! already-maintained oracle — never the oracle itself.
//!
//! The distance backend is pluggable ([`MatchService::with_backend`] /
//! `GPM_ORACLE`): the paper's quadratic matrix, or the sublinear-memory
//! incremental 2-hop labeling for graphs where `|V|²` does not fit.

use crate::catalog::{BatchWork, QueryCatalog, QueryEntry, RepairKind};
use crate::delta::{MatchDelta, QueryId, Subscription};
use gpm_core::MatchRelation;
use gpm_distance::{AffectedPairs, DistanceOracle, EdgeUpdate, OracleBackend};
use gpm_exec::{Executor, Parallelism};
use gpm_graph::{DataGraph, GraphError, PatternGraph};
use gpm_incremental::{repair_match_state, MatchState};
use std::sync::mpsc;

/// Counters describing the work the service has done since construction.
///
/// `aff_computations` is the headline amortisation metric: a service with
/// `K` registered queries performs **one** affected-area computation per
/// update batch, where `K` independent [`gpm_incremental::IncrementalMatcher`]s
/// would perform `K` (the `svc_continuous` experiment prints both sides).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Update batches applied.
    pub batches: usize,
    /// Individual updates that took effect (no-ops excluded).
    pub updates_applied: usize,
    /// Shared affected-area (`UpdateBM`) computations performed.
    pub aff_computations: usize,
    /// Per-query incremental repairs driven by a shared `AFF1`.
    pub repairs: usize,
    /// Per-query full recomputations (cyclic pattern + distance decreases).
    pub recompute_fallbacks: usize,
    /// Lazy (re)activations: match states built on demand.
    pub activations: usize,
    /// Non-empty per-query deltas emitted.
    pub deltas_emitted: usize,
    /// Candidate re-verifications across all per-query repairs.
    pub verifications: usize,
}

/// What one [`MatchService::apply`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The epoch this batch was assigned (monotonic, starting at 1).
    pub epoch: u64,
    /// Updates that took effect (duplicates/missing edges are skipped).
    pub applied: usize,
    /// `|AFF1|` of the shared distance maintenance.
    pub aff1: usize,
    /// The non-empty per-query deltas, in registration order. The same
    /// deltas are pushed to each query's subscribers.
    pub deltas: Vec<MatchDelta>,
}

/// A continuous multi-pattern matching service over one evolving graph.
///
/// ```
/// use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};
/// use gpm_distance::EdgeUpdate;
/// use gpm_service::MatchService;
///
/// let (g, ids) = DataGraphBuilder::new()
///     .labeled_node("boss")
///     .labeled_node("mid")
///     .labeled_node("worker")
///     .edge("boss", "mid")
///     .build()
///     .unwrap();
/// let (p, _) = PatternGraphBuilder::new()
///     .labeled_node("boss")
///     .labeled_node("worker")
///     .edge("boss", "worker", 2u32)
///     .build()
///     .unwrap();
///
/// let mut svc = MatchService::new(g);
/// let q = svc.register(p);
/// let sub = svc.subscribe(q).unwrap();
/// assert!(svc.result(q).unwrap().is_empty()); // no boss→worker path yet
///
/// let out = svc.apply(&[EdgeUpdate::Insert(ids["mid"], ids["worker"])]);
/// assert_eq!(out.deltas.len(), 1); // the match appeared
/// assert!(!svc.result(q).unwrap().is_empty());
/// // Subscribers see the same stream: snapshot + the batch delta.
/// assert_eq!(sub.drain().len(), 2);
/// ```
pub struct MatchService {
    graph: DataGraph,
    oracle: Box<dyn DistanceOracle + Send + Sync>,
    exec: Executor,
    catalog: QueryCatalog,
    epoch: u64,
    stats: ServiceStats,
}

impl std::fmt::Debug for MatchService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchService")
            .field("graph", &self.graph)
            .field("oracle", &self.oracle.name())
            .field("catalog", &self.catalog)
            .field("epoch", &self.epoch)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MatchService {
    /// Builds the service around a data graph: the shared distance oracle is
    /// computed once, up front, on the process-default [`Parallelism`]. The
    /// backend comes from [`OracleBackend::from_env`] (`GPM_ORACLE`).
    pub fn new(graph: DataGraph) -> Self {
        Self::with_parallelism(graph, Parallelism::from_env())
    }

    /// [`MatchService::new`] with an explicit [`Parallelism`] policy, used
    /// for the oracle build, query registration and every batch's fan-out.
    pub fn with_parallelism(graph: DataGraph, parallelism: Parallelism) -> Self {
        Self::with_backend(graph, OracleBackend::from_env(), parallelism)
    }

    /// Builds the service on an explicitly selected distance backend.
    pub fn with_backend(
        graph: DataGraph,
        backend: OracleBackend,
        parallelism: Parallelism,
    ) -> Self {
        let exec = Executor::new(parallelism);
        let oracle = backend.build(&graph, &exec);
        MatchService {
            graph,
            oracle,
            exec,
            catalog: QueryCatalog::new(),
            epoch: 0,
            stats: ServiceStats::default(),
        }
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The shared, maintained distance oracle.
    pub fn oracle(&self) -> &(dyn DistanceOracle + Send + Sync) {
        self.oracle.as_ref()
    }

    /// The query catalog (read access).
    pub fn catalog(&self) -> &QueryCatalog {
        &self.catalog
    }

    /// Work counters since construction.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The epoch of the most recent batch (0 before any update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registers a standing pattern; its initial match is computed against
    /// the current graph immediately. Returns the query's stable id.
    pub fn register(&mut self, pattern: PatternGraph) -> QueryId {
        let state =
            MatchState::initialise_with(&pattern, &self.graph, self.oracle.as_ref(), &self.exec);
        let emitted = state.relation();
        self.catalog.register(pattern, state, emitted)
    }

    /// Removes a query; its subscriptions close. Returns whether the id was
    /// registered.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        self.catalog.deregister(id)
    }

    /// Suspends a query: it stops participating in per-batch repair and its
    /// match state is freed. Subscriptions stay open but silent. Returns
    /// `false` for unknown ids.
    pub fn suspend(&mut self, id: QueryId) -> bool {
        match self.catalog.get_mut(id) {
            Some(e) => {
                e.active = false;
                e.state = None;
                true
            }
            None => false,
        }
    }

    /// Resumes a suspended query **lazily**: the query is marked active, but
    /// its state is only rebuilt on the next batch or [`MatchService::result`]
    /// call — at which point subscribers receive one catch-up delta covering
    /// everything missed while suspended. Returns `false` for unknown ids.
    pub fn resume(&mut self, id: QueryId) -> bool {
        match self.catalog.get_mut(id) {
            Some(e) => {
                e.active = true;
                true
            }
            None => false,
        }
    }

    /// Subscribes to a query's delta stream. The first delta is a snapshot
    /// of the result as of the last emission, so folding the stream from an
    /// empty relation reproduces the query's result. Returns `None` for
    /// unknown ids.
    pub fn subscribe(&mut self, id: QueryId) -> Option<Subscription> {
        let epoch = self.epoch;
        let entry = self.catalog.get_mut(id)?;
        let (tx, rx) = mpsc::channel();
        let snapshot = MatchDelta::snapshot(id, epoch, &entry.emitted);
        // A send to a channel whose receiver we still hold cannot fail.
        let _ = tx.send(snapshot);
        entry.subscribers.push(tx);
        Some(Subscription { query: id, rx })
    }

    /// The query's current visible result. Materialises the state if the
    /// query was lazily resumed (counted in [`ServiceStats::activations`]) —
    /// in that case subscribers receive the catch-up delta right here, so
    /// their folded stream always equals the returned relation. Returns
    /// `None` for unknown or suspended queries.
    pub fn result(&mut self, id: QueryId) -> Option<MatchRelation> {
        // Split borrows: the entry is mutated, graph/oracle/exec are read.
        let (graph, oracle, exec) = (&self.graph, self.oracle.as_ref(), &self.exec);
        let epoch = self.epoch;
        let entry = self.catalog.get_mut(id)?;
        if !entry.active {
            return None;
        }
        if entry.state.is_none() {
            let state = MatchState::initialise_with(&entry.pattern, graph, oracle, exec);
            let visible = state.relation();
            entry.state = Some(state);
            self.stats.activations += 1;
            // Reconcile subscribers with everything missed while suspended.
            let delta = MatchDelta::between(id, epoch, &entry.emitted, &visible);
            entry.emitted = visible.clone();
            if !delta.is_empty() {
                self.stats.deltas_emitted += 1;
                entry
                    .subscribers
                    .retain(|tx| tx.send(delta.clone()).is_ok());
            }
            return Some(visible);
        }
        entry.state.as_ref().map(MatchState::relation)
    }

    /// Applies one update (sugar for a one-element [`MatchService::apply`]).
    pub fn apply_one(&mut self, update: EdgeUpdate) -> BatchOutcome {
        self.apply(&[update])
    }

    /// Applies a batch of updates and fans the repair out to every active
    /// query.
    ///
    /// Updates that are no-ops at their position in the batch — inserting an
    /// existing edge, deleting a missing one, or touching an unknown node —
    /// are skipped, exactly like `IncMatch`'s batch semantics; the service
    /// never leaves queries inconsistent halfway through a batch. The
    /// returned outcome carries every non-empty per-query delta; the same
    /// deltas are pushed to subscribers.
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> BatchOutcome {
        self.epoch += 1;
        self.stats.batches += 1;

        // Step 1: shared maintenance, paid once for the whole catalog.
        let mut applied: Vec<EdgeUpdate> = Vec::with_capacity(updates.len());
        for u in updates {
            if u.apply(&mut self.graph) {
                applied.push(*u);
            }
        }
        self.stats.updates_applied += applied.len();
        let aff1 = if applied.is_empty() {
            AffectedPairs::default()
        } else {
            self.stats.aff_computations += 1;
            self.oracle.apply_batch(&self.graph, &applied, &self.exec)
        };

        // Step 2: fan the per-query repair out across the executor. Each
        // task owns one query's state; merges are per-entry slots, so the
        // result is independent of scheduling. A batch that left the oracle
        // untouched cannot change any up-to-date query, so only lazily
        // resumed entries (no state yet) need work then.
        let (graph, oracle, exec) = (&self.graph, self.oracle.as_ref(), &self.exec);
        let epoch = self.epoch;
        let mut work: Vec<&mut QueryEntry> = self
            .catalog
            .iter_mut()
            .filter(|e| e.active && (e.state.is_none() || !aff1.is_empty()))
            .collect();
        exec.par_chunks_mut(&mut work, 1, |_, chunk| {
            for entry in chunk.iter_mut() {
                repair_entry(entry, graph, oracle, &aff1, epoch);
            }
        });

        // Step 3: emit sequentially, in registration order.
        let mut outcome = BatchOutcome {
            epoch,
            applied: applied.len(),
            aff1: aff1.len(),
            deltas: Vec::new(),
        };
        for entry in self.catalog.iter_mut() {
            let Some(batch_work) = entry.pending.take() else {
                continue;
            };
            match batch_work.kind {
                RepairKind::Incremental => self.stats.repairs += 1,
                RepairKind::Recompute => self.stats.recompute_fallbacks += 1,
                RepairKind::Activation => self.stats.activations += 1,
            }
            self.stats.verifications += batch_work.verifications;
            if batch_work.delta.is_empty() {
                continue;
            }
            self.stats.deltas_emitted += 1;
            // Push to subscribers, dropping the ones that hung up.
            entry
                .subscribers
                .retain(|tx| tx.send(batch_work.delta.clone()).is_ok());
            outcome.deltas.push(batch_work.delta);
        }
        outcome
    }

    /// Folds the graph's CSR delta overlay back into its base arrays at a
    /// quiesce point (see `DataGraph::compact`). Never needed for
    /// correctness.
    pub fn compact_graph(&mut self) {
        self.graph.compact();
    }
}

/// Brings one query's state up to date against the already-maintained
/// oracle and parks the resulting delta in the entry's pending slot. Runs
/// inside the fan-out region, so everything here must be deterministic —
/// the state build and repair are bit-identical at any thread count, and
/// the per-query executor is sequential (the batch-level fan-out is the
/// parallelism).
fn repair_entry(
    entry: &mut QueryEntry,
    graph: &DataGraph,
    oracle: &(dyn DistanceOracle + Send + Sync),
    aff1: &AffectedPairs,
    epoch: u64,
) {
    let seq = Executor::sequential();
    let (kind, verifications) = match entry.state.as_mut() {
        None => {
            entry.state = Some(MatchState::initialise_with(
                &entry.pattern,
                graph,
                oracle,
                &seq,
            ));
            (RepairKind::Activation, 0)
        }
        Some(state) => match repair_match_state(&entry.pattern, graph, oracle, state, aff1) {
            Ok(out) => (RepairKind::Incremental, out.verifications),
            Err(GraphError::PatternNotAcyclic) => {
                // Cyclic pattern with distance decreases: rebuild this
                // query's state; the shared oracle is already correct.
                *state = MatchState::initialise_with(&entry.pattern, graph, oracle, &seq);
                (RepairKind::Recompute, 0)
            }
            Err(e) => unreachable!("repair cannot fail otherwise: {e}"),
        },
    };
    let visible = entry
        .state
        .as_ref()
        .expect("state materialised above")
        .relation();
    let delta = MatchDelta::between(entry.id, epoch, &entry.emitted, &visible);
    entry.emitted = visible;
    entry.pending = Some(BatchWork {
        delta,
        kind,
        verifications,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_datagen::{
        generate_pattern, random_graph, random_updates, PatternGenConfig, RandomGraphConfig,
        UpdateStreamConfig,
    };
    use gpm_graph::{PatternGraphBuilder, Predicate};

    fn dag_pattern(labels: [&str; 3]) -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label(labels[0]))
            .node("y", Predicate::label(labels[1]))
            .node("z", Predicate::label(labels[2]))
            .edge("x", "y", 2u32)
            .edge("y", "z", 3u32)
            .build()
            .unwrap();
        p
    }

    fn cyclic_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .edge("x", "y", 2u32)
            .edge("y", "x", 2u32)
            .build()
            .unwrap();
        p
    }

    fn assert_consistent(svc: &mut MatchService, ids: &[QueryId]) {
        for &id in ids {
            let Some(result) = svc.result(id) else {
                continue;
            };
            let pattern = svc.catalog().get(id).unwrap().pattern().clone();
            let recomputed = bounded_simulation_with_oracle(&pattern, svc.graph(), svc.oracle());
            assert_eq!(result, recomputed.relation, "query {id} diverged");
        }
    }

    #[test]
    fn shared_aff_is_computed_once_per_batch() {
        let g = random_graph(&RandomGraphConfig::new(40, 100, 5).with_seed(1));
        let mut svc = MatchService::new(g);
        let ids: Vec<QueryId> = (0..4)
            .map(|i| {
                svc.register(dag_pattern([
                    &format!("a{i}"),
                    &format!("a{}", (i + 1) % 5),
                    &format!("a{}", (i + 2) % 5),
                ]))
            })
            .collect();

        for round in 0..5u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(15).with_seed(round + 10),
            );
            svc.apply(&updates);
            assert_consistent(&mut svc, &ids);
        }
        // 5 batches, 4 queries: 5 shared AFF computations, not 20.
        assert_eq!(svc.stats().aff_computations, 5);
        assert_eq!(svc.stats().batches, 5);
        assert_eq!(svc.stats().repairs, 20);
        assert_eq!(svc.stats().recompute_fallbacks, 0);

        // The maintained oracle equals a from-scratch matrix rebuild.
        let rebuilt = gpm_distance::DistanceMatrix::build(svc.graph());
        let n = svc.graph().node_count() as u32;
        for x in (0..n).map(gpm_graph::NodeId::new) {
            for y in (0..n).map(gpm_graph::NodeId::new) {
                assert_eq!(
                    svc.oracle().nonempty_distance(svc.graph(), x, y),
                    rebuilt.nonempty_distance(x, y),
                    "oracle diverged at ({x:?}, {y:?})"
                );
            }
        }
    }

    /// The whole engine — registration, batches, cyclic fallbacks, lazy
    /// resume — works unchanged on the 2-hop backend.
    #[test]
    fn two_hop_backend_runs_the_service() {
        let g = random_graph(&RandomGraphConfig::new(35, 90, 5).with_seed(21));
        let mut svc = MatchService::with_backend(g, OracleBackend::TwoHop, Parallelism::from_env());
        assert_eq!(svc.oracle().name(), "two-hop");
        let ids = vec![
            svc.register(dag_pattern(["a0", "a1", "a2"])),
            svc.register(cyclic_pattern()),
        ];
        for round in 0..5u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round * 3 + 11),
            );
            svc.apply(&updates);
            assert_consistent(&mut svc, &ids);
        }
        assert_eq!(svc.stats().aff_computations, 5);
    }

    #[test]
    fn cyclic_patterns_fall_back_only_on_decreases() {
        let g = random_graph(&RandomGraphConfig::new(30, 80, 4).with_seed(2));
        let mut svc = MatchService::new(g);
        let q = svc.register(cyclic_pattern());

        // Deletion-only batch: incremental even for the cyclic pattern.
        let dels = random_updates(svc.graph(), &UpdateStreamConfig::deletions(8).with_seed(3));
        svc.apply(&dels);
        assert_eq!(svc.stats().recompute_fallbacks, 0);
        assert_eq!(svc.stats().repairs, 1);
        assert_consistent(&mut svc, &[q]);

        // Insertions decrease distances: recompute fallback.
        let ins = random_updates(svc.graph(), &UpdateStreamConfig::insertions(8).with_seed(4));
        svc.apply(&ins);
        assert_eq!(svc.stats().recompute_fallbacks, 1);
        assert_consistent(&mut svc, &[q]);
    }

    #[test]
    fn deltas_fold_to_the_result() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(5));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();

        for round in 0..6u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round * 7 + 1),
            );
            svc.apply(&updates);
        }
        let deltas = sub.drain();
        let folded = crate::delta::fold_deltas(3, deltas.iter());
        assert_eq!(folded, svc.result(q).unwrap());
        // Epochs are non-decreasing and start with the snapshot.
        assert!(deltas.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        assert_eq!(deltas[0].epoch, 0);
    }

    #[test]
    fn suspend_resume_reconciles_subscribers() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(6));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();

        svc.suspend(q);
        assert!(svc.result(q).is_none(), "suspended queries answer None");
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(10).with_seed(round + 40),
            );
            svc.apply(&updates);
        }
        let while_suspended = svc.stats().clone();
        assert_eq!(
            while_suspended.repairs, 0,
            "suspended queries pay no repair cost"
        );

        svc.resume(q);
        // Still lazy: nothing rebuilt until the next batch or result read.
        assert!(!svc.catalog().get(q).unwrap().has_state());
        svc.apply(&[]);
        assert_eq!(svc.stats().activations, 1);

        // The subscriber's fold agrees with the live result after catch-up.
        let folded = crate::delta::fold_deltas(3, sub.drain().iter());
        assert_eq!(folded, svc.result(q).unwrap());
        assert_consistent(&mut svc, &[q]);
    }

    /// A `result()` read — without any intervening batch — must also
    /// reconcile subscribers when it materialises a lazily-resumed state.
    #[test]
    fn result_read_after_resume_emits_catchup_delta() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(31));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();

        svc.suspend(q);
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round + 60),
            );
            svc.apply(&updates);
        }
        svc.resume(q);

        // No apply() after resume: the read itself reconciles.
        let live = svc.result(q).unwrap();
        assert_eq!(svc.stats().activations, 1);
        let folded = crate::delta::fold_deltas(3, sub.drain().iter());
        assert_eq!(folded, live, "catch-up delta must flow from result()");
        // The reconciliation is idempotent: another read emits nothing new.
        let _ = svc.result(q);
        assert!(sub.drain().is_empty());
    }

    /// Empty batches skip the fan-out entirely for up-to-date queries.
    #[test]
    fn empty_batch_skips_repair_for_live_queries() {
        let g = random_graph(&RandomGraphConfig::new(25, 60, 3).with_seed(33));
        let mut svc = MatchService::new(g);
        let _q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        svc.apply(&[]);
        assert_eq!(svc.stats().repairs, 0, "no-op batch must not count repairs");
        assert_eq!(svc.stats().verifications, 0);
    }

    #[test]
    fn deregister_closes_subscriptions_and_stops_deltas() {
        let g = random_graph(&RandomGraphConfig::new(30, 70, 4).with_seed(7));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let keep = svc.register(dag_pattern(["a1", "a2", "a3"]));
        let sub = svc.subscribe(q).unwrap();
        assert!(svc.deregister(q));
        assert!(svc.result(q).is_none());
        assert!(svc.subscribe(q).is_none());

        let updates = random_updates(svc.graph(), &UpdateStreamConfig::mixed(10).with_seed(8));
        let out = svc.apply(&updates);
        assert!(out.deltas.iter().all(|d| d.query != q));
        // Only the snapshot was delivered before deregistration.
        assert!(sub.drain().iter().all(|d| d.epoch == 0));
        assert_consistent(&mut svc, &[keep]);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let g = random_graph(&RandomGraphConfig::new(30, 70, 4).with_seed(9));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();
        drop(sub);
        // A batch that changes the result prunes the dead channel.
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round + 80),
            );
            svc.apply(&updates);
        }
        assert!(
            svc.catalog().get(q).unwrap().subscribers.is_empty() || svc.stats().deltas_emitted == 0
        );
    }

    #[test]
    fn generated_patterns_stay_consistent_under_churn() {
        let g = random_graph(&RandomGraphConfig::new(50, 130, 5).with_seed(11));
        let mut svc = MatchService::new(g);
        let mut ids = Vec::new();
        for i in 0..6u64 {
            let (p, _) = generate_pattern(
                svc.graph(),
                &PatternGenConfig::new(3, 3, 3).with_seed(i * 17 + 1),
            );
            ids.push(svc.register(p));
        }
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(20).with_seed(round * 5 + 2),
            );
            svc.apply(&updates);
            assert_consistent(&mut svc, &ids);
        }
    }

    #[test]
    fn empty_batch_is_cheap_and_emits_nothing() {
        let g = random_graph(&RandomGraphConfig::new(20, 40, 3).with_seed(12));
        let mut svc = MatchService::new(g);
        let _q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let out = svc.apply(&[]);
        assert_eq!(out.applied, 0);
        assert_eq!(out.aff1, 0);
        assert!(out.deltas.is_empty());
        assert_eq!(svc.stats().aff_computations, 0);
        assert_eq!(out.epoch, 1);
    }
}
