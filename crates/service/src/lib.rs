//! # gpm-service
//!
//! A continuous multi-pattern matching service: many standing
//! bounded-simulation queries over **one** evolving data graph, maintained
//! incrementally with shared state.
//!
//! The paper's incremental results (`Match−`/`Match+`/`IncMatch`, Section 4)
//! maintain *one* pattern per graph. Production graph workloads register
//! many patterns against the same graph and stream updates continuously;
//! recomputing — or even incrementally maintaining — each query in isolation
//! repeats the expensive shared work (distance maintenance, affected-area
//! computation) once per query. This crate multiplexes instead:
//!
//! * [`MatchService`] owns one [`gpm_graph::DataGraph`] and one
//!   [`gpm_distance::DistanceMatrix`] shared by every registered query;
//! * each update batch runs `UpdateBM` **once**, producing one shared
//!   `AFF1`; every active query then repairs its own
//!   [`gpm_incremental::MatchState`] from that `AFF1`
//!   ([`gpm_incremental::repair_match_state`]), fanned out across the
//!   `gpm-exec` work-stealing executor;
//! * results leave the service as per-query [`MatchDelta`]s — the pairs
//!   entering and leaving each query's visible result — through pull
//!   ([`MatchService::apply`]'s [`BatchOutcome`]) and push
//!   ([`Subscription`]) channels, emitted in registration order so streams
//!   are bit-identical at any thread count;
//! * the [`QueryCatalog`] supports deregistration and **lazy
//!   (re)activation**: suspended queries cost nothing per batch and are
//!   rebuilt on demand, with a catch-up delta reconciling their
//!   subscribers.
//!
//! With `K` registered queries and `U` update batches the service performs
//! `U` affected-area computations where `K` independent
//! [`gpm_incremental::IncrementalMatcher`]s perform `K·U` — the
//! amortisation the `svc_continuous` experiment measures.
//!
//! ## Example
//!
//! ```
//! use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};
//! use gpm_distance::EdgeUpdate;
//! use gpm_service::{fold_deltas, MatchService};
//!
//! let (g, ids) = DataGraphBuilder::new()
//!     .labeled_node("fraudster")
//!     .labeled_node("mule")
//!     .labeled_node("account")
//!     .edge("fraudster", "mule")
//!     .build()
//!     .unwrap();
//!
//! let (ring, _) = PatternGraphBuilder::new()
//!     .labeled_node("fraudster")
//!     .labeled_node("account")
//!     .edge("fraudster", "account", 2u32)
//!     .build()
//!     .unwrap();
//!
//! let mut svc = MatchService::new(g);
//! let q = svc.register(ring);
//! let sub = svc.subscribe(q).unwrap();
//!
//! // A new money trail completes the pattern: subscribers see the delta.
//! svc.apply(&[EdgeUpdate::Insert(ids["mule"], ids["account"])]);
//! let stream = sub.drain();
//! assert_eq!(fold_deltas(2, stream.iter()), svc.result(q).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod delta;
pub mod engine;
pub(crate) mod metrics;
pub mod snapshot;
pub mod wal;

pub use catalog::{QueryCatalog, QueryEntry, RepairKind};
pub use delta::{fold_deltas, MatchDelta, QueryId, Subscription, SubscriptionPoll};
pub use engine::{BatchOutcome, DurableOptions, MatchService, ServiceStats};
pub use snapshot::{GraphFormat, Manifest, QuerySnapshot, SegmentMeta};
pub use wal::{DurabilityError, FailpointWriter, WalOp, WalReadOutcome, WalRecord, WalWriter};
