//! Differential oracle suite: four independent implementations of
//! bounded-simulation semantics must agree on random instances.
//!
//! 1. `Match` — the paper's cubic algorithm (`gpm-core`);
//! 2. the naive fixpoint — the textbook reading of the definition
//!    (`gpm-core::naive`), asymptotically worse but obviously correct;
//! 3. recompute-after-every-update — a from-scratch `Match` on the graph as
//!    it evolves (the baseline IncMatch is measured against in the paper);
//! 4. `gpm-service` — the continuous engine's maintained result *and* its
//!    emitted delta stream folded back together.
//!
//! Any divergence pinpoints a bug in exactly one layer: 1≠2 breaks the
//! batch algorithm, 3≠4 breaks incremental maintenance or delta emission.

use gpm::matching::naive::bounded_simulation_naive_with_oracle;
use gpm::{
    bounded_simulation_with_oracle, fold_deltas, generate_pattern, random_updates, DataGraph,
    DistanceMatrix, MatchService, PatternGenConfig, UpdateStreamConfig,
};
use gpm::{datagen::powerlaw_graph, datagen::PowerLawConfig};
use proptest::prelude::*;

/// A labelled power-law graph (labels `a0..a<k>` round-robin, as in the
/// determinism suite, so predicates have something to bite on).
fn labelled_graph(nodes: usize, edges: usize, labels: usize, seed: u64) -> DataGraph {
    let mut g = powerlaw_graph(&PowerLawConfig::new(nodes, edges).with_seed(seed));
    for v in 0..g.node_count() {
        let label = format!("a{}", v % labels);
        g.attributes_mut(gpm::NodeId::new(v as u32))
            .set("label", label);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Match` ≡ naive fixpoint on random graphs and patterns (cyclic
    /// patterns included — both support them).
    #[test]
    fn match_equals_naive_fixpoint(
        seed in 0u64..10_000,
        nodes in 20usize..70,
        psize in 2usize..6,
    ) {
        let g = labelled_graph(nodes, nodes * 3, 4, seed);
        let (p, _) = generate_pattern(&g, &PatternGenConfig::new(psize, psize, 3).with_seed(seed ^ 0xabc));
        let matrix = DistanceMatrix::build(&g);
        let fast = bounded_simulation_with_oracle(&p, &g, &matrix);
        let slow = bounded_simulation_naive_with_oracle(&p, &g, &matrix);
        prop_assert_eq!(fast.relation, slow.relation);
    }

    /// The service's maintained result tracks recompute-after-every-update
    /// (`Match` *and* the naive fixpoint) through a random update stream,
    /// and its delta stream folds back to the final result.
    #[test]
    fn service_tracks_recompute_after_every_update(
        seed in 0u64..5_000,
        updates in 5usize..25,
        psize in 2usize..5,
    ) {
        let g = labelled_graph(40, 110, 4, seed);
        let (p, _) = generate_pattern(&g, &PatternGenConfig::new(psize, psize, 3).with_seed(seed ^ 0x51));
        let np = p.node_count();

        let mut svc = MatchService::new(g.clone());
        let q = svc.register(p.clone());
        let sub = svc.subscribe(q).unwrap();

        let stream = random_updates(&g, &UpdateStreamConfig::mixed(updates).with_seed(seed + 13));
        for u in &stream {
            svc.apply_one(*u);

            // Recompute from scratch on the service's own (updated) graph.
            let rebuilt = DistanceMatrix::build(svc.graph());
            for x in (0..svc.graph().node_count() as u32).map(gpm::NodeId::new) {
                for y in (0..svc.graph().node_count() as u32).map(gpm::NodeId::new) {
                    prop_assert_eq!(
                        svc.oracle().nonempty_distance(svc.graph(), x, y),
                        rebuilt.nonempty_distance(x, y),
                        "maintained oracle diverged at ({:?}, {:?})", x, y
                    );
                }
            }
            let recomputed = bounded_simulation_with_oracle(&p, svc.graph(), &rebuilt);
            let naive = bounded_simulation_naive_with_oracle(&p, svc.graph(), &rebuilt);
            prop_assert_eq!(&recomputed.relation, &naive.relation, "Match ≠ naive mid-stream");
            prop_assert_eq!(
                &svc.result(q).unwrap(),
                &recomputed.relation,
                "service result ≠ recompute after update {}", u
            );
        }

        // The emitted delta stream folds to the final result.
        let folded = fold_deltas(np, sub.drain().iter());
        prop_assert_eq!(folded, svc.result(q).unwrap());
    }

    /// Batched application agrees with unit-at-a-time application: same
    /// final result, same folded delta stream.
    #[test]
    fn service_batches_equal_unit_updates(
        seed in 0u64..5_000,
        updates in 4usize..20,
        batch in 2usize..6,
    ) {
        let g = labelled_graph(35, 90, 4, seed);
        let (p, _) = generate_pattern(&g, &PatternGenConfig::new(3, 3, 3).with_seed(seed ^ 0x77));
        let np = p.node_count();
        let stream = random_updates(&g, &UpdateStreamConfig::mixed(updates).with_seed(seed + 29));

        let mut unit = MatchService::new(g.clone());
        let qu = unit.register(p.clone());
        let unit_sub = unit.subscribe(qu).unwrap();
        for u in &stream {
            unit.apply_one(*u);
        }

        let mut batched = MatchService::new(g);
        let qb = batched.register(p);
        let batched_sub = batched.subscribe(qb).unwrap();
        for chunk in stream.chunks(batch) {
            batched.apply(chunk);
        }

        prop_assert_eq!(unit.result(qu).unwrap(), batched.result(qb).unwrap());
        prop_assert_eq!(unit.graph().edge_count(), batched.graph().edge_count());
        let unit_folded = fold_deltas(np, unit_sub.drain().iter());
        let batched_folded = fold_deltas(np, batched_sub.drain().iter());
        prop_assert_eq!(unit_folded, batched_folded);
    }
}
