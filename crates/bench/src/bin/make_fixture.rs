//! Regenerates the checked-in `fixtures/` mini-dataset.
//!
//! The fixture is a ~200-node YouTube-shaped graph (the `Dataset::YouTube`
//! generator at a tiny scale) exported in the on-disk attributed-dataset
//! format (`mini-youtube.edges` + `mini-youtube.attrs`). Generation is
//! deterministic — the vendored RNG produces the same stream on every
//! machine — so re-running this binary must reproduce the committed files
//! byte for byte; CI diffs the two to keep the fixture and the
//! writer/loader honest.
//!
//! ```bash
//! cargo run --release -p gpm-bench --bin make_fixture -- --dir fixtures
//! ```

use gpm::{export_dataset, Dataset};
use std::path::PathBuf;

/// `Dataset::YouTube.generate` at this scale yields exactly 200 nodes
/// (round(14829 × 0.0135)) and 795 edges — small enough to commit, big
/// enough for the smoke experiments to find matches.
const FIXTURE_SCALE: f64 = 0.0135;
const FIXTURE_SEED: u64 = 2010;
const FIXTURE_NAME: &str = "mini-youtube";

fn main() {
    let mut dir = PathBuf::from("fixtures");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(value) => dir = PathBuf::from(value),
                None => exit_usage("missing value for --dir"),
            },
            "--help" | "-h" => exit_usage("usage: make_fixture [--dir <path>]"),
            other => exit_usage(&format!("unknown argument `{other}`")),
        }
    }

    let graph = Dataset::YouTube.generate(FIXTURE_SCALE, FIXTURE_SEED);
    match export_dataset(&dir, FIXTURE_NAME, &graph) {
        Ok((edges_path, attrs_path)) => {
            println!(
                "wrote {} ({} nodes) and {} ({} edges)",
                attrs_path.display(),
                graph.node_count(),
                edges_path.display(),
                graph.edge_count()
            );
        }
        Err(e) => {
            eprintln!("failed to export fixture: {e}");
            std::process::exit(1);
        }
    }
}

fn exit_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
