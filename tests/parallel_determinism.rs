//! Determinism suite for the `gpm-exec` parallel runtime.
//!
//! The contract under test: every ported hot path — `Match`, `IncMatch`,
//! matrix construction/maintenance, candidate computation — produces
//! **bit-identical** output at any thread count, because all merges happen
//! in a fixed (task-index) order. The policies below set
//! `sequential_threshold(0)` so even these test-sized graphs genuinely
//! exercise the threaded machinery rather than the inline fallback.

use gpm::datagen::{powerlaw_graph, PowerLawConfig};
use gpm::exec::{Executor, Parallelism};
use gpm::{
    bounded_simulation_with_oracle, bounded_simulation_with_oracle_on, inc_match_with,
    random_updates, DataGraph, DistanceMatrix, MatchState, PatternGraph, UpdateStreamConfig,
};
use gpm::{generate_pattern, PatternGenConfig};
use proptest::prelude::*;

/// The thread counts every path is checked at (1 = inline passthrough).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn forced_executor(threads: usize) -> Executor {
    Executor::new(Parallelism::new(threads).with_sequential_threshold(0))
}

/// A labelled power-law graph: the generator leaves attributes empty, so
/// labels `a0..a<k>` are assigned round-robin for the pattern predicates to
/// bite on.
fn labelled_powerlaw(nodes: usize, edges: usize, labels: usize, seed: u64) -> DataGraph {
    let mut g = powerlaw_graph(&PowerLawConfig::new(nodes, edges).with_seed(seed));
    for v in 0..g.node_count() {
        let label = format!("a{}", v % labels);
        g.attributes_mut(gpm::NodeId::new(v as u32))
            .set("label", label);
    }
    g
}

fn pattern_for(g: &DataGraph, size: usize, seed: u64) -> PatternGraph {
    generate_pattern(g, &PatternGenConfig::new(size, size, 3).with_seed(seed)).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `Match` returns the same `MatchOutcome` — relation *and* stats — at
    /// every thread count, on random power-law graphs and patterns.
    #[test]
    fn match_is_bit_identical_across_thread_counts(
        seed in 0u64..10_000,
        nodes in 30usize..120,
        psize in 2usize..6,
    ) {
        let g = labelled_powerlaw(nodes, nodes * 3, 5, seed);
        let p = pattern_for(&g, psize, seed ^ 0xfeed);
        let matrix = DistanceMatrix::build(&g);
        let baseline = bounded_simulation_with_oracle_on(&p, &g, &matrix, &Executor::sequential());
        for threads in THREAD_COUNTS {
            let out = bounded_simulation_with_oracle_on(&p, &g, &matrix, &forced_executor(threads));
            prop_assert_eq!(&out, &baseline, "Match diverged at {} threads", threads);
        }
        // The default-policy entry point agrees as well.
        prop_assert_eq!(&bounded_simulation_with_oracle(&p, &g, &matrix), &baseline);
    }

    /// `IncMatch` (matrix, match state and the AFF1/AFF2 report) is
    /// identical at every thread count for mixed update batches.
    #[test]
    fn incmatch_is_bit_identical_across_thread_counts(
        seed in 0u64..5_000,
        batch in 5usize..30,
    ) {
        let g0 = labelled_powerlaw(40, 120, 4, seed);
        // DAG pattern requirement: keep regenerating until acyclic.
        let p = (0..20u64)
            .map(|i| pattern_for(&g0, 4, seed * 31 + i))
            .find(|p| p.is_dag());
        let Some(p) = p else {
            return Ok(()); // no DAG pattern for this seed; nothing to test
        };
        let updates = random_updates(&g0, &UpdateStreamConfig::mixed(batch).with_seed(seed + 7));

        let mut reference = None;
        for threads in THREAD_COUNTS {
            let exec = forced_executor(threads);
            let mut g = g0.clone();
            let mut m = DistanceMatrix::build(&g);
            let mut s = MatchState::initialise_with(&p, &g, &m, &exec);
            let out = inc_match_with(&p, &mut g, &mut m, &mut s, &updates, &exec).unwrap();
            let snapshot = (out, m, s.relation());
            match &reference {
                None => reference = Some(snapshot),
                Some(expected) => {
                    prop_assert_eq!(&snapshot.0, &expected.0, "outcome diverged at {} threads", threads);
                    prop_assert_eq!(&snapshot.1, &expected.1, "matrix diverged at {} threads", threads);
                    prop_assert_eq!(&snapshot.2, &expected.2, "relation diverged at {} threads", threads);
                }
            }
        }
    }

    /// Parallel matrix construction equals the sequential build.
    #[test]
    fn matrix_build_is_identical_across_thread_counts(
        seed in 0u64..10_000,
        nodes in 2usize..80,
    ) {
        let g = labelled_powerlaw(nodes, nodes * 4, 3, seed);
        let baseline = DistanceMatrix::build_with(&g, &Executor::sequential());
        for threads in THREAD_COUNTS {
            let m = DistanceMatrix::build_with(&g, &forced_executor(threads));
            prop_assert_eq!(&m, &baseline, "matrix diverged at {} threads", threads);
        }
    }

    /// Candidate sets (gpm-iso) are identical at every thread count.
    #[test]
    fn candidate_sets_are_identical_across_thread_counts(
        seed in 0u64..10_000,
        nodes in 10usize..80,
    ) {
        use gpm::iso::CandidateSets;
        let g = labelled_powerlaw(nodes, nodes * 3, 4, seed);
        let p = pattern_for(&g, 4, seed ^ 0xbeef);
        let baseline = CandidateSets::compute_with(&p, &g, &Executor::sequential());
        for threads in THREAD_COUNTS {
            let c = CandidateSets::compute_with(&p, &g, &forced_executor(threads));
            for u in p.node_ids() {
                prop_assert_eq!(c.of(u), baseline.of(u), "candidates diverged at {} threads", threads);
            }
        }
    }
}

/// The 2-hop labeling's parallel diagonal pass agrees with the sequential
/// build (the landmark loop itself is order-dependent and stays
/// sequential, so distances are the invariant to check).
#[test]
fn two_hop_diagonal_is_identical_across_thread_counts() {
    use gpm::distance::TwoHopIndex;
    let g = labelled_powerlaw(150, 600, 4, 7);
    let baseline = TwoHopIndex::build_with(&g, &Executor::sequential());
    for threads in THREAD_COUNTS {
        let idx = TwoHopIndex::build_with(&g, &forced_executor(threads));
        assert_eq!(idx.label_entries(), baseline.label_entries());
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    idx.nonempty_distance(x, y),
                    baseline.nonempty_distance(x, y),
                    "2-hop diverged at {threads} threads for ({x}, {y})"
                );
            }
        }
    }
}

/// A fixed-seed smoke check that parallel `Match` agrees with sequential on
/// a graph large enough to pass the *default* sequential threshold, so the
/// default-policy path is exercised end to end too.
#[test]
fn default_policy_match_agrees_on_larger_graph() {
    let g = labelled_powerlaw(600, 2_400, 6, 42);
    let p = pattern_for(&g, 6, 43);
    let matrix = DistanceMatrix::build(&g);
    let sequential = bounded_simulation_with_oracle_on(&p, &g, &matrix, &Executor::sequential());
    for threads in THREAD_COUNTS {
        let exec = Executor::new(Parallelism::new(threads)); // default threshold
        let out = bounded_simulation_with_oracle_on(&p, &g, &matrix, &exec);
        assert_eq!(out, sequential, "diverged at {threads} threads");
    }
}
