//! Where an experiment's data graph comes from: generated or loaded from
//! disk.
//!
//! The benchmark harness historically ran every experiment on the synthetic
//! stand-ins of [`Dataset`]. Real crawls (downloaded SNAP files plus an
//! attribute CSV, see [`gpm_graph::dataset`]) are the other half of the
//! paper's evaluation; [`DatasetSource`] abstracts over both so a binary can
//! consume either with one code path:
//!
//! ```
//! use gpm_datagen::{Dataset, DatasetSource};
//!
//! let source = DatasetSource::Synthetic(Dataset::PBlog);
//! let g = source.load(0.05, 7).unwrap();
//! assert_eq!(source.name(), "PBlog");
//! assert!(g.node_count() > 0);
//! ```

use crate::datasets::Dataset;
use gpm_graph::dataset::{load_dataset, EDGES_EXT};
use gpm_graph::{DataGraph, GraphError};
use std::path::{Path, PathBuf};

/// A named source of experiment data graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatasetSource {
    /// One of the paper's simulated stand-ins, generated at a scale/seed.
    Synthetic(Dataset),
    /// An on-disk dataset `<dir>/<name>.edges` (+ optional `<name>.attrs`)
    /// in the attributed-dataset format of [`gpm_graph::dataset`].
    OnDisk {
        /// Directory holding the dataset files.
        dir: PathBuf,
        /// Dataset name (the files' stem).
        name: String,
    },
}

impl DatasetSource {
    /// The dataset's display name (`YouTube` / the on-disk file stem).
    pub fn name(&self) -> String {
        match self {
            DatasetSource::Synthetic(d) => d.to_string(),
            DatasetSource::OnDisk { name, .. } => name.clone(),
        }
    }

    /// Whether this source generates its graph (as opposed to loading it).
    pub fn is_synthetic(&self) -> bool {
        matches!(self, DatasetSource::Synthetic(_))
    }

    /// One-line provenance description for experiment headers.
    pub fn describe(&self, scale: f64) -> String {
        match self {
            DatasetSource::Synthetic(d) => format!("synthetic {d} (scale {scale})"),
            DatasetSource::OnDisk { dir, name } => {
                format!("on-disk {} ({})", name, dir.display())
            }
        }
    }

    /// Loads (or generates) the data graph.
    ///
    /// `scale`/`seed` parameterize synthetic generation; an on-disk dataset
    /// always loads at its full recorded size, so both are ignored for
    /// [`DatasetSource::OnDisk`].
    pub fn load(&self, scale: f64, seed: u64) -> Result<DataGraph, GraphError> {
        match self {
            DatasetSource::Synthetic(d) => Ok(d.generate(scale, seed)),
            DatasetSource::OnDisk { dir, name } => Ok(load_dataset(dir, name)?.graph),
        }
    }

    /// Discovers every on-disk dataset in `dir` (each `*.edges` file is
    /// one), sorted by name for deterministic iteration order.
    pub fn discover(dir: &Path) -> Result<Vec<DatasetSource>, GraphError> {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| GraphError::Parse(format!("{}: {e}", dir.display())))?;
        let mut sources = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| GraphError::Parse(format!("{}: {e}", dir.display())))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EDGES_EXT) {
                continue;
            }
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                sources.push(DatasetSource::OnDisk {
                    dir: dir.to_path_buf(),
                    name: stem.to_string(),
                });
            }
        }
        sources.sort_by_key(|s| s.name());
        Ok(sources)
    }
}

impl std::fmt::Display for DatasetSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::export_dataset;

    #[test]
    fn synthetic_source_generates() {
        let source = DatasetSource::Synthetic(Dataset::YouTube);
        assert_eq!(source.name(), "YouTube");
        assert!(source.is_synthetic());
        assert!(source.describe(0.1).contains("synthetic"));
        let g = source.load(0.01, 3).unwrap();
        assert_eq!(
            g.node_count(),
            Dataset::YouTube.generate(0.01, 3).node_count()
        );
    }

    #[test]
    fn discover_and_load_on_disk() {
        let dir = std::env::temp_dir().join(format!("gpm-source-test-{}", std::process::id()));
        let g = Dataset::PBlog.generate(0.02, 11);
        export_dataset(&dir, "pblog-mini", &g).unwrap();
        // A stray non-dataset file must not be discovered.
        std::fs::write(dir.join("README.txt"), "not a dataset").unwrap();

        let sources = DatasetSource::discover(&dir).unwrap();
        assert_eq!(sources.len(), 1);
        let source = &sources[0];
        assert_eq!(source.name(), "pblog-mini");
        assert!(!source.is_synthetic());
        assert!(source.describe(1.0).contains("on-disk"));

        // scale/seed are ignored for on-disk sources: full recorded size.
        let loaded = source.load(0.000_1, 999).unwrap();
        assert_eq!(loaded.node_count(), g.node_count());
        assert_eq!(loaded.edge_count(), g.edge_count());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn discover_missing_dir_errors() {
        let err = DatasetSource::discover(Path::new("/nonexistent-gpm-dir")).unwrap_err();
        assert!(err.to_string().contains("nonexistent"), "{err}");
    }
}
