//! `svc_continuous` — the continuous multi-pattern service under a shared
//! update stream: N registered patterns × U update batches, versus N
//! independent `IncrementalMatcher`s fed the same stream.
//!
//! The point under measurement is **shared-AFF amortisation**: the service
//! maintains one graph + one distance matrix and computes the affected area
//! (`UpdateBM`) once per batch, where N independent matchers each maintain
//! their own copies and compute it N times. The table reports both wall
//! clock and the affected-area computation counts, and cross-checks that
//! every service query's result equals its independent matcher's.
//!
//! A second table reports **per-batch apply latency** over a longer scripted
//! stream — exact nearest-rank p50/p99/p999 plus the oracle's rebuild count
//! and resident size. With `--obs` the `gpm-obs` registry report follows the
//! tables, and `--obs-out <path>` streams JSONL (self-checked: every line
//! must parse).

use gpm::{
    random_updates, EdgeUpdate, IncrementalMatcher, MatchService, PatternGraph, UpdateStreamConfig,
};
use gpm_bench::{
    dag_pattern, fmt_ms, load_source_or_exit, percentile_exact, time, HarnessArgs, Table,
};
use std::time::Duration;

/// Pre-generates `batches` update batches of `batch_size` updates each
/// against an evolving copy of the graph, so every run replays the exact
/// same stream.
fn scripted_batches(
    graph: &gpm::DataGraph,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<EdgeUpdate>> {
    let mut scratch = graph.clone();
    let mut script = Vec::with_capacity(batches);
    for round in 0..batches {
        let updates = random_updates(
            &scratch,
            &UpdateStreamConfig::mixed(batch_size).with_seed(seed + round as u64),
        );
        for u in &updates {
            u.apply(&mut scratch);
        }
        script.push(updates);
    }
    script
}

fn main() {
    let args = HarnessArgs::from_env();
    let source = args.update_source_or_exit();
    let graph = load_source_or_exit(&source, &args);
    let parallelism = args.parallelism();

    let batches = 8usize;
    let batch_size = args.scaled(100).min(100);
    println!(
        "{}: |V| = {}, |E| = {}, {} batches x {} updates, {} threads [{}]\n",
        source.name(),
        graph.node_count(),
        graph.edge_count(),
        batches,
        batch_size,
        parallelism.threads(),
        source.describe(args.scale)
    );

    let script = scripted_batches(&graph, batches, batch_size, args.seed + 77);

    let mut table = Table::new(
        "svc_continuous: shared incremental maintenance vs independent matchers",
        &[
            "K queries",
            "service (ms)",
            "K matchers (ms)",
            "service AFF comps",
            "independent AFF comps",
            "AFF amortisation",
            "agree",
        ],
    );

    for k in [2usize, 4, 8, 16] {
        let patterns: Vec<PatternGraph> = (0..k)
            .map(|i| dag_pattern(&graph, 4, 4, 3, args.seed + i as u64 * 131))
            .collect();

        // Continuous service: one graph, one matrix, K registered queries.
        let mut svc = MatchService::with_parallelism(graph.clone(), parallelism.clone());
        let ids: Vec<_> = patterns.iter().map(|p| svc.register(p.clone())).collect();
        let (_, svc_time) = time(|| {
            for batch in &script {
                svc.apply(batch);
            }
        });
        let svc_affs = svc.stats().aff_computations;

        // Baseline: K fully independent incremental matchers.
        let mut matchers: Vec<IncrementalMatcher> = patterns
            .iter()
            .map(|p| {
                IncrementalMatcher::with_parallelism(p.clone(), graph.clone(), parallelism.clone())
            })
            .collect();
        // Count the baseline's affected-area computations the same way the
        // service counts its own: one per (matcher, batch) whose updates
        // touched the distance matrix.
        let mut ind_affs = 0usize;
        let (_, ind_time) = time(|| {
            for batch in &script {
                for m in matchers.iter_mut() {
                    let outcome = m.apply_batch(batch).expect("DAG pattern");
                    if !outcome.aff1.is_empty() {
                        ind_affs += 1;
                    }
                }
            }
        });

        let agree = ids
            .iter()
            .zip(&matchers)
            .all(|(&id, m)| svc.result(id).unwrap() == m.relation());

        table.row(vec![
            k.to_string(),
            fmt_ms(svc_time),
            fmt_ms(ind_time),
            svc_affs.to_string(),
            ind_affs.to_string(),
            format!("{:.1}x", ind_affs as f64 / svc_affs.max(1) as f64),
            agree.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nThe service computes the shared affected area once per batch; K independent\n\
         matchers compute it K times. The `AFF amortisation` column is exactly K when\n\
         every batch touches the matrix; wall-clock follows on update-dominated loads."
    );

    // Per-batch apply latency over a longer stream (BENCHMARKS.md batch 7).
    // Exact nearest-rank percentiles from the full sample; the oracle
    // columns surface `DistanceOracle::rebuilds`/`memory_bytes` so backend
    // degradation (2-hop rebuild storms, matrix growth) shows up next to
    // the latencies it causes.
    let lat_batches = 40usize;
    let lat_script = scripted_batches(&graph, lat_batches, batch_size, args.seed + 177);
    let mut latency = Table::new(
        format!("svc_continuous: per-batch apply latency ({lat_batches} batches)"),
        &[
            "K queries",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "max (ms)",
            "oracle rebuilds",
            "oracle mem (MiB)",
        ],
    );
    for k in [2usize, 4, 8, 16] {
        let patterns: Vec<PatternGraph> = (0..k)
            .map(|i| dag_pattern(&graph, 4, 4, 3, args.seed + i as u64 * 131))
            .collect();
        let mut svc = MatchService::with_parallelism(graph.clone(), parallelism.clone());
        for p in &patterns {
            svc.register(p.clone());
        }
        let mut samples: Vec<Duration> = Vec::with_capacity(lat_batches);
        for batch in &lat_script {
            let (_, d) = time(|| svc.apply(batch));
            samples.push(d);
        }
        latency.row(vec![
            k.to_string(),
            fmt_ms(percentile_exact(&samples, 0.50)),
            fmt_ms(percentile_exact(&samples, 0.99)),
            fmt_ms(percentile_exact(&samples, 0.999)),
            fmt_ms(samples.iter().max().copied().unwrap_or_default()),
            svc.oracle().rebuilds().to_string(),
            format!(
                "{:.1}",
                svc.oracle().memory_bytes() as f64 / (1024.0 * 1024.0)
            ),
        ]);
    }
    println!();
    latency.print();

    if args.obs {
        // The registry accumulated across every run above; the service
        // scope's `batch_ns` histogram is the log-bucketed counterpart of
        // the exact table (≤ 1/16 relative error).
        println!("\n{}", gpm::obs::registry().report());
        if let Some(path) = &args.obs_out {
            gpm::obs::registry().export_snapshot();
            let lines = gpm_bench::obs_jsonl_check_or_exit(path);
            println!("obs JSONL OK ({lines} lines, {})", path.display());
        }
    }
}
