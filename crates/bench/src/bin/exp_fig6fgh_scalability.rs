//! Figs. 6(f), 6(g), 6(h) — scalability of Match / 2-hop / BFS on synthetic
//! graphs with |V| = 20K and |E| ∈ {20K, 40K, 60K}, for patterns
//! P(|Vp|, |Ep|, 3) with |Vp| = |Ep| = 4..10.
//!
//! `--threads <n>` pins the parallel runtime to `n` workers (0 = process
//! default); running the binary at 1, 2, 4, 8 sweeps the core-scaling curves
//! for BENCHMARKS.md. A per-figure thread-scaling table for `Match` on the
//! matrix oracle is printed as well, so a single invocation on a
//! multi-core machine records the sweep.

use gpm::{
    bounded_simulation_with_oracle_on, random_graph, BfsOracle, Executor, Parallelism,
    RandomGraphConfig, TwoHopOracle,
};
use gpm_bench::{fmt_ms, patterns_for, time, HarnessArgs, Subject, Table};
use std::time::Duration;

fn main() {
    let args = HarnessArgs::from_env();
    let nodes = args.scaled(20_000);
    let exec = Executor::new(args.parallelism());

    for (figure, paper_edges) in [("6(f)", 20_000usize), ("6(g)", 40_000), ("6(h)", 60_000)] {
        let edges = args.scaled(paper_edges);
        let graph = random_graph(
            &RandomGraphConfig::new(nodes, edges, (nodes / 10).max(4)).with_seed(args.seed),
        );
        let subject = Subject::with_parallelism(graph, exec.parallelism().clone());
        let (two_hop, label_time) = time(|| TwoHopOracle::build_with(&subject.graph, &exec));
        eprintln!(
            "fig {figure}: |V| = {}, |E| = {}, matrix {} ms, 2-hop labels {} ms",
            subject.graph.node_count(),
            subject.graph.edge_count(),
            fmt_ms(subject.matrix_build_time),
            fmt_ms(label_time)
        );

        let mut table = Table::new(
            format!(
                "Fig. {figure}: |V| = {} |E| = {} — elapsed time (ms, avg per pattern)",
                subject.graph.node_count(),
                subject.graph.edge_count()
            ),
            &["pattern", "Match", "2-hop", "BFS"],
        );
        for size in (4..=10usize).step_by(2) {
            let patterns = patterns_for(
                &subject.graph,
                size,
                size,
                3,
                args.patterns,
                args.seed + size as u64,
            );
            let mut t_matrix = Duration::ZERO;
            let mut t_two_hop = Duration::ZERO;
            let mut t_bfs = Duration::ZERO;
            for pattern in &patterns {
                let (_, t) = time(|| {
                    bounded_simulation_with_oracle_on(
                        pattern,
                        &subject.graph,
                        &subject.matrix,
                        &exec,
                    )
                });
                t_matrix += t;
                let (_, t) = time(|| {
                    bounded_simulation_with_oracle_on(pattern, &subject.graph, &two_hop, &exec)
                });
                t_two_hop += t;
                let bfs = BfsOracle::new();
                let (_, t) = time(|| {
                    bounded_simulation_with_oracle_on(pattern, &subject.graph, &bfs, &exec)
                });
                t_bfs += t;
            }
            let n = patterns.len() as u32;
            table.row(vec![
                format!("P({size},{size},3)"),
                fmt_ms(t_matrix / n),
                fmt_ms(t_two_hop / n),
                fmt_ms(t_bfs / n),
            ]);
        }
        table.print();

        // Thread-scaling sweep: Match (matrix oracle, prebuilt matrix) on
        // the largest pattern size, at 1/2/4/8 workers. Outputs are
        // asserted bit-identical across thread counts.
        let sweep_patterns = patterns_for(&subject.graph, 10, 10, 3, args.patterns, args.seed + 10);
        let mut sweep = Table::new(
            format!("Fig. {figure}: Match thread scaling, P(10,10,3) (ms, avg per pattern)"),
            &["threads", "Match process", "matrix build"],
        );
        let baseline: Vec<_> = sweep_patterns
            .iter()
            .map(|p| {
                bounded_simulation_with_oracle_on(
                    p,
                    &subject.graph,
                    &subject.matrix,
                    &Executor::sequential(),
                )
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let texec = Executor::new(Parallelism::new(threads));
            let (matrix_t, build_t) =
                time(|| gpm::DistanceMatrix::build_with(&subject.graph, &texec));
            assert_eq!(matrix_t, subject.matrix, "parallel matrix build diverged");
            let mut t_total = Duration::ZERO;
            for (pattern, expected) in sweep_patterns.iter().zip(&baseline) {
                let (out, t) = time(|| {
                    bounded_simulation_with_oracle_on(
                        pattern,
                        &subject.graph,
                        &subject.matrix,
                        &texec,
                    )
                });
                assert_eq!(
                    &out, expected,
                    "parallel Match diverged at {threads} threads"
                );
                t_total += t;
            }
            sweep.row(vec![
                threads.to_string(),
                fmt_ms(t_total / sweep_patterns.len() as u32),
                fmt_ms(build_t),
            ]);
        }
        sweep.print();
    }
    println!(
        "paper reference: Match is fastest everywhere and insensitive to |E| (constant-time\n\
         distance checks); 2-hop helps at |E| = 20K but fades as the graph gets denser."
    );
}
