//! Criterion micro-benchmarks for the distance substrate: matrix
//! construction (sequential vs parallel), 2-hop label construction, and
//! incremental maintenance vs full rebuild for unit updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm::distance::update_matrix;
use gpm::{random_graph, DistanceMatrix, EdgeUpdate, NodeId, RandomGraphConfig, TwoHopIndex};

fn bench_matrix_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance/matrix-build");
    group.sample_size(10);
    for nodes in [500usize, 1_500] {
        let graph = random_graph(&RandomGraphConfig::new(nodes, nodes * 3, 20).with_seed(3));
        group.bench_with_input(BenchmarkId::new("sequential", nodes), &graph, |b, g| {
            b.iter(|| DistanceMatrix::build(g));
        });
        group.bench_with_input(BenchmarkId::new("parallel", nodes), &graph, |b, g| {
            b.iter(|| DistanceMatrix::build_parallel(g, 4));
        });
    }
    group.finish();
}

fn bench_two_hop_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance/two-hop-build");
    group.sample_size(10);
    for nodes in [500usize, 1_500] {
        let graph = random_graph(&RandomGraphConfig::new(nodes, nodes * 3, 20).with_seed(4));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &graph, |b, g| {
            b.iter(|| TwoHopIndex::build(g));
        });
    }
    group.finish();
}

fn bench_incremental_vs_rebuild(c: &mut Criterion) {
    let nodes = 1_000usize;
    let graph = random_graph(&RandomGraphConfig::new(nodes, nodes * 3, 20).with_seed(5));
    let matrix = DistanceMatrix::build(&graph);
    // A fresh edge to insert and an existing edge to delete.
    let insert = {
        let mut found = None;
        'outer: for a in 0..nodes as u32 {
            for b in 0..nodes as u32 {
                if !graph.has_edge(NodeId::new(a), NodeId::new(b)) {
                    found = Some((NodeId::new(a), NodeId::new(b)));
                    break 'outer;
                }
            }
        }
        found.unwrap()
    };
    let delete = graph.edges().next().unwrap();

    let mut group = c.benchmark_group("distance/unit-update");
    group.sample_size(10);
    group.bench_function("UpdateM insert", |b| {
        b.iter(|| {
            let mut g = graph.clone();
            let mut m = matrix.clone();
            let u = EdgeUpdate::Insert(insert.0, insert.1);
            u.apply(&mut g);
            update_matrix(&g, &mut m, u)
        });
    });
    group.bench_function("UpdateM delete", |b| {
        b.iter(|| {
            let mut g = graph.clone();
            let mut m = matrix.clone();
            let u = EdgeUpdate::Delete(delete.0, delete.1);
            u.apply(&mut g);
            update_matrix(&g, &mut m, u)
        });
    });
    group.bench_function("full rebuild", |b| {
        b.iter(|| DistanceMatrix::build(&graph));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matrix_build,
    bench_two_hop_build,
    bench_incremental_vs_rebuild
);
criterion_main!(benches);
