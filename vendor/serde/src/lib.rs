//! Vendored, minimal serialization framework (offline stand-in for `serde`).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small serde surface the workspace needs: `#[derive(Serialize,
//! Deserialize)]` plus impls for the std types used in graph structures.
//!
//! Instead of serde's visitor-based data model, everything round-trips
//! through one concrete intermediate [`Value`] tree; `serde_json` renders
//! that tree to/from JSON text. The derive macros generate the same external
//! JSON shape as real serde's defaults: structs as objects, newtype structs
//! transparently, unit enum variants as strings and payload variants as
//! single-key objects, maps as objects with stringified keys.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate tree every serializable value passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number without fractional part.
    Int(i64),
    /// JSON number with fractional part or exponent.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, in insertion order.
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error: a plain message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "array",
        Value::Map(_) => "object",
    }
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", type_name(got)))
}

impl Value {
    /// Builds the value of a unit enum variant (`"Name"`).
    pub fn unit_variant(name: &str) -> Value {
        Value::Str(name.to_string())
    }

    /// Builds the value of a newtype enum variant (`{"Name": payload}`).
    pub fn newtype_variant(name: &str, payload: Value) -> Value {
        Value::Map(vec![(name.to_string(), payload)])
    }

    /// Builds the value of a tuple enum variant (`{"Name": [fields...]}`).
    pub fn tuple_variant(name: &str, fields: Vec<Value>) -> Value {
        Value::Map(vec![(name.to_string(), Value::Seq(fields))])
    }

    /// Builds the value of a struct enum variant (`{"Name": {fields...}}`).
    pub fn struct_variant(name: &str, fields: Vec<(String, Value)>) -> Value {
        Value::Map(vec![(name.to_string(), Value::Map(fields))])
    }

    /// Splits an enum value into `(variant_name, payload)`.
    ///
    /// Returns `None` if the value has neither the string form (unit
    /// variants) nor the single-key-object form (payload variants).
    pub fn as_variant(&self) -> Option<(&str, Option<&Value>)> {
        match self {
            Value::Str(name) => Some((name.as_str(), None)),
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            _ => None,
        }
    }

    /// Looks up a struct field, treating a missing key as `null` (so
    /// `Option` fields tolerate omission). Errors if `self` is not an
    /// object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        static NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(unexpected("object", other)),
        }
    }

    /// Interprets the value as an array of exactly `n` elements.
    pub fn tuple(&self, n: usize) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => Err(Error::custom(format!(
                "expected array of {n} elements, found {}",
                items.len()
            ))),
            other => Err(unexpected("array", other)),
        }
    }
}

// Identity impls, mirroring real serde_json's `Value`: parsing arbitrary
// JSON into a `Value` (and re-serializing it) just clones the tree.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the intermediate tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting shape/type mismatches as [`Error`]s.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! impl_integer {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)
                        ))),
                    other => Err(unexpected("integer", other)),
                }
            }
        }
    )*};
}

impl_integer!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(unexpected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(T::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(T::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.tuple(0 $(+ { let _ = $idx; 1 })+)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Converts a serialized key to the string form JSON objects require.
///
/// Like `serde_json`, integer keys become their decimal representation; other
/// non-string keys are rejected.
fn key_to_string(key: Value) -> Result<String, Error> {
    match key {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must be a string or integer, found {}",
            type_name(&other)
        ))),
    }
}

/// Re-interprets a stringified map key for the key type to consume: decimal
/// strings turn back into integers, everything else stays a string.
fn key_from_string(key: &str) -> Value {
    match key.parse::<i64>() {
        Ok(i) => Value::Int(i),
        Err(_) => Value::Str(key.to_string()),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.to_value()).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        // HashMap iteration order is unstable; sort for canonical output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("object", other)),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(k.to_value()).expect("unsupported map key type");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&key_from_string(k))?, V::from_value(v)?)))
                .collect(),
            other => Err(unexpected("object", other)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(T::to_value).collect();
        // HashSet iteration order is unstable; sort the rendered items for
        // canonical output (cheap: sets here are small or serialization is
        // not on a hot path).
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&2.5f64.to_value()), Ok(2.5));
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn option_tolerates_null_and_missing() {
        assert_eq!(Option::<String>::from_value(&Value::Null), Ok(None));
        let obj = Value::Map(vec![]);
        assert_eq!(
            Option::<String>::from_value(obj.field("absent").unwrap()),
            Ok(None)
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u32, String)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert(7u32, vec![1u8, 2]);
        let back = HashMap::<u32, Vec<u8>>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let mut s = HashSet::new();
        s.insert((1u32, 2u32));
        let back = HashSet::<(u32, u32)>::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn variant_helpers() {
        let unit = Value::unit_variant("Unbounded");
        assert_eq!(unit.as_variant(), Some(("Unbounded", None)));
        let newtype = Value::newtype_variant("Hops", Value::Int(3));
        assert_eq!(newtype.as_variant(), Some(("Hops", Some(&Value::Int(3)))));
        assert_eq!(Value::Seq(vec![]).as_variant(), None);
    }
}
