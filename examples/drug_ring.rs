//! Example 1.1 of the paper: identifying a drug-trafficking organisation.
//!
//! The pattern `P0` describes a boss (B) overseeing assistant managers (AM)
//! who supervise field workers (FW) up to 3 levels deep; the boss also talks
//! to the top-level workers through a secretary (S). Subgraph isomorphism
//! cannot find this community (AM and S must map to the *same* person, AM
//! maps to *many* people, and supervision spans *paths*, not edges) — bounded
//! simulation finds it in polynomial time.
//!
//! Run with `cargo run -p gpm --example drug_ring`.

use gpm::{
    bounded_simulation, subgraph_isomorphism_vf2, Attributes, CmpOp, DataGraph, EdgeBound,
    IsoConfig, PatternGraph, Predicate, ResultGraph,
};

/// Builds the drug ring G0: a boss, `m` assistant managers (the last one also
/// acting as the secretary), and chains of field workers reporting upward.
fn build_g0(m: usize) -> DataGraph {
    let mut g = DataGraph::new();
    let boss = g.add_node(Attributes::labeled("B").with("name", "boss"));
    let mut ams = Vec::new();
    for i in 0..m {
        let mut attrs = Attributes::labeled("AM").with("name", format!("A{}", i + 1));
        if i == m - 1 {
            attrs.set("secretary", true);
        }
        let am = g.add_node(attrs);
        g.add_edge(boss, am).unwrap();
        ams.push(am);
    }
    let mut first_worker = None;
    for (i, &am) in ams.iter().enumerate() {
        let depth = if i % 2 == 0 { 3 } else { 2 };
        let mut prev = am;
        for level in 0..depth {
            let w = g.add_node(Attributes::labeled("FW").with("name", format!("W{i}-{level}")));
            g.add_edge(prev, w).unwrap();
            if first_worker.is_none() {
                first_worker = Some(w);
            }
            prev = w;
        }
        // The deepest worker reports back to the AM.
        g.add_edge(prev, am).unwrap();
    }
    // The secretary relays messages to a top-level field worker directly.
    g.add_edge(*ams.last().unwrap(), first_worker.unwrap())
        .unwrap();
    g
}

/// Builds the pattern P0 of Fig. 1.
fn build_p0() -> PatternGraph {
    let mut p = PatternGraph::new();
    let b = p.add_named_node("B", Predicate::label("B"));
    let am = p.add_named_node("AM", Predicate::label("AM"));
    let s = p.add_named_node(
        "S",
        Predicate::label("AM").and("secretary", CmpOp::Eq, true),
    );
    let fw = p.add_named_node("FW", Predicate::label("FW"));
    p.add_edge(b, am, EdgeBound::ONE).unwrap();
    p.add_edge(b, s, EdgeBound::ONE).unwrap();
    p.add_edge(am, fw, EdgeBound::Hops(3)).unwrap();
    p.add_edge(s, fw, EdgeBound::ONE).unwrap();
    p.add_edge(fw, am, EdgeBound::Hops(3)).unwrap();
    p
}

fn main() {
    let g0 = build_g0(5);
    let p0 = build_p0();
    println!(
        "G0: {} suspects, {} communication edges; P0: {} roles, {} constraints",
        g0.node_count(),
        g0.edge_count(),
        p0.node_count(),
        p0.edge_count()
    );

    // Bounded simulation identifies the whole ring.
    let outcome = bounded_simulation(&p0, &g0);
    println!(
        "\nbounded simulation: P0 matches G0 = {}",
        outcome.relation.is_match(&p0)
    );
    for node in p0.node_ids() {
        let names: Vec<String> = outcome
            .relation
            .matches_of(node)
            .iter()
            .map(|&v| {
                g0.attributes(v)
                    .get("name")
                    .and_then(|a| a.as_str())
                    .unwrap_or("?")
                    .to_string()
            })
            .collect();
        println!("  {:<3} -> [{}]", p0.name(node), names.join(", "));
    }

    let rg = ResultGraph::build(&p0, &g0, &outcome.relation);
    println!(
        "\nresult graph: {} suspects, {} relationships",
        rg.node_count(),
        rg.edge_count()
    );

    // Subgraph isomorphism (VF2) on the same instance: the hop bounds are
    // collapsed to single edges, and a bijection is required — it finds
    // nothing, which is exactly the paper's motivating observation.
    let iso = subgraph_isomorphism_vf2(&p0, &g0, &IsoConfig::default());
    println!(
        "\nsubgraph isomorphism (VF2): {} embeddings found{}",
        iso.count(),
        if iso.is_match() {
            ""
        } else {
            "  (the community is invisible to isomorphism)"
        }
    );
}
