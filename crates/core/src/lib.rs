//! # gpm-core
//!
//! Bounded graph simulation — the primary contribution of Fan et al.,
//! *Graph Pattern Matching: From Intractable to Polynomial Time* (VLDB 2010).
//!
//! The crate provides:
//!
//! * [`bounded_simulation`] / [`bounded_simulation_with_oracle`] — the
//!   cubic-time `Match` algorithm (Fig. 4) computing the unique **maximum
//!   match** of a pattern in a data graph, generic over the distance oracle
//!   so the paper's three variants (distance matrix, BFS, 2-hop) share one
//!   implementation;
//! * [`naive::bounded_simulation_naive`] — a straightforward fixpoint used as
//!   a test oracle and ablation baseline;
//! * [`graph_simulation`] — plain graph simulation (Henzinger, Henzinger &
//!   Kopke), the special case with unit bounds and label-only predicates;
//! * [`MatchRelation`] — the match relation `S ⊆ V_p × V` with verification
//!   helpers implementing the definition of Section 2.2;
//! * [`ResultGraph`] — the compact representation of a maximum match
//!   (Section 2.2, "Result graph").
//!
//! ## Example
//!
//! ```
//! use gpm_graph::{DataGraphBuilder, PatternGraphBuilder, EdgeBound};
//! use gpm_core::bounded_simulation;
//!
//! // Boss -> workers within 2 hops.
//! let (g, ids) = DataGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("w1")
//!     .labeled_node("w2")
//!     .edge("boss", "w1")
//!     .edge("w1", "w2")
//!     .build()
//!     .unwrap();
//! # let _ = &ids;
//! let (p, pids) = PatternGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("w2")
//!     .edge("boss", "w2", 2u32)
//!     .build()
//!     .unwrap();
//!
//! let outcome = bounded_simulation(&p, &g);
//! assert!(outcome.relation.is_match(&p));
//! assert_eq!(outcome.relation.matches_of(pids["w2"]).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounded_sim;
pub mod graph_sim;
pub mod match_relation;
pub mod naive;
pub mod result_graph;

pub use bounded_sim::{
    bounded_simulation, bounded_simulation_on, bounded_simulation_with_oracle,
    bounded_simulation_with_oracle_on, MatchOutcome, MatchStats,
};
pub use graph_sim::graph_simulation;
pub use match_relation::MatchRelation;
pub use result_graph::ResultGraph;
