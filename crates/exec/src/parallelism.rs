//! The [`Parallelism`] policy: how many threads, when to bother, and whether
//! reduction merges must be deterministic.

use std::sync::OnceLock;

/// Default number of work items below which a region runs inline.
///
/// Chosen to match the pre-executor heuristic of
/// `DistanceMatrix::build_parallel` (which fell back to the sequential build
/// under 256 BFS sources): below this, per-region thread spawning costs more
/// than the work itself.
pub const DEFAULT_SEQUENTIAL_THRESHOLD: usize = 256;

/// Execution policy for parallel regions.
///
/// A `Parallelism` value is plain data — cloning it is free and it can be
/// threaded through APIs without lifetime concerns. Construct one with
/// [`Parallelism::new`] (explicit thread count), [`Parallelism::sequential`]
/// (single-threaded), or [`Parallelism::from_env`] (available cores,
/// overridable with `GPM_THREADS`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
    sequential_threshold: usize,
    deterministic: bool,
}

impl Parallelism {
    /// A policy with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
            sequential_threshold: DEFAULT_SEQUENTIAL_THRESHOLD,
            deterministic: true,
        }
    }

    /// The single-threaded policy: every region runs inline on the caller.
    pub fn sequential() -> Self {
        Parallelism::new(1)
    }

    /// A policy using every core the OS reports as available.
    pub fn available() -> Self {
        Parallelism::new(available_threads())
    }

    /// The process-wide default policy: `GPM_THREADS` if set to a positive
    /// integer (`0` and unparsable values mean "auto"), otherwise all
    /// available cores.
    ///
    /// The environment is read once per process and cached, so hot paths can
    /// call this freely.
    pub fn from_env() -> Self {
        static ENV_THREADS: OnceLock<usize> = OnceLock::new();
        let threads = *ENV_THREADS.get_or_init(|| {
            match std::env::var("GPM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n > 0 => n,
                _ => available_threads(),
            }
        });
        Parallelism::new(threads)
    }

    /// Replaces the thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the sequential-fallback threshold. Regions whose work hint
    /// is below this run inline; `0` forces every region parallel (useful in
    /// tests that must exercise the threaded machinery on tiny inputs).
    pub fn with_sequential_threshold(mut self, threshold: usize) -> Self {
        self.sequential_threshold = threshold;
        self
    }

    /// Sets deterministic-merge mode (default `true`). Only
    /// [`crate::Executor::par_reduce`] observes this: mapping combinators
    /// merge in task order unconditionally.
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }

    /// Number of worker threads (including the caller thread), `>= 1`.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Work-item count below which a region runs inline.
    #[inline]
    pub fn sequential_threshold(&self) -> usize {
        self.sequential_threshold
    }

    /// Whether reductions must fold partial results in task order.
    #[inline]
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Whether a region with `work_hint` items should use worker threads.
    #[inline]
    pub fn should_parallelise(&self, work_hint: usize) -> bool {
        self.threads > 1 && work_hint >= self.sequential_threshold
    }
}

impl Default for Parallelism {
    /// Same as [`Parallelism::from_env`].
    fn default() -> Self {
        Parallelism::from_env()
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert_eq!(Parallelism::new(4).with_threads(0).threads(), 1);
    }

    #[test]
    fn builders_and_accessors() {
        let p = Parallelism::new(4)
            .with_sequential_threshold(10)
            .with_deterministic(false);
        assert_eq!(p.threads(), 4);
        assert_eq!(p.sequential_threshold(), 10);
        assert!(!p.deterministic());
        assert_eq!(
            Parallelism::new(2).sequential_threshold(),
            DEFAULT_SEQUENTIAL_THRESHOLD
        );
    }

    #[test]
    fn should_parallelise_honours_threshold_and_threads() {
        let p = Parallelism::new(4).with_sequential_threshold(100);
        assert!(p.should_parallelise(100));
        assert!(!p.should_parallelise(99));
        assert!(!Parallelism::sequential().should_parallelise(1_000_000));
        // Threshold 0 forces parallel execution even on empty regions.
        assert!(Parallelism::new(2)
            .with_sequential_threshold(0)
            .should_parallelise(0));
    }

    #[test]
    fn env_and_available_produce_positive_counts() {
        assert!(Parallelism::available().threads() >= 1);
        assert!(Parallelism::from_env().threads() >= 1);
        assert_eq!(Parallelism::from_env(), Parallelism::default());
    }
}
