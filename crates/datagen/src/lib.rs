//! # gpm-datagen
//!
//! Workload generators for the evaluation of Section 5 of the paper:
//!
//! * [`random_graph`](mod@random_graph) — the synthetic data graphs (the paper used the C++
//!   Boost generator with three parameters: node count, edge count and a set
//!   of node attributes);
//! * [`powerlaw`] — preferential-attachment digraphs used as the backbone of
//!   the simulated real-life datasets;
//! * [`datasets`] — simulated **Matter**, **PBlog** and **YouTube** graphs
//!   with the node/edge counts and attribute schemas reported in the paper
//!   (the actual crawls are not redistributable; the [`datasets`] module
//!   docs explain the substitution);
//! * [`pattern_gen`] — the pattern generator of the appendix (parameters
//!   `|V_p|`, `|E_p|`, bound `k`, data graph `G`, biased towards positive
//!   patterns);
//! * [`updates`] — random edge insertion/deletion streams for the incremental
//!   experiments (Figures 6(i)–(k));
//! * [`adversarial`] — deterministic worst-case topologies (star, deep
//!   chain, grid, cliques-with-bridges, bowtie) and matching update scripts
//!   for stress-testing the pluggable distance backends;
//! * [`source`] — [`DatasetSource`], abstracting "generate a stand-in" vs
//!   "load a real crawl from disk" for the experiment harness;
//! * [`export`] — writes any generated graph as an on-disk
//!   `<name>.edges`/`<name>.attrs` dataset (the format of
//!   [`gpm_graph::dataset`]) that reloads bit-identically.
//!
//! All generators are deterministic given a seed, and every generated graph
//! is returned [compacted](gpm_graph::DataGraph::compact) — neighbour lists
//! fully packed in the CSR base, ready for read-heavy matching.
//!
//! ## Example
//!
//! ```
//! use gpm_datagen::{random_graph, RandomGraphConfig};
//!
//! let cfg = RandomGraphConfig::new(100, 300, 10).with_seed(42);
//! let g = random_graph(&cfg);
//! assert_eq!((g.node_count(), g.edge_count()), (100, 300));
//! assert!(g.is_compact());
//! // Same seed, same graph.
//! let h = random_graph(&cfg);
//! assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod datasets;
pub mod export;
pub mod pattern_gen;
pub mod powerlaw;
pub mod random_graph;
pub mod source;
pub mod updates;

pub use adversarial::{
    bowtie, cliques_with_bridges, cut_bridge_updates, cut_chain_updates, deep_chain,
    delete_hub_updates, grid, sever_waist_updates, star,
};
pub use datasets::{Dataset, DatasetSpec};
pub use export::export_dataset;
pub use pattern_gen::{generate_pattern, PatternGenConfig};
pub use powerlaw::{powerlaw_graph, PowerLawConfig};
pub use random_graph::{random_graph, RandomGraphConfig};
pub use source::DatasetSource;
pub use updates::{
    random_updates, timed_update_stream, TimedBatch, TimedStreamConfig, UpdateStreamConfig,
};
