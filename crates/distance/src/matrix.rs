//! The all-pairs non-empty distance matrix `M` of a data graph.
//!
//! Built by one BFS per source node (`O(|V|(|V| + |E|))` total, as in the
//! proof of Theorem 3.1), the matrix answers non-empty shortest-path queries
//! in constant time — the property that makes `Match` insensitive to the hop
//! bound `k` and to `|E|` (Figures 6(f)–(h)).
//!
//! Distances are stored row-major as `u16` hop counts with
//! [`crate::UNREACHABLE`] marking "no non-empty path". Rows can
//! be rebuilt or patched in place, which is what the incremental maintenance
//! procedures (`UpdateM` / `UpdateBM`) do.

use crate::UNREACHABLE;
use gpm_exec::{Executor, Parallelism};
use gpm_graph::{DataGraph, NodeId};
use std::collections::VecDeque;

/// All-pairs **non-empty** shortest-path distances of a data graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major: `dist[x * n + y]` = length of the shortest non-empty path
    /// from `x` to `y`, or `UNREACHABLE`.
    dist: Vec<u16>,
}

impl DistanceMatrix {
    /// Builds the matrix for `g`, one BFS per source node.
    ///
    /// The BFS from a source `x` is seeded with the out-neighbours of `x` at
    /// distance 1 (and never assigns distance 0 to `x` itself), which yields
    /// non-empty distances directly — including the shortest cycle length on
    /// the diagonal.
    pub fn build(g: &DataGraph) -> Self {
        Self::build_with(g, &Executor::sequential())
    }

    /// Builds the matrix on the shared executor: BFS sources are dealt to
    /// the workers in row chunks small enough for work stealing to balance
    /// the skewed per-source costs of hub-heavy graphs. Falls back to the
    /// sequential build when the executor is single-threaded or the graph is
    /// below the policy's sequential threshold.
    pub fn build_with(g: &DataGraph, exec: &Executor) -> Self {
        let n = g.node_count();
        let mut dist = vec![UNREACHABLE; n * n];
        if !exec.parallelism().should_parallelise(n) {
            let mut queue = VecDeque::new();
            for x in g.nodes() {
                let row = &mut dist[x.index() * n..(x.index() + 1) * n];
                Self::bfs_row(g, x, row, &mut queue);
            }
            return DistanceMatrix { n, dist };
        }
        // Rows per task: a few tasks per worker so stealing has slack.
        let rows_per_task = n.div_ceil(exec.threads() * 4).max(1);
        exec.par_chunks_mut(&mut dist, rows_per_task * n, |chunk_idx, chunk| {
            let mut queue = VecDeque::new();
            for (i, row) in chunk.chunks_mut(n).enumerate() {
                let x = NodeId::new((chunk_idx * rows_per_task + i) as u32);
                Self::bfs_row(g, x, row, &mut queue);
            }
        });
        DistanceMatrix { n, dist }
    }

    /// Builds the matrix using `threads` worker threads. Convenience wrapper
    /// over [`DistanceMatrix::build_with`] with a default [`Parallelism`]
    /// policy at that thread count.
    pub fn build_parallel(g: &DataGraph, threads: usize) -> Self {
        Self::build_with(g, &Executor::new(Parallelism::new(threads)))
    }

    /// Recomputes the row of source `x` against (an updated) `g`, in place.
    /// Returns the list of sinks whose distance changed, with `(old, new)`
    /// values.
    pub fn rebuild_row(&mut self, g: &DataGraph, x: NodeId) -> Vec<(NodeId, u16, u16)> {
        debug_assert_eq!(g.node_count(), self.n, "graph/matrix size mismatch");
        let n = self.n;
        let old_row: Vec<u16> = self.dist[x.index() * n..(x.index() + 1) * n].to_vec();
        let mut queue = VecDeque::new();
        {
            let row = &mut self.dist[x.index() * n..(x.index() + 1) * n];
            Self::bfs_row(g, x, row, &mut queue);
        }
        let new_row = &self.dist[x.index() * n..(x.index() + 1) * n];
        old_row
            .iter()
            .zip(new_row.iter())
            .enumerate()
            .filter(|(_, (o, nw))| o != nw)
            .map(|(y, (&o, &nw))| (NodeId::new(y as u32), o, nw))
            .collect()
    }

    fn bfs_row(g: &DataGraph, x: NodeId, row: &mut [u16], queue: &mut VecDeque<NodeId>) {
        row.fill(UNREACHABLE);
        queue.clear();
        // Seed with out-neighbours at distance 1: paths must be non-empty.
        for &w in g.out_neighbors(x) {
            if row[w.index()] == UNREACHABLE {
                row[w.index()] = 1;
                queue.push_back(w);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = row[v.index()];
            if d == UNREACHABLE - 1 {
                continue; // saturate rather than overflow (never hit in practice)
            }
            for &w in g.out_neighbors(v) {
                if row[w.index()] == UNREACHABLE {
                    row[w.index()] = d + 1;
                    queue.push_back(w);
                }
            }
        }
    }

    /// Number of nodes the matrix covers.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Raw entry: non-empty distance from `x` to `y` in hops, `UNREACHABLE`
    /// if there is no non-empty path.
    #[inline]
    pub fn get(&self, x: NodeId, y: NodeId) -> u16 {
        self.dist[x.index() * self.n + y.index()]
    }

    /// Sets the entry for `(x, y)`; used by the incremental procedures.
    #[inline]
    pub fn set(&mut self, x: NodeId, y: NodeId, value: u16) {
        self.dist[x.index() * self.n + y.index()] = value;
    }

    /// Length of the shortest **non-empty** path from `x` to `y`, if any.
    #[inline]
    pub fn nonempty_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        match self.get(x, y) {
            UNREACHABLE => None,
            d => Some(u32::from(d)),
        }
    }

    /// Standard shortest-path distance (empty path allowed, so the diagonal
    /// is 0).
    #[inline]
    pub fn standard_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        if x == y {
            Some(0)
        } else {
            self.nonempty_distance(x, y)
        }
    }

    /// Whether some non-empty path from `x` to `y` has length `<= limit`.
    #[inline]
    pub fn within_hops(&self, x: NodeId, y: NodeId, limit: u32) -> bool {
        u32::from(self.get(x, y)) <= limit
    }

    /// Whether `y` is reachable from `x` by a non-empty path.
    #[inline]
    pub fn reachable(&self, x: NodeId, y: NodeId) -> bool {
        self.get(x, y) != UNREACHABLE
    }

    /// Iterates over all finite entries as `(source, sink, hops)`.
    pub fn finite_entries(&self) -> impl Iterator<Item = (NodeId, NodeId, u16)> + '_ {
        let n = self.n;
        self.dist.iter().enumerate().filter_map(move |(i, &d)| {
            if d == UNREACHABLE {
                None
            } else {
                Some((NodeId::new((i / n) as u32), NodeId::new((i % n) as u32), d))
            }
        })
    }

    /// Number of finite (reachable) entries; useful for density diagnostics.
    pub fn reachable_pair_count(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }

    /// Approximate heap size of the matrix in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::Attributes;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0 -> 1 -> 2 -> 0 (a triangle) plus 2 -> 3.
    fn triangle_plus_tail() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn distances_on_small_graph() {
        let g = triangle_plus_tail();
        let m = DistanceMatrix::build(&g);
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.nonempty_distance(n(0), n(1)), Some(1));
        assert_eq!(m.nonempty_distance(n(0), n(2)), Some(2));
        assert_eq!(m.nonempty_distance(n(0), n(3)), Some(3));
        assert_eq!(m.nonempty_distance(n(3), n(0)), None);
        // Diagonal = shortest cycle length.
        assert_eq!(m.nonempty_distance(n(0), n(0)), Some(3));
        assert_eq!(m.nonempty_distance(n(3), n(3)), None);
        // Standard distance has a zero diagonal.
        assert_eq!(m.standard_distance(n(0), n(0)), Some(0));
        assert_eq!(m.standard_distance(n(0), n(3)), Some(3));
    }

    #[test]
    fn self_loop_gives_diagonal_one() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::new());
        g.add_edge(n(0), n(0)).unwrap();
        let m = DistanceMatrix::build(&g);
        assert_eq!(m.nonempty_distance(n(0), n(0)), Some(1));
    }

    #[test]
    fn within_hops_and_reachable() {
        let g = triangle_plus_tail();
        let m = DistanceMatrix::build(&g);
        assert!(m.within_hops(n(0), n(3), 3));
        assert!(!m.within_hops(n(0), n(3), 2));
        assert!(m.reachable(n(1), n(3)));
        assert!(!m.reachable(n(3), n(1)));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = DataGraph::new();
        let m = DistanceMatrix::build(&g);
        assert_eq!(m.node_count(), 0);
        assert_eq!(m.reachable_pair_count(), 0);

        let mut g1 = DataGraph::new();
        g1.add_node(Attributes::new());
        let m1 = DistanceMatrix::build(&g1);
        assert_eq!(m1.nonempty_distance(n(0), n(0)), None);
    }

    #[test]
    fn finite_entries_enumeration() {
        let g = triangle_plus_tail();
        let m = DistanceMatrix::build(&g);
        let entries: Vec<_> = m.finite_entries().collect();
        assert_eq!(entries.len(), m.reachable_pair_count());
        assert!(entries.contains(&(n(0), n(3), 3)));
        // 3 has no outgoing edges: no finite entries in its row.
        assert!(entries.iter().all(|&(x, _, _)| x != n(3)));
    }

    #[test]
    fn rebuild_row_reports_changes() {
        let mut g = triangle_plus_tail();
        let mut m = DistanceMatrix::build(&g);
        g.remove_edge(n(2), n(3)).unwrap();
        let changed = m.rebuild_row(&m_graph_clone(&g), n(0));
        // After removing 2 -> 3, node 3 is unreachable from 0.
        assert_eq!(changed, vec![(n(3), 3, UNREACHABLE)]);
        assert_eq!(m.nonempty_distance(n(0), n(3)), None);
        // Rebuilding again reports nothing.
        assert!(m.rebuild_row(&g, n(0)).is_empty());
    }

    // Helper so the borrow of `g` in the test above reads naturally.
    fn m_graph_clone(g: &DataGraph) -> DataGraph {
        g.clone()
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let mut g = DataGraph::new();
        g.add_nodes(300);
        // A ring with chords so there are interesting distances.
        for i in 0..300u32 {
            g.add_edge(n(i), n((i + 1) % 300)).unwrap();
            if i % 7 == 0 {
                g.add_edge(n(i), n((i + 13) % 300)).unwrap();
            }
        }
        let seq = DistanceMatrix::build(&g);
        let par = DistanceMatrix::build_parallel(&g, 4);
        assert_eq!(seq, par);
    }

    #[test]
    fn memory_accounting() {
        let g = triangle_plus_tail();
        let m = DistanceMatrix::build(&g);
        assert_eq!(m.memory_bytes(), 16 * 2);
    }

    fn arbitrary_graph() -> impl Strategy<Value = DataGraph> {
        (2usize..18).prop_flat_map(|nodes| {
            proptest::collection::vec((0..nodes as u32, 0..nodes as u32), 0..70).prop_map(
                move |edges| {
                    let mut g = DataGraph::new();
                    g.add_nodes(nodes);
                    for (a, b) in edges {
                        let _ = g.try_add_edge(NodeId::new(a), NodeId::new(b));
                    }
                    g
                },
            )
        })
    }

    /// Reference implementation: non-empty shortest distance by exhaustive BFS
    /// that never uses the trivial empty path.
    fn slow_nonempty_distance(g: &DataGraph, x: NodeId, y: NodeId) -> Option<u32> {
        let mut dist = vec![None::<u32>; g.node_count()];
        let mut queue = VecDeque::new();
        for &w in g.out_neighbors(x) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(1);
                queue.push_back(w);
            }
        }
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()].unwrap();
            for &w in g.out_neighbors(v) {
                if dist[w.index()].is_none() {
                    dist[w.index()] = Some(d + 1);
                    queue.push_back(w);
                }
            }
        }
        dist[y.index()]
    }

    proptest! {
        /// The matrix agrees with a direct per-query BFS on every pair.
        #[test]
        fn prop_matrix_matches_reference(g in arbitrary_graph()) {
            let m = DistanceMatrix::build(&g);
            for x in g.nodes() {
                for y in g.nodes() {
                    prop_assert_eq!(
                        m.nonempty_distance(x, y),
                        slow_nonempty_distance(&g, x, y),
                        "disagreement for ({}, {})", x, y
                    );
                }
            }
        }

        /// Triangle inequality over concatenation of non-empty paths.
        #[test]
        fn prop_triangle_inequality(g in arbitrary_graph()) {
            let m = DistanceMatrix::build(&g);
            for x in g.nodes() {
                for y in g.nodes() {
                    for z in g.nodes() {
                        if let (Some(a), Some(b)) =
                            (m.nonempty_distance(x, y), m.nonempty_distance(y, z))
                        {
                            let via = a + b;
                            let direct = m
                                .nonempty_distance(x, z)
                                .expect("concatenation witnesses a path");
                            prop_assert!(direct <= via);
                        }
                    }
                }
            }
        }
    }
}
