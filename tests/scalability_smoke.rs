//! Smoke tests at moderately large sizes: the full pipeline stays correct and
//! finishes quickly enough to live in the normal test suite. (The real
//! scalability study is the benchmark harness in `crates/bench`.)

use gpm::{
    bounded_simulation_with_oracle, generate_pattern, graph_simulation, random_graph,
    random_updates, DistanceMatrix, IncrementalMatcher, PatternGenConfig, RandomGraphConfig,
    UpdateStreamConfig,
};

#[test]
fn match_on_a_five_thousand_edge_graph() {
    let graph = random_graph(&RandomGraphConfig::new(2_000, 5_000, 40).with_seed(77));
    let matrix = DistanceMatrix::build_parallel(&graph, 4);
    assert_eq!(matrix.node_count(), 2_000);

    let mut matched = 0;
    for seed in 0..4u64 {
        // Spanning-structure patterns (|Ep| = |Vp| - 1) are positive by
        // construction, so at least some of them must match.
        let (pattern, _) =
            generate_pattern(&graph, &PatternGenConfig::new(6, 5, 3).with_seed(seed));
        let outcome = bounded_simulation_with_oracle(&pattern, &graph, &matrix);
        assert!(outcome.relation.is_valid_match(&pattern, &graph, &matrix));
        if outcome.relation.is_match(&pattern) {
            matched += 1;
        }
    }
    assert!(matched >= 1, "at least one generated pattern should match");
}

#[test]
fn parallel_and_sequential_matrix_agree_at_scale() {
    let graph = random_graph(&RandomGraphConfig::new(1_200, 4_800, 25).with_seed(3));
    let seq = DistanceMatrix::build(&graph);
    let par = DistanceMatrix::build_parallel(&graph, 8);
    assert_eq!(seq, par);
}

#[test]
fn graph_simulation_scales_without_distance_matrix() {
    // Plain simulation needs no distance matrix, so it can run on a larger
    // graph comfortably inside a unit-test budget.
    let graph = random_graph(&RandomGraphConfig::new(20_000, 60_000, 100).with_seed(5));
    let (pattern, _) = generate_pattern(
        &graph,
        &PatternGenConfig {
            max_bound: 1,
            bound_variation: 0,
            unbounded_probability: 0.0,
            ..PatternGenConfig::new(5, 5, 1).with_seed(8)
        },
    );
    let outcome = graph_simulation(&pattern, &graph);
    // Either it matches or it does not, but it must terminate and be
    // internally consistent.
    assert_eq!(outcome.relation.pattern_node_count(), 5);
}

#[test]
fn incremental_maintenance_over_a_long_update_stream() {
    let graph = random_graph(&RandomGraphConfig::new(800, 2_400, 12).with_seed(10));
    // DAG pattern for IncMatch; advance the seed until one comes out acyclic.
    let pattern = (31..)
        .map(|seed| generate_pattern(&graph, &PatternGenConfig::new(4, 4, 3).with_seed(seed)).0)
        .find(|p| p.is_dag())
        .expect("some seed yields a DAG pattern");
    let mut matcher = IncrementalMatcher::new(pattern.clone(), graph.clone());
    let updates = random_updates(&graph, &UpdateStreamConfig::mixed(300).with_seed(13));
    matcher.apply_batch(&updates).unwrap();

    let rebuilt = DistanceMatrix::build(matcher.graph());
    let recomputed = bounded_simulation_with_oracle(&pattern, matcher.graph(), &rebuilt);
    assert_eq!(matcher.relation(), recomputed.relation);
}
