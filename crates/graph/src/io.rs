//! Plain-text and JSON (de)serialization of graphs and patterns.
//!
//! Three formats are supported:
//!
//! * **JSON** via `serde_json` — lossless round trips of [`DataGraph`] and
//!   [`PatternGraph`], used to persist generated workloads;
//! * a **line-oriented edge-list** format for data graphs, convenient for
//!   importing external datasets:
//!
//!   ```text
//!   # comment
//!   n 0 label="Music" rate=4.5
//!   n 1 label="People"
//!   e 0 1
//!   ```
//!
//! * the **SNAP edge-list** format used by the real crawls the paper
//!   evaluates on (YouTube, Amazon, …): `#`-comment lines plus one
//!   whitespace-separated `from to` pair of arbitrary `u64` node ids per
//!   line, streamed in a single buffered pass by [`read_snap_edge_list`].

use crate::attributes::Attributes;
use crate::data_graph::DataGraph;
use crate::error::GraphError;
use crate::node_id::NodeId;
use crate::pattern_graph::PatternGraph;
use crate::value::AttrValue;
use crate::Result;
use rustc_hash::FxHashMap;
use std::io::BufRead;

/// Serializes a data graph to a JSON string.
pub fn data_graph_to_json(g: &DataGraph) -> Result<String> {
    serde_json::to_string(g).map_err(|e| GraphError::Parse(e.to_string()))
}

/// Deserializes a data graph from a JSON string.
pub fn data_graph_from_json(text: &str) -> Result<DataGraph> {
    serde_json::from_str(text).map_err(|e| GraphError::Parse(e.to_string()))
}

/// Serializes a pattern graph to a JSON string.
pub fn pattern_to_json(p: &PatternGraph) -> Result<String> {
    serde_json::to_string(p).map_err(|e| GraphError::Parse(e.to_string()))
}

/// Deserializes a pattern graph from a JSON string.
pub fn pattern_from_json(text: &str) -> Result<PatternGraph> {
    serde_json::from_str(text).map_err(|e| GraphError::Parse(e.to_string()))
}

/// Writes a data graph in the line-oriented edge-list format.
pub fn data_graph_to_edge_list(g: &DataGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# gpm edge list: {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    ));
    for v in g.nodes() {
        out.push_str(&format!("n {}", v.0));
        for (key, value) in g.attributes(v).iter() {
            out.push(' ');
            out.push_str(key);
            out.push('=');
            match value {
                AttrValue::Str(s) => out.push_str(&format!("{s:?}")),
                other => out.push_str(&other.to_string()),
            }
        }
        out.push('\n');
    }
    for (a, b) in g.edges() {
        out.push_str(&format!("e {} {}\n", a.0, b.0));
    }
    out
}

/// Parses a data graph from the line-oriented edge-list format.
pub fn data_graph_from_edge_list(text: &str) -> Result<DataGraph> {
    let mut nodes: Vec<(u32, Attributes)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: Option<u32> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens = tokenize_line(line);
        let mut parts = tokens.iter().map(String::as_str);
        let kind = parts.next().unwrap_or_default();
        match kind {
            "n" => {
                let id: u32 = parse_field(parts.next(), lineno, "node id")?;
                let mut attrs = Attributes::new();
                for item in parts {
                    let (key, value) = item.split_once('=').ok_or_else(|| {
                        GraphError::Parse(format!(
                            "line {}: attribute `{item}` is not key=value",
                            lineno + 1
                        ))
                    })?;
                    attrs.set(key, parse_attr_value(value));
                }
                max_id = Some(max_id.map_or(id, |m| m.max(id)));
                nodes.push((id, attrs));
            }
            "e" => {
                let a: u32 = parse_field(parts.next(), lineno, "edge source")?;
                let b: u32 = parse_field(parts.next(), lineno, "edge target")?;
                max_id = Some(max_id.map_or(a.max(b), |m| m.max(a).max(b)));
                edges.push((a, b));
            }
            other => {
                return Err(GraphError::Parse(format!(
                    "line {}: unknown record type `{other}`",
                    lineno + 1
                )))
            }
        }
    }

    let node_count = max_id.map_or(0, |m| m as usize + 1);
    let mut g = DataGraph::with_capacity(node_count);
    g.add_nodes(node_count);
    for (id, attrs) in nodes {
        *g.attributes_mut(NodeId::new(id)) = attrs;
    }
    for (a, b) in edges {
        g.try_add_edge(NodeId::new(a), NodeId::new(b))?;
    }
    g.compact();
    Ok(g)
}

/// The dense `u64 → NodeId` remap shared by the SNAP edge-list reader and
/// the attributed-dataset loader ([`crate::dataset`]).
///
/// SNAP ids are sparse and can exceed `u32`, so loaders assign [`NodeId`]s
/// densely and keep the reverse `ids` vector (index = [`NodeId`] index,
/// value = original id). The remap can be pre-seeded — the dataset loader
/// seeds it from the attribute CSV so edge endpoints bind to the declared
/// nodes — or grown on first appearance by the plain SNAP reader.
#[derive(Debug, Default)]
pub(crate) struct IdRemap {
    map: FxHashMap<u64, NodeId>,
    ids: Vec<u64>,
}

impl IdRemap {
    pub(crate) fn new() -> Self {
        IdRemap::default()
    }

    /// Registers `raw → id` (used while seeding from an attribute CSV).
    /// Returns `false` when `raw` was already registered.
    pub(crate) fn insert(&mut self, raw: u64, id: NodeId) -> bool {
        let fresh = self.map.insert(raw, id).is_none();
        if fresh {
            self.ids.push(raw);
        }
        fresh
    }

    pub(crate) fn get(&self, raw: u64) -> Option<NodeId> {
        self.map.get(&raw).copied()
    }

    pub(crate) fn into_ids(self) -> Vec<u64> {
        self.ids
    }
}

/// Streams a SNAP-style edge list into `g`, interning node ids through
/// `remap`.
///
/// With `allow_new = true` unseen ids create fresh (attribute-less) nodes in
/// first-appearance order; with `allow_new = false` every endpoint must
/// already be registered in `remap` and an unknown id is a positioned
/// [`GraphError::ParseAt`] — the dataset loader uses this to enforce that
/// the edge file only references nodes declared by the attribute CSV.
pub(crate) fn read_snap_edges_into<R: BufRead>(
    mut reader: R,
    g: &mut DataGraph,
    remap: &mut IdRemap,
    allow_new: bool,
) -> Result<()> {
    let mut intern = |raw: u64, field: usize, lineno: usize, g: &mut DataGraph| -> Result<NodeId> {
        if let Some(id) = remap.get(raw) {
            return Ok(id);
        }
        if !allow_new {
            return Err(GraphError::ParseAt {
                line: lineno + 1,
                column: field,
                msg: format!("unknown node id {raw}: no attribute row declares it"),
            });
        }
        let id = g.add_node(Attributes::new());
        remap.insert(raw, id);
        Ok(id)
    };

    // One reused line buffer: real crawls run to tens of millions of lines,
    // so the loop must not allocate per line (as `reader.lines()` would).
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let read = reader
            .read_line(&mut buf)
            .map_err(|e| GraphError::Parse(format!("line {}: {e}", lineno + 1)))?;
        if read == 0 {
            break;
        }
        let line = buf.trim();
        if !(line.is_empty() || line.starts_with('#')) {
            let mut fields = line.split_whitespace();
            let from: u64 = parse_field(fields.next(), lineno, "SNAP edge source")?;
            let to: u64 = parse_field(fields.next(), lineno, "SNAP edge target")?;
            if fields.next().is_some() {
                return Err(GraphError::Parse(format!(
                    "line {}: expected `from to`, found extra fields",
                    lineno + 1
                )));
            }
            let a = intern(from, 1, lineno, g)?;
            let b = intern(to, 2, lineno, g)?;
            let _ = g.try_add_edge(a, b)?; // duplicates in the crawl are skipped
        }
        lineno += 1;
    }
    g.compact();
    Ok(())
}

/// Loads a data graph from a SNAP-style edge list, streaming the input in a
/// single buffered pass.
///
/// The format is the one used by the SNAP dataset collection (and by the
/// YouTube/Amazon crawls of the paper's evaluation): lines starting with
/// `#` are comments, every other non-empty line holds two
/// whitespace-separated `u64` node ids, `from to`. Node ids are remapped
/// densely in first-appearance order (SNAP ids are sparse and can exceed
/// `u32`); the returned vector maps each [`NodeId`] index back to its
/// original id. Duplicate edges are skipped (the model has no parallel
/// edges); self-loops are kept.
///
/// Nodes carry no attributes — real crawls ship attributes separately; use
/// [`crate::dataset::attach_attrs_csv`] to bind a typed attribute CSV to the
/// remapped ids, or [`DataGraph::attributes_mut`] to attach them manually.
pub fn read_snap_edge_list<R: BufRead>(reader: R) -> Result<(DataGraph, Vec<u64>)> {
    let mut g = DataGraph::new();
    let mut remap = IdRemap::new();
    read_snap_edges_into(reader, &mut g, &mut remap, true)?;
    Ok((g, remap.into_ids()))
}

/// [`read_snap_edge_list`] over an in-memory string (tests, small files).
pub fn data_graph_from_snap_str(text: &str) -> Result<(DataGraph, Vec<u64>)> {
    read_snap_edge_list(text.as_bytes())
}

/// Splits a line on whitespace while keeping double-quoted segments (which
/// may contain spaces) inside a single token.
fn tokenize_line(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            c if c.is_whitespace() && !in_quotes => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

fn parse_field<T: std::str::FromStr>(field: Option<&str>, lineno: usize, what: &str) -> Result<T> {
    field
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| GraphError::Parse(format!("line {}: missing/invalid {what}", lineno + 1)))
}

fn parse_attr_value(text: &str) -> AttrValue {
    if let Some(stripped) = text
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    {
        return AttrValue::Str(stripped.to_string());
    }
    if text == "true" {
        return AttrValue::Bool(true);
    }
    if text == "false" {
        return AttrValue::Bool(false);
    }
    if let Ok(i) = text.parse::<i64>() {
        return AttrValue::Int(i);
    }
    if let Ok(f) = text.parse::<f64>() {
        return AttrValue::Float(f);
    }
    AttrValue::Str(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_bound::EdgeBound;
    use crate::predicate::{CmpOp, Predicate};

    fn sample_graph() -> DataGraph {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("Music").with("rate", 4.5));
        let b = g.add_node(Attributes::labeled("People").with("views", 700));
        let c = g.add_node(Attributes::new());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        g
    }

    #[test]
    fn json_roundtrip_data_graph() {
        let g = sample_graph();
        let text = data_graph_to_json(&g).unwrap();
        let back = data_graph_from_json(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.attributes(v), g.attributes(v));
        }
        for (a, b) in g.edges() {
            assert!(back.has_edge(a, b));
        }
    }

    #[test]
    fn json_roundtrip_pattern() {
        let mut p = PatternGraph::new();
        let x = p.add_named_node("x", Predicate::label("Music").and("rate", CmpOp::Gt, 3.0));
        let y = p.add_node(Predicate::any());
        p.add_edge(x, y, EdgeBound::Hops(2)).unwrap();
        let text = pattern_to_json(&p).unwrap();
        let back = pattern_from_json(&text).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.bound(x, y), Some(EdgeBound::Hops(2)));
        assert_eq!(back.predicate(x), p.predicate(x));
        assert_eq!(back.name(x), "x");
    }

    #[test]
    fn json_parse_error_is_reported() {
        assert!(data_graph_from_json("{not json").is_err());
        assert!(pattern_from_json("[]").is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample_graph();
        let text = data_graph_to_edge_list(&g);
        let back = data_graph_from_edge_list(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(back.attributes(v), g.attributes(v), "attrs of {v}");
        }
        for (a, b) in g.edges() {
            assert!(back.has_edge(a, b));
        }
    }

    #[test]
    fn edge_list_parses_comments_and_types() {
        let text = r#"
            # a comment
            n 0 label="A B" rate=4.5 views=10 ok=true
            n 2 label=plain
            e 0 2
        "#;
        let g = data_graph_from_edge_list(text).unwrap();
        assert_eq!(g.node_count(), 3); // ids 0..=2, id 1 implicit
        assert_eq!(g.attributes(NodeId::new(0)).label(), Some("A B"));
        assert_eq!(
            g.attributes(NodeId::new(0)).get("rate"),
            Some(&AttrValue::Float(4.5))
        );
        assert_eq!(
            g.attributes(NodeId::new(0)).get("views"),
            Some(&AttrValue::Int(10))
        );
        assert_eq!(
            g.attributes(NodeId::new(0)).get("ok"),
            Some(&AttrValue::Bool(true))
        );
        assert_eq!(
            g.attributes(NodeId::new(2)).get("label"),
            Some(&AttrValue::Str("plain".into()))
        );
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn edge_list_errors() {
        assert!(data_graph_from_edge_list("x 1 2").is_err());
        assert!(data_graph_from_edge_list("e 1").is_err());
        assert!(data_graph_from_edge_list("n").is_err());
        assert!(data_graph_from_edge_list("n 0 oops").is_err());
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let g = data_graph_from_edge_list("# nothing\n").unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn snap_loader_parses_comments_whitespace_and_dense_remap() {
        let text = "# Directed graph: web-Sample.txt\n\
                    # FromNodeId\tToNodeId\n\
                    9999999999 17\n\
                    17\t42\n\
                    \n\
                    42   9999999999\n";
        let (g, ids) = data_graph_from_snap_str(text).unwrap();
        // First-appearance order: 9999999999, 17, 42.
        assert_eq!(ids, vec![9_999_999_999, 17, 42]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
        assert!(g.is_compact(), "loader compacts after the single pass");
    }

    #[test]
    fn snap_loader_skips_duplicates_and_keeps_self_loops() {
        let (g, ids) = data_graph_from_snap_str("1 2\n1 2\n2 2\n").unwrap();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(g.edge_count(), 2); // duplicate (1, 2) skipped
        assert!(g.has_edge(NodeId::new(1), NodeId::new(1))); // self-loop kept
    }

    #[test]
    fn snap_loader_streams_from_a_bufread() {
        // Exercise the BufRead path (not just the &str convenience): a
        // cursor over bytes, as a file reader would present them.
        let bytes: &[u8] = b"# c\n3 4\n4 5\n";
        let (g, ids) = read_snap_edge_list(std::io::BufReader::new(bytes)).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn snap_loader_rejects_malformed_lines() {
        assert!(data_graph_from_snap_str("1\n").is_err());
        assert!(data_graph_from_snap_str("1 2 3\n").is_err());
        assert!(data_graph_from_snap_str("a b\n").is_err());
        let (g, ids) = data_graph_from_snap_str("# only comments\n\n").unwrap();
        assert_eq!(g.node_count(), 0);
        assert!(ids.is_empty());
    }
}
