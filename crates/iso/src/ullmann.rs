//! `SubIso`: Ullmann's subgraph isomorphism algorithm (Ullmann, JACM 1976).
//!
//! The classic backtracking enumeration over a candidate matrix with the
//! refinement step: a candidate `v` for pattern node `u` survives only if
//! every pattern neighbour of `u` still has a compatible candidate among the
//! corresponding data neighbours of `v`. The paper uses `SubIso` as the
//! baseline of Exp-1 to show that subgraph isomorphism finds far fewer (and
//! sometimes no) matches than bounded simulation.

use crate::candidates::CandidateSets;
use crate::embedding::{Embedding, IsoConfig, IsoOutcome};
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};

/// Enumerates subgraph-isomorphism embeddings of `pattern` in `graph` with
/// Ullmann's algorithm.
pub fn subgraph_isomorphism_ullmann(
    pattern: &PatternGraph,
    graph: &DataGraph,
    config: &IsoConfig,
) -> IsoOutcome {
    let np = pattern.node_count();
    let mut outcome = IsoOutcome::default();
    if np == 0 {
        // The empty pattern has exactly one (empty) embedding.
        outcome.embeddings.push(Embedding { nodes: Vec::new() });
        return outcome;
    }
    let candidates = CandidateSets::compute(pattern, graph);
    if candidates.any_empty() {
        return outcome;
    }

    // Candidate matrix M[u][v] = true iff v is currently a candidate for u.
    let nv = graph.node_count();
    let mut matrix: Vec<Vec<bool>> = vec![vec![false; nv]; np];
    for u in pattern.node_ids() {
        for &v in candidates.of(u) {
            matrix[u.index()][v.index()] = true;
        }
    }
    if !refine(pattern, graph, &mut matrix) {
        return outcome;
    }

    let order = candidates.matching_order(pattern);
    let mut assignment: Vec<Option<NodeId>> = vec![None; np];
    let mut used: Vec<bool> = vec![false; nv];
    search(
        pattern,
        graph,
        config,
        &order,
        0,
        &matrix,
        &mut assignment,
        &mut used,
        &mut outcome,
    );
    outcome
}

/// Ullmann's refinement: repeatedly drop candidates that lack a compatible
/// neighbour candidate, until a fixpoint. Returns `false` if some pattern
/// node loses all candidates.
fn refine(pattern: &PatternGraph, graph: &DataGraph, matrix: &mut [Vec<bool>]) -> bool {
    loop {
        let mut changed = false;
        for u in pattern.node_ids() {
            for v in 0..matrix[u.index()].len() {
                if !matrix[u.index()][v] {
                    continue;
                }
                let vid = NodeId::new(v as u32);
                // For every pattern edge u -> w, v must have a successor
                // candidate of w; for every w -> u, a predecessor candidate.
                let ok_out = pattern.children(u).all(|w| {
                    graph
                        .out_neighbors(vid)
                        .iter()
                        .any(|&x| matrix[w.index()][x.index()])
                });
                let ok_in = pattern.parents(u).all(|w| {
                    graph
                        .in_neighbors(vid)
                        .iter()
                        .any(|&x| matrix[w.index()][x.index()])
                });
                if !(ok_out && ok_in) {
                    matrix[u.index()][v] = false;
                    changed = true;
                }
            }
            if matrix[u.index()].iter().all(|&b| !b) {
                return false;
            }
        }
        if !changed {
            return true;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn search(
    pattern: &PatternGraph,
    graph: &DataGraph,
    config: &IsoConfig,
    order: &[PatternNodeId],
    depth: usize,
    matrix: &[Vec<bool>],
    assignment: &mut Vec<Option<NodeId>>,
    used: &mut Vec<bool>,
    outcome: &mut IsoOutcome,
) -> bool {
    if outcome.embeddings.len() >= config.max_embeddings || outcome.steps >= config.max_steps {
        outcome.truncated = true;
        return false;
    }
    if depth == order.len() {
        let nodes = assignment
            .iter()
            .map(|v| v.expect("complete assignment"))
            .collect();
        outcome.embeddings.push(Embedding { nodes });
        return true;
    }
    let u = order[depth];
    for v in 0..matrix[u.index()].len() {
        if !matrix[u.index()][v] || used[v] {
            continue;
        }
        let vid = NodeId::new(v as u32);
        outcome.steps += 1;
        if !consistent_with_assigned(pattern, graph, u, vid, assignment) {
            continue;
        }
        assignment[u.index()] = Some(vid);
        used[v] = true;
        search(
            pattern,
            graph,
            config,
            order,
            depth + 1,
            matrix,
            assignment,
            used,
            outcome,
        );
        assignment[u.index()] = None;
        used[v] = false;
        if outcome.truncated {
            return false;
        }
    }
    true
}

/// Checks that mapping `u -> v` preserves all pattern edges towards already
/// assigned pattern nodes.
fn consistent_with_assigned(
    pattern: &PatternGraph,
    graph: &DataGraph,
    u: PatternNodeId,
    v: NodeId,
    assignment: &[Option<NodeId>],
) -> bool {
    for e in pattern.out_edges(u) {
        if let Some(w) = assignment[e.to.index()] {
            if !graph.has_edge(v, w) {
                return false;
            }
        }
    }
    for e in pattern.in_edges(u) {
        if let Some(w) = assignment[e.from.index()] {
            if !graph.has_edge(w, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::{Attributes, DataGraphBuilder, PatternGraphBuilder};

    fn triangle_data() -> DataGraph {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B")
            .edge("B", "C")
            .edge("C", "A")
            .build()
            .unwrap();
        g
    }

    #[test]
    fn finds_single_embedding() {
        let g = triangle_data();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B", 1u32)
            .build()
            .unwrap();
        let out = subgraph_isomorphism_ullmann(&p, &g, &IsoConfig::default());
        assert_eq!(out.count(), 1);
        assert!(out.embeddings[0].verify(&p, &g));
        assert!(!out.truncated);
    }

    #[test]
    fn no_embedding_when_edge_missing() {
        let g = triangle_data();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("B")
            .labeled_node("A")
            .edge("B", "A", 1u32)
            .build()
            .unwrap();
        let out = subgraph_isomorphism_ullmann(&p, &g, &IsoConfig::default());
        assert!(!out.is_match());
    }

    #[test]
    fn injectivity_is_enforced() {
        // Data: a single node with a self-loop labelled A; pattern: two A
        // nodes connected both ways. Bounded simulation would match this,
        // subgraph isomorphism must not (needs two distinct nodes).
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("A"));
        g.add_edge(a, a).unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .node("A2", gpm_graph::Predicate::label("A"))
            .edge("A", "A2", 1u32)
            .edge("A2", "A", 1u32)
            .build()
            .unwrap();
        let out = subgraph_isomorphism_ullmann(&p, &g, &IsoConfig::default());
        assert!(!out.is_match());
    }

    #[test]
    fn counts_all_embeddings_of_symmetric_pattern() {
        // Data: hub -> l1, hub -> l2; pattern: Hub -> Leaf gives 2 embeddings.
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("Hub")
            .node("l1", Attributes::labeled("Leaf"))
            .node("l2", Attributes::labeled("Leaf"))
            .edge("Hub", "l1")
            .edge("Hub", "l2")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("Hub")
            .labeled_node("Leaf")
            .edge("Hub", "Leaf", 1u32)
            .build()
            .unwrap();
        let out = subgraph_isomorphism_ullmann(&p, &g, &IsoConfig::default());
        assert_eq!(out.count(), 2);
        for e in &out.embeddings {
            assert!(e.verify(&p, &g));
        }
    }

    #[test]
    fn truncation_by_embedding_cap() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("Hub")
            .node("l1", Attributes::labeled("Leaf"))
            .node("l2", Attributes::labeled("Leaf"))
            .node("l3", Attributes::labeled("Leaf"))
            .edge("Hub", "l1")
            .edge("Hub", "l2")
            .edge("Hub", "l3")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("Hub")
            .labeled_node("Leaf")
            .edge("Hub", "Leaf", 1u32)
            .build()
            .unwrap();
        let cfg = IsoConfig {
            max_embeddings: 2,
            ..Default::default()
        };
        let out = subgraph_isomorphism_ullmann(&p, &g, &cfg);
        assert_eq!(out.count(), 2);
        assert!(out.truncated);
    }

    #[test]
    fn empty_pattern_has_one_empty_embedding() {
        let g = triangle_data();
        let p = PatternGraph::new();
        let out = subgraph_isomorphism_ullmann(&p, &g, &IsoConfig::default());
        assert_eq!(out.count(), 1);
        assert!(out.embeddings[0].nodes.is_empty());
    }

    #[test]
    fn triangle_pattern_in_triangle_graph() {
        let g = triangle_data();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B", 1u32)
            .edge("B", "C", 1u32)
            .edge("C", "A", 1u32)
            .build()
            .unwrap();
        let out = subgraph_isomorphism_ullmann(&p, &g, &IsoConfig::default());
        assert_eq!(out.count(), 1);
        assert!(out.embeddings[0].verify(&p, &g));
    }
}
