//! Log-bucketed histogram with bounded relative error.
//!
//! Layout (an "HDR-lite"): values `0..16` get one exact bucket each; every
//! power-of-two octave `[2^e, 2^(e+1))` for `e >= 4` is split into 16 linear
//! sub-buckets of width `2^(e-4)`. A value is therefore attributed to a
//! bucket whose inclusive upper bound overestimates it by at most `1/16`
//! (6.25%), which makes percentile extraction a certified upper bound
//! rather than a guess. The whole `u64` range fits in 976 buckets.

use crate::enabled;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// 16 exact buckets + 60 octaves x 16 sub-buckets.
pub const NUM_BUCKETS: usize = 976;

/// Bucket index for a value. Exact below 16, log-linear above.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as u64; // e >= 4
        (((e - 3) << 4) | ((v >> (e - 4)) & 15)) as usize
    }
}

/// Inclusive upper bound of bucket `i` — the value percentiles report.
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        let e = (i as u64 >> 4) + 3;
        let sub = i as u64 & 15;
        let low = (1u64 << e) + (sub << (e - 4));
        low + ((1u64 << (e - 4)) - 1)
    }
}

/// A thread-safe log-bucketed histogram (see module docs for the layout).
///
/// `record` is gated on [`crate::enabled`]; while observability is off it is
/// one relaxed load plus a branch.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Histogram {
    /// A fresh, empty histogram. Most callers obtain shared instances via
    /// [`crate::Scope::histogram`]; standalone ones are handy in tests and
    /// ad-hoc measurements.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: buckets.into_boxed_slice(),
        }
    }

    /// Record one value (no-op while disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start a drop-guard timer that records elapsed nanoseconds into this
    /// histogram. While disabled the guard holds no clock value and records
    /// nothing.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            hist: self,
            start: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (individual fields are read
    /// with relaxed loads; concurrent recording may skew count vs buckets
    /// by in-flight updates, which is fine for reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_bound(i), n))
                })
                .collect(),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A drop-guard timer created by [`Histogram::span`].
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Span<'_> {
    /// Stop the timer now and return elapsed nanoseconds (0 if disabled).
    pub fn finish(mut self) -> u64 {
        let ns = match self.start.take() {
            Some(t) => t.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            None => return 0,
        };
        self.hist.record(ns);
        ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.start.take() {
            self.hist
                .record(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// Point-in-time copy of a [`Histogram`]: sparse `(bucket upper bound,
/// count)` pairs in ascending bound order plus count/sum/min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Nearest-rank percentile, `q` in `[0, 1]`.
    ///
    /// Returns a certified upper bound on the true q-th percentile: the
    /// inclusive upper bound of the bucket holding the rank-`ceil(q*count)`
    /// value, clamped to the observed max. Overestimates by at most 1/16.
    /// Returns 0 on an empty snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// `p50`/`p99`/`p999` shorthand.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot into this one. Bucket-wise addition, so the
    /// operation is associative and commutative and the identity is
    /// [`HistogramSnapshot::empty`].
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let take_left = match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(a, _)), Some(&(b, _))) if a == b => {
                    merged.push((a, self.buckets[i].1 + other.buckets[j].1));
                    i += 1;
                    j += 1;
                    continue;
                }
                (Some(&(a, _)), Some(&(b, _))) => a < b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_left {
                merged.push(self.buckets[i]);
                i += 1;
            } else {
                merged.push(other.buckets[j]);
                j += 1;
            }
        }
        self.buckets = merged;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bound_agree() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bucket {i}");
        }
        assert_eq!(bucket_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn relative_error_bounded() {
        for &v in &[16u64, 17, 100, 1_000, 65_535, 1 << 40, u64::MAX - 1] {
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v);
            assert!(bound - v <= v / 16, "v={v} bound={bound}");
        }
    }
}
