//! Observability handles for the distance back-ends (scope `"oracle"`).
//!
//! Metric names are prefixed with the backend (`matrix.*` / `twohop.*`) so
//! both implementations report side by side in one scope. All counters here
//! are deterministic: repair outcomes, AFF1 sizes and label-query counts
//! depend only on the graph and the update stream, never on scheduling.

use gpm_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Per-backend maintenance metrics shared by matrix and 2-hop.
pub(crate) struct OracleMetrics {
    pub inserts: Arc<Counter>,
    pub deletes: Arc<Counter>,
    pub aff1_pairs: Arc<Counter>,
    pub aff1_size: Arc<Histogram>,
    pub apply_ns: Arc<Histogram>,
}

impl OracleMetrics {
    fn new(prefix: &str) -> Self {
        let scope = gpm_obs::registry().scope("oracle");
        OracleMetrics {
            inserts: scope.counter(&format!("{prefix}.inserts")),
            deletes: scope.counter(&format!("{prefix}.deletes")),
            aff1_pairs: scope.counter(&format!("{prefix}.aff1_pairs")),
            aff1_size: scope.histogram(&format!("{prefix}.aff1_size")),
            apply_ns: scope.histogram(&format!("{prefix}.apply_ns")),
        }
    }

    /// Account one repaired unit update and its AFF1 size.
    pub(crate) fn note_unit(&self, insert: bool, aff1_len: usize) {
        if !gpm_obs::enabled() {
            return;
        }
        if insert {
            self.inserts.inc();
        } else {
            self.deletes.inc();
        }
        self.aff1_pairs.add(aff1_len as u64);
        self.aff1_size.record(aff1_len as u64);
    }
}

pub(crate) fn matrix() -> &'static OracleMetrics {
    static M: OnceLock<OracleMetrics> = OnceLock::new();
    M.get_or_init(|| OracleMetrics::new("matrix"))
}

pub(crate) fn twohop() -> &'static OracleMetrics {
    static M: OnceLock<OracleMetrics> = OnceLock::new();
    M.get_or_init(|| OracleMetrics::new("twohop"))
}

/// 2-hop-specific metrics: label queries and delete-repair outcomes.
pub(crate) struct TwoHopMetrics {
    pub label_queries: Arc<Counter>,
    pub delete_noop: Arc<Counter>,
    pub delete_row_repair: Arc<Counter>,
    pub delete_rebuild: Arc<Counter>,
    /// Batches in which rebuild-demanding deletions were deferred into the
    /// single end-of-batch rebuild.
    pub batch_deferred: Arc<Counter>,
    pub rebuilds: Arc<Counter>,
    pub rebuild_ns: Arc<Histogram>,
    /// Label entries dropped by `prune_dominated`.
    pub pruned_labels: Arc<Counter>,
}

pub(crate) fn twohop_extra() -> &'static TwoHopMetrics {
    static M: OnceLock<TwoHopMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let scope = gpm_obs::registry().scope("oracle");
        TwoHopMetrics {
            label_queries: scope.counter("twohop.label_queries"),
            delete_noop: scope.counter("twohop.delete_noop"),
            delete_row_repair: scope.counter("twohop.delete_row_repair"),
            delete_rebuild: scope.counter("twohop.delete_rebuild"),
            batch_deferred: scope.counter("twohop.batch_deferred"),
            rebuilds: scope.counter("twohop.rebuilds"),
            rebuild_ns: scope.histogram("twohop.rebuild_ns"),
            pruned_labels: scope.counter("twohop.pruned_labels"),
        }
    })
}

/// Build-time metrics, recorded by [`crate::OracleBackend::build`].
pub(crate) struct BuildMetrics {
    pub builds: Arc<Counter>,
    pub build_ns: Arc<Histogram>,
}

pub(crate) fn build_metrics() -> &'static BuildMetrics {
    static M: OnceLock<BuildMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let scope = gpm_obs::registry().scope("oracle");
        BuildMetrics {
            builds: scope.counter("builds"),
            build_ns: scope.histogram("build_ns"),
        }
    })
}
