//! Result graphs — the compact representation of a maximum match.
//!
//! Section 2.2 ("Result graph"): given the maximum match `S` of `P` in `G`,
//! the result graph `G_r = (V_r, E_r)` has
//!
//! * `V_r` = the data nodes appearing in `S`, and
//! * an edge `(v1, v2) ∈ E_r` iff there is a pattern edge `(u1, u2)` with
//!   `(u1, v1) ∈ S` and `(u2, v2) ∈ S`.
//!
//! Unlike subgraph isomorphism — which may enumerate exponentially many
//! matched subgraphs — the result graph represents all matches succinctly
//! (its size is bounded by `|V|` nodes and `|V|²` edges). The appendix
//! reports `|G_r|` statistics; [`ResultGraph::node_count`] /
//! [`ResultGraph::edge_count`] feed that experiment.

use crate::match_relation::MatchRelation;
use gpm_graph::{DataGraph, EdgeBound, NodeId, PatternGraph, PatternNodeId};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// An edge of the result graph, annotated with the pattern edge(s) it
/// represents.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultEdge {
    /// Source data node.
    pub from: NodeId,
    /// Target data node.
    pub to: NodeId,
    /// The pattern edges `(u1, u2)` this result edge witnesses, with their
    /// bounds (an edge may witness several pattern edges).
    pub pattern_edges: Vec<(PatternNodeId, PatternNodeId, EdgeBound)>,
}

/// The result graph `G_r` of a maximum match.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultGraph {
    nodes: Vec<NodeId>,
    edges: Vec<ResultEdge>,
    /// For every data node in the result, the pattern nodes it matches.
    roles: FxHashMap<NodeId, Vec<PatternNodeId>>,
}

impl ResultGraph {
    /// Builds the result graph of `relation` (normally the maximum match
    /// computed by `Match`) for `pattern` over `graph`.
    pub fn build(pattern: &PatternGraph, graph: &DataGraph, relation: &MatchRelation) -> Self {
        let _ = graph; // the construction only needs the relation + pattern
        let nodes = relation.data_nodes();

        let mut roles: FxHashMap<NodeId, Vec<PatternNodeId>> = FxHashMap::default();
        for (u, v) in relation.iter_pairs() {
            roles.entry(v).or_default().push(u);
        }

        type WitnessList = Vec<(PatternNodeId, PatternNodeId, EdgeBound)>;
        let mut edge_map: FxHashMap<(NodeId, NodeId), WitnessList> = FxHashMap::default();
        for e in pattern.edges() {
            for &v1 in relation.matches_of(e.from) {
                for &v2 in relation.matches_of(e.to) {
                    edge_map
                        .entry((v1, v2))
                        .or_default()
                        .push((e.from, e.to, e.bound));
                }
            }
        }
        let mut edges: Vec<ResultEdge> = edge_map
            .into_iter()
            .map(|((from, to), pattern_edges)| ResultEdge {
                from,
                to,
                pattern_edges,
            })
            .collect();
        edges.sort_by_key(|e| (e.from, e.to));

        ResultGraph {
            nodes,
            edges,
            roles,
        }
    }

    /// The data nodes of the result graph, `V_r` (sorted).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edges of the result graph, `E_r` (sorted by endpoints).
    pub fn edges(&self) -> &[ResultEdge] {
        &self.edges
    }

    /// `|V_r|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// `|E_r|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The pattern nodes that data node `v` matches (empty if `v ∉ V_r`).
    pub fn roles_of(&self, v: NodeId) -> &[PatternNodeId] {
        self.roles.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the result graph is empty (no match).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Weakly connected components of the result graph, each returned as a
    /// sorted list of data nodes. The paper's Example 2.3 points out that one
    /// pattern node can be mapped to nodes in *different components* — this
    /// helper makes that visible.
    pub fn weakly_connected_components(&self) -> Vec<Vec<NodeId>> {
        let index_of: FxHashMap<NodeId, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for e in &self.edges {
            let a = index_of[&e.from];
            let b = index_of[&e.to];
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut components = Vec::new();
        for start in 0..self.nodes.len() {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            seen[start] = true;
            let mut comp = Vec::new();
            while let Some(i) = stack.pop() {
                comp.push(self.nodes[i]);
                for &j in &adj[i] {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
            comp.sort();
            components.push(comp);
        }
        components
    }

    /// A human-readable multi-line rendering, labelling each node with the
    /// pattern nodes it plays and each edge with the pattern edges it
    /// witnesses.
    pub fn render(&self, pattern: &PatternGraph, graph: &DataGraph) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "result graph: {} nodes, {} edges\n",
            self.node_count(),
            self.edge_count()
        ));
        for &v in &self.nodes {
            let roles: Vec<String> = self.roles_of(v).iter().map(|&u| pattern.name(u)).collect();
            out.push_str(&format!(
                "  {v} {} as [{}]\n",
                graph.attributes(v),
                roles.join(", ")
            ));
        }
        for e in &self.edges {
            let via: Vec<String> = e
                .pattern_edges
                .iter()
                .map(|(u1, u2, b)| format!("{}-[{}]->{}", pattern.name(*u1), b, pattern.name(*u2)))
                .collect();
            out.push_str(&format!("  {} -> {}  ({})\n", e.from, e.to, via.join(", ")));
        }
        out
    }

    /// The distinct pattern-node/data-node pairs represented, i.e. `|S|`.
    pub fn pair_count(&self) -> usize {
        self.roles.values().map(Vec::len).sum()
    }

    /// The set of data-graph edges `(v1, v2)` of the result graph that are
    /// also *direct* edges of the data graph (as opposed to bounded paths).
    pub fn direct_edges<'a>(
        &'a self,
        graph: &'a DataGraph,
    ) -> impl Iterator<Item = &'a ResultEdge> {
        self.edges.iter().filter(|e| graph.has_edge(e.from, e.to))
    }

    /// Set of pattern edges that are witnessed by at least one result edge.
    pub fn covered_pattern_edges(&self) -> FxHashSet<(PatternNodeId, PatternNodeId)> {
        self.edges
            .iter()
            .flat_map(|e| e.pattern_edges.iter().map(|&(a, b, _)| (a, b)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_simulation;
    use gpm_graph::{Attributes, DataGraphBuilder, PatternGraphBuilder, Predicate};

    /// Example 2.2/2.3-style instance: P2 over G2 (academic collaboration).
    fn p2_g2() -> (DataGraph, PatternGraph, MatchRelation) {
        // G2 nodes: DB, AI (dept=CS); Gen, Eco (dept=Bio); Med; Soc; Chem.
        let (g, _) = DataGraphBuilder::new()
            .node("DB", Attributes::labeled("DB").with("dept", "CS"))
            .node("AI", Attributes::labeled("AI").with("dept", "CS"))
            .node("Gen", Attributes::labeled("Gen").with("dept", "Bio"))
            .node("Eco", Attributes::labeled("Eco").with("dept", "Bio"))
            .node("Med", Attributes::labeled("Med").with("dept", "Med"))
            .node("Soc", Attributes::labeled("Soc").with("dept", "Soc"))
            .node("Chem", Attributes::labeled("Chem").with("dept", "Chem"))
            // A ring of collaborations making the paper's P2 matchable.
            .edge("DB", "Gen")
            .edge("Gen", "Eco")
            .edge("Eco", "Med")
            .edge("Med", "Soc")
            .edge("Soc", "DB")
            .edge("Gen", "Soc")
            .edge("Med", "DB")
            .edge("AI", "Chem")
            .edge("Chem", "AI")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .node("CS", Predicate::label_eq("dept", "CS"))
            .node("Bio", Predicate::label_eq("dept", "Bio"))
            .node("Med", Predicate::label_eq("dept", "Med"))
            .node("Soc", Predicate::label_eq("dept", "Soc"))
            .edge("CS", "Bio", 2u32)
            .edge("CS", "Soc", 3u32)
            .edge("Bio", "Soc", 2u32)
            .edge("Bio", "Med", 3u32)
            .unbounded_edge("Med", "CS")
            .build()
            .unwrap();
        let out = bounded_simulation(&p, &g);
        (g, p, out.relation)
    }

    #[test]
    fn result_graph_structure() {
        let (g, p, rel) = p2_g2();
        assert!(rel.is_match(&p));
        let r = ResultGraph::build(&p, &g, &rel);
        assert!(!r.is_empty());
        assert_eq!(r.node_count(), rel.data_nodes().len());
        assert_eq!(r.pair_count(), rel.pair_count());
        // Every result edge's endpoints play the roles of its pattern edge.
        for e in r.edges() {
            for &(u1, u2, _) in &e.pattern_edges {
                assert!(rel.contains(u1, e.from));
                assert!(rel.contains(u2, e.to));
            }
        }
        // Every pattern edge is covered (all pattern nodes are matched).
        assert_eq!(r.covered_pattern_edges().len(), p.edge_count());
    }

    #[test]
    fn empty_relation_gives_empty_result_graph() {
        let (g, p, _) = p2_g2();
        let empty = MatchRelation::empty(p.node_count());
        let r = ResultGraph::build(&p, &g, &empty);
        assert!(r.is_empty());
        assert_eq!(r.edge_count(), 0);
        assert_eq!(r.pair_count(), 0);
        assert!(r.weakly_connected_components().is_empty());
    }

    #[test]
    fn roles_and_render() {
        let (g, p, rel) = p2_g2();
        let r = ResultGraph::build(&p, &g, &rel);
        // Each matched data node has at least one role.
        for &v in r.nodes() {
            assert!(!r.roles_of(v).is_empty());
        }
        // A node not in the result graph has no role.
        let unmatched = g
            .nodes()
            .find(|v| !r.nodes().contains(v))
            .expect("AI/Chem are not matched");
        assert!(r.roles_of(unmatched).is_empty());
        let text = r.render(&p, &g);
        assert!(text.contains("result graph"));
        assert!(text.contains("->"));
    }

    #[test]
    fn weakly_connected_components_cover_all_nodes() {
        let (g, p, rel) = p2_g2();
        let r = ResultGraph::build(&p, &g, &rel);
        let comps = r.weakly_connected_components();
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, r.node_count());
    }

    #[test]
    fn direct_edges_subset() {
        let (g, p, rel) = p2_g2();
        let r = ResultGraph::build(&p, &g, &rel);
        let direct: Vec<_> = r.direct_edges(&g).collect();
        assert!(direct.len() <= r.edge_count());
        for e in direct {
            assert!(g.has_edge(e.from, e.to));
        }
    }
}
