//! Plain graph simulation (Henzinger, Henzinger & Kopke, FOCS 1995).
//!
//! Graph simulation is the special case of bounded simulation in which every
//! pattern edge is mapped edge-to-edge (bound 1) — Remark (2) in Section 2.2.
//! The paper cites its `O((|V| + |V_p|)(|E| + |E_p|))` complexity as the
//! reference point for `Match`; having a dedicated implementation lets the
//! test-suite confirm the "special case" claim and gives the benches a
//! baseline for the ablation study.
//!
//! The algorithm below is the standard HHK refinement specialised to a
//! pattern/data-graph pair: per pattern edge `(u, u')` and candidate `x` of
//! `u` we count the successors of `x` currently matching `u'`; when a node is
//! removed from `mat(u')` the counters of its graph-predecessors are
//! decremented and zero counters trigger further removals.

use crate::bounded_sim::{MatchOutcome, MatchStats};
use crate::match_relation::MatchRelation;
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};

/// Computes the maximum graph simulation of `pattern` in `graph`
/// (edge-to-edge semantics; edge bounds in the pattern are ignored).
pub fn graph_simulation(pattern: &PatternGraph, graph: &DataGraph) -> MatchOutcome {
    let np = pattern.node_count();
    let nv = graph.node_count();
    let mut stats = MatchStats::default();

    if np == 0 {
        return MatchOutcome::default();
    }

    let mut member: Vec<Vec<bool>> = vec![vec![false; nv]; np];
    let mut live: Vec<usize> = vec![0; np];
    for u in pattern.node_ids() {
        let needs_successor = pattern.out_degree(u) > 0;
        for v in graph.nodes_satisfying(pattern.predicate(u)) {
            if needs_successor && graph.out_degree(v) == 0 {
                continue;
            }
            member[u.index()][v.index()] = true;
            live[u.index()] += 1;
        }
        stats.initial_candidates += live[u.index()];
        if live[u.index()] == 0 {
            stats.failed_early = true;
            return MatchOutcome {
                relation: MatchRelation::empty(np),
                stats,
            };
        }
    }

    // counters[e][x] = number of successors of x currently in mat(to(e)).
    //
    // Counters are computed against the initial candidate sets; removals
    // detected during initialisation are deferred so every later removal of a
    // witness corresponds to exactly one decrement.
    let edges: Vec<_> = pattern.edges().copied().collect();
    let mut counters: Vec<Vec<u32>> = vec![vec![0; nv]; edges.len()];
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
    let mut pending: Vec<(PatternNodeId, NodeId)> = Vec::new();

    for (ei, e) in edges.iter().enumerate() {
        let from = e.from.index();
        let to = e.to.index();
        for x in 0..nv {
            if !member[from][x] {
                continue;
            }
            let xv = NodeId::new(x as u32);
            let count = graph
                .out_neighbors(xv)
                .iter()
                .filter(|y| member[to][y.index()])
                .count() as u32;
            counters[ei][x] = count;
            if count == 0 {
                pending.push((e.from, xv));
            }
        }
    }
    for (u, x) in pending {
        if member[u.index()][x.index()] {
            member[u.index()][x.index()] = false;
            live[u.index()] -= 1;
            stats.removed_candidates += 1;
            worklist.push((u, x));
            if live[u.index()] == 0 {
                stats.failed_early = true;
                return MatchOutcome {
                    relation: MatchRelation::empty(np),
                    stats,
                };
            }
        }
    }

    let mut in_edge_indices: Vec<Vec<usize>> = vec![Vec::new(); np];
    for (ei, e) in edges.iter().enumerate() {
        in_edge_indices[e.to.index()].push(ei);
    }

    while let Some((u, y)) = worklist.pop() {
        for &ei in &in_edge_indices[u.index()] {
            let e = &edges[ei];
            let parent = e.from.index();
            // Only graph-predecessors of y can lose a successor witness.
            for &x in graph.in_neighbors(y) {
                if !member[parent][x.index()] {
                    continue;
                }
                stats.counter_decrements += 1;
                debug_assert!(counters[ei][x.index()] > 0);
                counters[ei][x.index()] -= 1;
                if counters[ei][x.index()] == 0 {
                    member[parent][x.index()] = false;
                    live[parent] -= 1;
                    stats.removed_candidates += 1;
                    worklist.push((e.from, x));
                    if live[parent] == 0 {
                        stats.failed_early = true;
                        return MatchOutcome {
                            relation: MatchRelation::empty(np),
                            stats,
                        };
                    }
                }
            }
        }
    }

    let sets: Vec<Vec<NodeId>> = member
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(_x, &alive)| alive)
                .map(|(x, &_alive)| NodeId::new(x as u32))
                .collect()
        })
        .collect();
    MatchOutcome {
        relation: MatchRelation::from_sets(sets),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded_sim::bounded_simulation;
    use gpm_graph::{Attributes, DataGraphBuilder, EdgeBound, PatternGraphBuilder, Predicate};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    #[test]
    fn simple_simulation() {
        // a -> b, pattern A -> B: matches; pattern B -> A does not.
        let (g, names) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B")
            .build()
            .unwrap();
        let (p, pids) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B", 1u32)
            .build()
            .unwrap();
        let out = graph_simulation(&p, &g);
        assert!(out.is_match(&p));
        assert_eq!(out.relation.matches_of(pids["A"]), &[names["A"]]);
        assert_eq!(out.relation.matches_of(pids["B"]), &[names["B"]]);

        let (p2, _) = PatternGraphBuilder::new()
            .labeled_node("B")
            .labeled_node("A")
            .edge("B", "A", 1u32)
            .build()
            .unwrap();
        assert!(!graph_simulation(&p2, &g).is_match(&p2));
    }

    #[test]
    fn simulation_maps_one_pattern_node_to_many() {
        // Star: hub -> leaf1, leaf2; pattern Hub -> Leaf.
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("Hub")
            .node("l1", Attributes::labeled("Leaf"))
            .node("l2", Attributes::labeled("Leaf"))
            .edge("Hub", "l1")
            .edge("Hub", "l2")
            .build()
            .unwrap();
        let (p, pids) = PatternGraphBuilder::new()
            .labeled_node("Hub")
            .labeled_node("Leaf")
            .edge("Hub", "Leaf", 1u32)
            .build()
            .unwrap();
        let out = graph_simulation(&p, &g);
        assert_eq!(out.relation.matches_of(pids["Leaf"]).len(), 2);
    }

    #[test]
    fn cycle_pattern_requires_cycle_in_data() {
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B", 1u32)
            .edge("B", "A", 1u32)
            .build()
            .unwrap();

        // Data: a -> b (no edge back) — no simulation.
        let (g1, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B")
            .build()
            .unwrap();
        assert!(!graph_simulation(&p, &g1).is_match(&p));

        // Data: a <-> b — simulation exists.
        let (g2, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B")
            .edge("B", "A")
            .build()
            .unwrap();
        assert!(graph_simulation(&p, &g2).is_match(&p));
    }

    fn random_labelled_instance(seed: u64) -> (gpm_graph::DataGraph, gpm_graph::PatternGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = ["A", "B", "C"];
        let n = rng.gen_range(3..12usize);
        let mut g = gpm_graph::DataGraph::new();
        for _ in 0..n {
            g.add_node(Attributes::labeled(labels[rng.gen_range(0..labels.len())]));
        }
        for _ in 0..rng.gen_range(0..n * 3) {
            let a = NodeId::new(rng.gen_range(0..n as u32));
            let b = NodeId::new(rng.gen_range(0..n as u32));
            let _ = g.try_add_edge(a, b);
        }
        let mut p = gpm_graph::PatternGraph::new();
        let pn = rng.gen_range(1..4usize);
        for _ in 0..pn {
            p.add_node(Predicate::label(labels[rng.gen_range(0..labels.len())]));
        }
        for _ in 0..rng.gen_range(0..pn * 2) {
            let a = PatternNodeId::new(rng.gen_range(0..pn as u32));
            let b = PatternNodeId::new(rng.gen_range(0..pn as u32));
            if a != b {
                let _ = p.add_edge(a, b, EdgeBound::ONE);
            }
        }
        (g, p)
    }

    /// Remark (2) of Section 2.2: with unit bounds, bounded simulation and
    /// graph simulation coincide.
    #[test]
    fn coincides_with_bounded_simulation_on_unit_bounds() {
        for seed in 0..60u64 {
            let (g, p) = random_labelled_instance(seed);
            let sim = graph_simulation(&p, &g);
            let bounded = bounded_simulation(&p, &g);
            assert_eq!(sim.relation, bounded.relation, "seed {seed}");
        }
    }

    #[test]
    fn empty_pattern() {
        let g = gpm_graph::DataGraph::new();
        let p = gpm_graph::PatternGraph::new();
        let out = graph_simulation(&p, &g);
        assert_eq!(out.relation.pattern_node_count(), 0);
    }
}
