//! `IncrementalMatcher` — an owning facade over the incremental machinery.
//!
//! The paper's workflow is: "compute matches in `G` once, and then
//! incrementally maintain the matches when `G` is updated". This type bundles
//! everything that workflow needs — the pattern, the evolving data graph, the
//! maintained distance oracle and the match state — and routes updates to
//! `Match−` / `Match+` / `IncMatch` as appropriate. For the combinations the
//! incremental algorithms do not cover (insertions with cyclic patterns), it
//! falls back to recomputation so callers always end up in a consistent
//! state.
//!
//! The distance backend is pluggable: [`IncrementalMatcher::new`] reads
//! [`OracleBackend::from_env`] (`GPM_ORACLE`), and
//! [`IncrementalMatcher::with_backend`] selects one programmatically — the
//! paper's quadratic matrix or the sublinear-memory incremental 2-hop
//! labeling.

use crate::affected::IncrementalOutcome;
use crate::batch::inc_match_with;
use crate::delete::match_minus;
use crate::insert::match_plus;
use crate::state::MatchState;
use gpm_core::{MatchRelation, ResultGraph};
use gpm_distance::{DistanceOracle, EdgeUpdate, OracleBackend};
use gpm_exec::{Executor, Parallelism};
use gpm_graph::{DataGraph, GraphError, PatternGraph};

/// Owns a pattern, a data graph, a maintained distance oracle and the match
/// state, and keeps them consistent under edge updates.
pub struct IncrementalMatcher {
    pattern: PatternGraph,
    graph: DataGraph,
    oracle: Box<dyn DistanceOracle + Send + Sync>,
    state: MatchState,
    exec: Executor,
    recompute_fallbacks: usize,
}

impl Clone for IncrementalMatcher {
    fn clone(&self) -> Self {
        let oracle = self
            .oracle
            .clone_box()
            .unwrap_or_else(|| panic!("distance oracle `{}` is not cloneable", self.oracle.name()));
        IncrementalMatcher {
            pattern: self.pattern.clone(),
            graph: self.graph.clone(),
            oracle,
            state: self.state.clone(),
            exec: self.exec.clone(),
            recompute_fallbacks: self.recompute_fallbacks,
        }
    }
}

impl std::fmt::Debug for IncrementalMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalMatcher")
            .field("pattern", &self.pattern)
            .field("graph", &self.graph)
            .field("oracle", &self.oracle.name())
            .field("state", &self.state)
            .field("recompute_fallbacks", &self.recompute_fallbacks)
            .finish_non_exhaustive()
    }
}

impl IncrementalMatcher {
    /// Builds the matcher: computes the distance oracle and the initial
    /// maximum match (the "batch" phase). Uses the process-default
    /// [`Parallelism`] policy and the `GPM_ORACLE`-selected backend; see
    /// [`IncrementalMatcher::with_parallelism`] /
    /// [`IncrementalMatcher::with_backend`].
    pub fn new(pattern: PatternGraph, graph: DataGraph) -> Self {
        Self::with_parallelism(pattern, graph, Parallelism::from_env())
    }

    /// Builds the matcher with an explicit [`Parallelism`] policy, used for
    /// the initial oracle build and match, and for every subsequent update's
    /// affected-area repair. The backend comes from [`OracleBackend::from_env`].
    pub fn with_parallelism(
        pattern: PatternGraph,
        graph: DataGraph,
        parallelism: Parallelism,
    ) -> Self {
        Self::with_backend(pattern, graph, OracleBackend::from_env(), parallelism)
    }

    /// Builds the matcher on an explicitly selected distance backend.
    pub fn with_backend(
        pattern: PatternGraph,
        graph: DataGraph,
        backend: OracleBackend,
        parallelism: Parallelism,
    ) -> Self {
        let exec = Executor::new(parallelism);
        let oracle = backend.build(&graph, &exec);
        let state = MatchState::initialise_with(&pattern, &graph, oracle.as_ref(), &exec);
        IncrementalMatcher {
            pattern,
            graph,
            oracle,
            state,
            exec,
            recompute_fallbacks: 0,
        }
    }

    /// The pattern being maintained.
    pub fn pattern(&self) -> &PatternGraph {
        &self.pattern
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The maintained distance oracle.
    pub fn oracle(&self) -> &(dyn DistanceOracle + Send + Sync) {
        self.oracle.as_ref()
    }

    /// The current maximum match (`∅` if the pattern is not matched).
    pub fn relation(&self) -> MatchRelation {
        self.state.relation()
    }

    /// Whether the pattern currently matches the graph (`P ⊴ G`).
    pub fn is_match(&self) -> bool {
        self.state.all_matched()
    }

    /// The result graph of the current maximum match.
    pub fn result_graph(&self) -> ResultGraph {
        ResultGraph::build(&self.pattern, &self.graph, &self.relation())
    }

    /// How many times an update had to fall back to full recomputation
    /// (insertions with a cyclic pattern).
    pub fn recompute_fallbacks(&self) -> usize {
        self.recompute_fallbacks
    }

    /// Folds the data graph's CSR delta overlay back into its base arrays
    /// (see [`DataGraph::compact`]).
    ///
    /// Incremental updates deliberately leave per-node side lists behind
    /// instead of rebuilding the CSR layout on every edge change; calling
    /// this at a quiesce point (end of an update burst, before a read-heavy
    /// phase) restores fully contiguous neighbour iteration. Never required
    /// for correctness.
    pub fn compact_graph(&mut self) {
        self.graph.compact();
    }

    /// Applies a single edge update incrementally.
    ///
    /// Deletions use `Match−` (any pattern); insertions use `Match+` for DAG
    /// patterns and fall back to maintaining the matrix incrementally plus
    /// recomputing the match for cyclic patterns.
    pub fn apply(&mut self, update: EdgeUpdate) -> Result<IncrementalOutcome, GraphError> {
        match update {
            EdgeUpdate::Delete(a, b) => match_minus(
                &self.pattern,
                &mut self.graph,
                self.oracle.as_mut(),
                &mut self.state,
                a,
                b,
            ),
            EdgeUpdate::Insert(a, b) => {
                if self.pattern.is_dag() {
                    match_plus(
                        &self.pattern,
                        &mut self.graph,
                        self.oracle.as_mut(),
                        &mut self.state,
                        a,
                        b,
                    )
                } else {
                    self.graph.add_edge(a, b)?;
                    let aff1 = self.oracle.apply_insert(&self.graph, a, b, &self.exec);
                    self.recompute_state();
                    Ok(IncrementalOutcome::new(aff1, Default::default(), 0))
                }
            }
        }
    }

    /// Applies a batch of updates.
    ///
    /// DAG patterns use `IncMatch`; cyclic patterns maintain the oracle with
    /// `UpdateBM` and recompute the match.
    pub fn apply_batch(
        &mut self,
        updates: &[EdgeUpdate],
    ) -> Result<IncrementalOutcome, GraphError> {
        if self.pattern.is_dag() {
            return inc_match_with(
                &self.pattern,
                &mut self.graph,
                self.oracle.as_mut(),
                &mut self.state,
                updates,
                &self.exec,
            );
        }
        let mut applied = Vec::with_capacity(updates.len());
        for u in updates {
            if u.apply(&mut self.graph) {
                applied.push(*u);
            }
        }
        let aff1 = self.oracle.apply_batch(&self.graph, &applied, &self.exec);
        self.recompute_state();
        Ok(IncrementalOutcome::new(aff1, Default::default(), 0))
    }

    fn recompute_state(&mut self) {
        self.recompute_fallbacks += 1;
        crate::repair::metrics().recompute_fallbacks.inc();
        self.state = MatchState::initialise_with(
            &self.pattern,
            &self.graph,
            self.oracle.as_ref(),
            &self.exec,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_datagen::{random_graph, random_updates, RandomGraphConfig, UpdateStreamConfig};
    use gpm_graph::{NodeId, PatternGraphBuilder, Predicate};

    fn dag_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .node("z", Predicate::label("a2"))
            .edge("x", "y", 2u32)
            .edge("y", "z", 3u32)
            .build()
            .unwrap();
        p
    }

    fn cyclic_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .edge("x", "y", 2u32)
            .edge("y", "x", 2u32)
            .build()
            .unwrap();
        p
    }

    #[test]
    fn unit_updates_keep_matcher_consistent() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(5));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(30).with_seed(6));
        for u in updates {
            matcher.apply(u).unwrap();
            let recomputed = bounded_simulation_with_oracle(
                matcher.pattern(),
                matcher.graph(),
                matcher.oracle(),
            );
            assert_eq!(matcher.relation(), recomputed.relation);
        }
        assert_eq!(matcher.recompute_fallbacks(), 0);
    }

    #[test]
    fn batch_updates_keep_matcher_consistent() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(7));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(40).with_seed(8));
        let out = matcher.apply_batch(&updates).unwrap();
        assert_eq!(out.stats.aff1, out.aff1.len());
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.oracle());
        assert_eq!(matcher.relation(), recomputed.relation);
    }

    #[test]
    fn cyclic_pattern_falls_back_on_insertions() {
        let g = random_graph(&RandomGraphConfig::new(30, 60, 4).with_seed(9));
        let mut matcher = IncrementalMatcher::new(cyclic_pattern(), g.clone());
        // Deletion: incremental (Match− supports cyclic patterns).
        let (a, b) = g.edges().next().unwrap();
        matcher.apply(EdgeUpdate::Delete(a, b)).unwrap();
        assert_eq!(matcher.recompute_fallbacks(), 0);
        // Insertion: falls back to recomputation.
        let mut inserted = None;
        'outer: for x in g.nodes() {
            for y in g.nodes() {
                if !matcher.graph().has_edge(x, y) {
                    inserted = Some((x, y));
                    break 'outer;
                }
            }
        }
        let (x, y) = inserted.unwrap();
        matcher.apply(EdgeUpdate::Insert(x, y)).unwrap();
        assert_eq!(matcher.recompute_fallbacks(), 1);
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.oracle());
        assert_eq!(matcher.relation(), recomputed.relation);

        // Batch with a cyclic pattern also falls back but stays consistent.
        let updates = random_updates(matcher.graph(), &UpdateStreamConfig::mixed(10).with_seed(1));
        matcher.apply_batch(&updates).unwrap();
        assert_eq!(matcher.recompute_fallbacks(), 2);
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.oracle());
        assert_eq!(matcher.relation(), recomputed.relation);
    }

    #[test]
    fn compacting_between_update_bursts_preserves_consistency() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(21));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(24).with_seed(22));
        for (i, u) in updates.into_iter().enumerate() {
            matcher.apply(u).unwrap();
            if i % 8 == 7 {
                matcher.compact_graph();
                assert!(matcher.graph().is_compact());
                let recomputed = bounded_simulation_with_oracle(
                    matcher.pattern(),
                    matcher.graph(),
                    matcher.oracle(),
                );
                assert_eq!(matcher.relation(), recomputed.relation);
            }
        }
    }

    #[test]
    fn accessors_and_result_graph() {
        let g = random_graph(&RandomGraphConfig::new(25, 60, 3).with_seed(11));
        let matcher = IncrementalMatcher::new(dag_pattern(), g);
        assert_eq!(matcher.pattern().node_count(), 3);
        assert_eq!(matcher.graph().node_count(), 25);
        assert!(matcher.oracle().supports_incremental());
        assert!(matcher.oracle().memory_bytes() > 0);
        let rg = matcher.result_graph();
        if matcher.is_match() {
            assert!(!rg.is_empty());
        } else {
            assert!(rg.is_empty());
        }
        // Cloning duplicates the backend through `clone_box`.
        let copy = matcher.clone();
        assert_eq!(copy.relation(), matcher.relation());
        assert_eq!(copy.oracle().name(), matcher.oracle().name());
    }

    /// The matcher stays consistent on the two-hop backend, across unit and
    /// batch updates and both update directions.
    #[test]
    fn two_hop_backend_keeps_matcher_consistent() {
        use gpm_distance::OracleBackend;
        let g = random_graph(&RandomGraphConfig::new(35, 80, 4).with_seed(17));
        let mut matcher = IncrementalMatcher::with_backend(
            dag_pattern(),
            g.clone(),
            OracleBackend::TwoHop,
            Parallelism::sequential(),
        );
        assert_eq!(matcher.oracle().name(), "two-hop");
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(20).with_seed(18));
        for u in updates {
            matcher.apply(u).unwrap();
            let recomputed = bounded_simulation_with_oracle(
                matcher.pattern(),
                matcher.graph(),
                matcher.oracle(),
            );
            assert_eq!(matcher.relation(), recomputed.relation);
        }
        let more = random_updates(
            matcher.graph(),
            &UpdateStreamConfig::mixed(15).with_seed(19),
        );
        matcher.apply_batch(&more).unwrap();
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.oracle());
        assert_eq!(matcher.relation(), recomputed.relation);
        assert_eq!(matcher.recompute_fallbacks(), 0);
    }

    #[test]
    fn invalid_updates_propagate_errors() {
        let g = random_graph(&RandomGraphConfig::new(10, 20, 2).with_seed(13));
        let mut matcher = IncrementalMatcher::new(dag_pattern(), g.clone());
        // Delete a non-existent edge.
        let missing = {
            let mut found = None;
            'outer: for x in g.nodes() {
                for y in g.nodes() {
                    if !g.has_edge(x, y) {
                        found = Some((x, y));
                        break 'outer;
                    }
                }
            }
            found.unwrap()
        };
        assert!(matcher
            .apply(EdgeUpdate::Delete(missing.0, missing.1))
            .is_err());
        // Insert a node that does not exist.
        assert!(matcher
            .apply(EdgeUpdate::Insert(NodeId::new(999), NodeId::new(0)))
            .is_err());
    }
}
