//! Hostile-input tests: a live server fed garbage, torn frames, oversized
//! length fields, protocol violations and mid-catch-up disconnects must
//! fail each *connection* cleanly while the *service* behind it keeps
//! serving well-behaved clients with correct results.

use gpm_datagen::{random_graph, random_updates, RandomGraphConfig, UpdateStreamConfig};
use gpm_exec::Parallelism;
use gpm_graph::{PatternGraph, PatternGraphBuilder, Predicate};
use gpm_net::codec::{encode_message, read_message, ReadOutcome, MAX_FRAME_LEN};
use gpm_net::{
    ErrorCode, NetClient, NetError, NetServer, Request, Response, ServerHandle, ServerOptions,
    PROTOCOL_VERSION,
};
use gpm_service::MatchService;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

fn dag_pattern(labels: [&str; 2]) -> PatternGraph {
    let (p, _) = PatternGraphBuilder::new()
        .node("x", Predicate::label(labels[0]))
        .node("y", Predicate::label(labels[1]))
        .edge("x", "y", 2u32)
        .build()
        .unwrap();
    p
}

/// A served service over a small random graph.
fn serve() -> (ServerHandle, SocketAddr) {
    let g = random_graph(&RandomGraphConfig::new(60, 200, 4).with_seed(7));
    let svc = MatchService::with_parallelism(g, Parallelism::new(1));
    let server = NetServer::bind("127.0.0.1:0", svc, ServerOptions::default()).unwrap();
    let addr = server.local_addr().unwrap();
    (server.spawn().unwrap(), addr)
}

/// Exercises the full request vocabulary over a well-behaved client and
/// checks the results are coherent — run *after* each attack to prove the
/// service was not poisoned.
fn assert_service_healthy(addr: SocketAddr) {
    let mut c = NetClient::connect(addr).expect("healthy connect");
    c.ping().expect("healthy ping");
    let q = c.register(&dag_pattern(["a0", "a1"])).expect("register");
    let before = c.result(q).expect("result").expect("known query");

    // Apply a real batch; the relation stays consistent with the outcome.
    let g = random_graph(&RandomGraphConfig::new(60, 200, 4).with_seed(7));
    let updates = random_updates(&g, &UpdateStreamConfig::mixed(10).with_seed(3));
    let out = c.apply(&updates).expect("apply");
    assert!(out.applied <= updates.len() as u64);
    let after = c.result(q).expect("result").expect("known query");
    let changed = out.deltas.iter().any(|d| d.query.value() == q);
    if !changed {
        assert_eq!(before, after, "no delta for q{q} but its result moved");
    }
    assert!(c.deregister(q).expect("deregister"));
}

#[test]
fn garbage_bytes_fail_the_connection_not_the_service() {
    let (handle, addr) = serve();
    for seed in 0u8..4 {
        let mut raw = TcpStream::connect(addr).unwrap();
        let junk: Vec<u8> = (0..64u32)
            .map(|i| (i as u8).wrapping_mul(37) ^ seed)
            .collect();
        raw.write_all(&junk).unwrap();
        let _ = raw.shutdown(std::net::Shutdown::Write);
        // Whatever the server answered (a BadFrame error or a hang-up), it
        // must not accept the junk as a message.
        match read_message::<_, Response>(&mut raw) {
            Ok(ReadOutcome::Msg(Response::Error { code, .. }, _)) => {
                assert_eq!(code, ErrorCode::BadFrame)
            }
            Ok(ReadOutcome::Msg(other, _)) => panic!("junk produced a response: {other:?}"),
            Ok(ReadOutcome::Eof) | Err(_) => {}
        }
    }
    assert_service_healthy(addr);
    handle.shutdown();
}

#[test]
fn truncated_frame_is_rejected_and_service_survives() {
    let (handle, addr) = serve();
    // A valid handshake, then a frame cut off mid-payload.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(
        &encode_message(&Request::Hello {
            version: PROTOCOL_VERSION,
        })
        .unwrap(),
    )
    .unwrap();
    match read_message::<_, Response>(&mut raw).unwrap() {
        ReadOutcome::Msg(Response::HelloAck { .. }, _) => {}
        other => panic!("expected HelloAck, got {other:?}"),
    }
    let frame = encode_message(&Request::Ping).unwrap();
    raw.write_all(&frame[..frame.len() - 3]).unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    match read_message::<_, Response>(&mut raw) {
        Ok(ReadOutcome::Msg(Response::Error { code, .. }, _)) => {
            assert_eq!(code, ErrorCode::BadFrame)
        }
        Ok(ReadOutcome::Msg(other, _)) => panic!("torn frame produced {other:?}"),
        Ok(ReadOutcome::Eof) | Err(_) => {}
    }
    assert_service_healthy(addr);
    handle.shutdown();
}

#[test]
fn oversized_length_field_is_refused_without_allocation() {
    let (handle, addr) = serve();
    let mut raw = TcpStream::connect(addr).unwrap();
    // A length field claiming ~4 GiB; the server must refuse at the header.
    let mut evil = (u32::MAX - 7).to_le_bytes().to_vec();
    evil.extend_from_slice(&[0xAB; 4]);
    raw.write_all(&evil).unwrap();
    match read_message::<_, Response>(&mut raw) {
        Ok(ReadOutcome::Msg(Response::Error { code, message }, _)) => {
            assert_eq!(code, ErrorCode::BadFrame);
            assert!(message.contains("MAX_FRAME_LEN"), "got: {message}");
        }
        Ok(ReadOutcome::Msg(other, _)) => panic!("oversized len produced {other:?}"),
        Ok(ReadOutcome::Eof) | Err(_) => {}
    }
    // Also just over the cap, not just the absurd case.
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut evil = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    evil.extend_from_slice(&[0u8; 4]);
    raw.write_all(&evil).unwrap();
    let _ = read_message::<_, Response>(&mut raw);
    assert_service_healthy(addr);
    handle.shutdown();
}

#[test]
fn single_bit_garbled_payload_is_a_bad_frame() {
    let (handle, addr) = serve();
    let frame = encode_message(&Request::Hello {
        version: PROTOCOL_VERSION,
    })
    .unwrap();
    // Flip one bit at a few positions across header and payload.
    for pos in [0usize, 4, 8, frame.len() / 2, frame.len() - 1] {
        let mut garbled = frame.clone();
        garbled[pos] ^= 0x10;
        let mut raw = TcpStream::connect(addr).unwrap();
        raw.write_all(&garbled).unwrap();
        let _ = raw.shutdown(std::net::Shutdown::Write);
        match read_message::<_, Response>(&mut raw) {
            Ok(ReadOutcome::Msg(Response::Error { code, .. }, _)) => {
                assert_eq!(code, ErrorCode::BadFrame, "bit flip at {pos}")
            }
            Ok(ReadOutcome::Msg(other, _)) => {
                panic!("bit flip at {pos} produced a response: {other:?}")
            }
            Ok(ReadOutcome::Eof) | Err(_) => {}
        }
    }
    assert_service_healthy(addr);
    handle.shutdown();
}

#[test]
fn handshake_violations_are_explicit() {
    let (handle, addr) = serve();

    // First message is not Hello.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&encode_message(&Request::Ping).unwrap())
        .unwrap();
    match read_message::<_, Response>(&mut raw).unwrap() {
        ReadOutcome::Msg(Response::Error { code, .. }, _) => {
            assert_eq!(code, ErrorCode::BadHandshake)
        }
        other => panic!("expected BadHandshake, got {other:?}"),
    }

    // Wrong version.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&encode_message(&Request::Hello { version: 999 }).unwrap())
        .unwrap();
    match read_message::<_, Response>(&mut raw).unwrap() {
        ReadOutcome::Msg(Response::Error { code, .. }, _) => {
            assert_eq!(code, ErrorCode::UnsupportedVersion)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }

    // A second Hello after the handshake is a BadRequest, and the
    // connection stays usable afterwards.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(
        &encode_message(&Request::Hello {
            version: PROTOCOL_VERSION,
        })
        .unwrap(),
    )
    .unwrap();
    let ReadOutcome::Msg(Response::HelloAck { .. }, _) =
        read_message::<_, Response>(&mut raw).unwrap()
    else {
        panic!("expected HelloAck");
    };
    raw.write_all(
        &encode_message(&Request::Hello {
            version: PROTOCOL_VERSION,
        })
        .unwrap(),
    )
    .unwrap();
    let ReadOutcome::Msg(Response::Error { code, .. }, _) =
        read_message::<_, Response>(&mut raw).unwrap()
    else {
        panic!("expected Error");
    };
    assert_eq!(code, ErrorCode::BadRequest);
    raw.write_all(&encode_message(&Request::Ping).unwrap())
        .unwrap();
    let ReadOutcome::Msg(Response::Pong, _) = read_message::<_, Response>(&mut raw).unwrap() else {
        panic!("expected Pong after the survivable error");
    };

    assert_service_healthy(addr);
    handle.shutdown();
}

#[test]
fn subscribing_to_an_unknown_query_keeps_the_connection_usable() {
    let (handle, addr) = serve();
    let client = NetClient::connect(addr).unwrap();
    match client.subscribe(999_999_999) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownQuery),
        other => panic!("expected UnknownQuery, got {other:?}"),
    }
    assert_service_healthy(addr);
    handle.shutdown();
}

#[test]
fn mid_catchup_disconnect_does_not_poison_the_service() {
    let (handle, addr) = serve();
    let mut admin = NetClient::connect(addr).unwrap();
    let q = admin.register(&dag_pattern(["a0", "a1"])).unwrap();

    // Several subscribers connect, receive Subscribed (catch-up snapshot
    // queued server-side) and hang up immediately without reading it.
    for _ in 0..4 {
        let sub = NetClient::connect(addr).unwrap().subscribe(q).unwrap();
        drop(sub); // closes the socket with the snapshot still in flight
    }

    // The service keeps applying batches and serving live subscribers; the
    // dead subscribers' writer threads fail on their sockets and the pump
    // forgets them.
    let g = random_graph(&RandomGraphConfig::new(60, 200, 4).with_seed(7));
    let mut live = NetClient::connect(addr).unwrap().subscribe(q).unwrap();
    let snapshot = live.next().unwrap().expect("snapshot");
    let mut folded = snapshot.clone();
    for round in 0..3u64 {
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(12).with_seed(round + 40));
        let out = admin.apply(&updates).unwrap();
        for d in out.deltas.iter().filter(|d| d.query.value() == q) {
            let wire = live.next().unwrap().expect("live delta");
            assert_eq!(&wire, d, "live subscriber diverged after dead peers");
            folded = wire;
        }
    }
    let _ = folded;
    assert_service_healthy(addr);
    handle.shutdown();
}
