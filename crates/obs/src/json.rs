//! Minimal JSON writer so the crate stays dependency-free.
//!
//! Emits compact single-line JSON (objects, arrays, strings, unsigned
//! integers, booleans) with standard escaping — a strict subset of what any
//! JSON parser accepts, including the workspace's `serde_json`.

pub(crate) fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds one JSON object, tracking comma placement.
pub(crate) struct Obj<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> Obj<'a> {
    pub(crate) fn begin(out: &'a mut String) -> Self {
        out.push('{');
        Obj { out, first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_str(self.out, k);
        self.out.push(':');
    }

    pub(crate) fn uint(&mut self, k: &str, v: u64) {
        self.key(k);
        self.out.push_str(&v.to_string());
    }

    pub(crate) fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
    }

    pub(crate) fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        push_str(self.out, v);
    }

    /// Open a nested object under `k`; the caller finishes it.
    pub(crate) fn nested(&mut self, k: &str) -> Obj<'_> {
        self.key(k);
        Obj::begin(self.out)
    }

    /// `k: [[a, b], [a, b], ...]` — the shape bucket lists use.
    pub(crate) fn uint_pairs(&mut self, k: &str, pairs: &[(u64, u64)]) {
        self.key(k);
        self.out.push('[');
        for (i, (a, b)) in pairs.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&format!("[{a},{b}]"));
        }
        self.out.push(']');
    }

    pub(crate) fn end(self) {
        self.out.push('}');
    }
}
