//! Versioned on-disk snapshots of a [`crate::MatchService`].
//!
//! A snapshot folds the whole service state at one WAL position into a
//! directory the recovery path can load without replaying history:
//!
//! ```text
//! <root>/snapshot/
//!   MANIFEST.bin    framed (len+crc32) JSON Manifest
//!   graph.edges     byte-exact dataset edge list      (format = "dataset")
//!   graph.attrs     typed attribute CSV               (format = "dataset")
//!   graph.json      full graph JSON                   (format = "json")
//! ```
//!
//! The graph prefers the byte-exact dataset writers from `gpm_graph::dataset`
//! (human-inspectable, identical to the experiment fixtures); graphs whose
//! attributes the CSV schema cannot carry (conflicting column types, CSV
//! metacharacters) fall back to the JSON codec. The manifest records which,
//! plus a CRC-32 and length for every segment, the oracle-backend choice,
//! the service epoch, the WAL position (`next_seq`) the snapshot covers,
//! and the full catalog: per query its pattern, active flag, canonical
//! match-state encoding ([`gpm_incremental::MatchStateSnapshot`]) and last
//! emitted relation.
//!
//! ## Atomicity
//!
//! Snapshots are replaced with a rename dance so a crash at any point
//! leaves a loadable directory:
//!
//! 1. the new snapshot is materialised in `snapshot.tmp/` and fsynced;
//! 2. the current `snapshot/` (if any) is renamed to `snapshot.prev/`;
//! 3. `snapshot.tmp/` is renamed to `snapshot/`;
//! 4. `snapshot.prev/` is removed.
//!
//! The load path undoes whatever prefix of that dance a crash left
//! behind: a missing `snapshot/` with a surviving `snapshot.prev/` rolls
//! back, stale `.tmp`/`.prev` directories are cleaned up, and the WAL —
//! which is only truncated *after* the swap completes — still covers the
//! rolled-back state.

use crate::catalog::QueryCatalog;
use crate::delta::QueryId;
use crate::wal::{crc32, decode_frame_exact, encode_frame, DurabilityError};
use gpm_core::MatchRelation;
use gpm_distance::OracleBackend;
use gpm_graph::{dataset, io as graph_io, DataGraph, PatternGraph};
use gpm_incremental::{MatchState, MatchStateSnapshot};
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Name of the live snapshot directory under a durable service root.
pub const SNAPSHOT_DIR: &str = "snapshot";
/// Scratch directory a snapshot is materialised in before the atomic swap.
pub const SNAPSHOT_TMP_DIR: &str = "snapshot.tmp";
/// Name the previous snapshot holds during the swap window.
pub const SNAPSHOT_PREV_DIR: &str = "snapshot.prev";
/// The manifest file inside a snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST.bin";
/// Magic bytes opening every manifest (8 bytes, versioned).
pub const MANIFEST_MAGIC: &[u8; 8] = b"GPMSNAP1";
/// Current manifest schema version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// How the graph is persisted inside the snapshot directory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphFormat {
    /// `graph.edges` + `graph.attrs`, the byte-exact dataset pair.
    Dataset,
    /// `graph.json`, the full JSON codec (fallback for graphs the CSV
    /// attribute schema cannot represent).
    Json,
}

/// Integrity envelope of one graph segment file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name inside the snapshot directory.
    pub file: String,
    /// Byte length of the file.
    pub len: u64,
    /// CRC-32/IEEE of the file contents.
    pub crc: u32,
}

/// One query's persisted state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuerySnapshot {
    /// The query's stable id.
    pub id: u64,
    /// The registered pattern.
    pub pattern: PatternGraph,
    /// Whether the query participates in per-batch repair.
    pub active: bool,
    /// The materialised match state; `None` while suspended or awaiting
    /// lazy activation (exactly the in-memory convention).
    pub state: Option<MatchStateSnapshot>,
    /// The relation as of the last delta emission.
    pub emitted: MatchRelation,
}

/// The snapshot manifest: everything needed to reopen the service minus the
/// graph segment bytes themselves.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Manifest schema version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Service epoch at snapshot time.
    pub epoch: u64,
    /// The WAL sequence number the next record will carry: every record
    /// with `seq < next_seq` is already folded into this snapshot and is
    /// skipped on replay.
    pub next_seq: u64,
    /// Persisted oracle-backend choice ([`OracleBackend::name`]); reopening
    /// uses this, not the environment, so a service never silently changes
    /// backend across a restart.
    pub backend: String,
    /// The catalog's next query id (ids are never reused, even across
    /// restarts).
    pub next_query_id: u64,
    /// How the graph is encoded.
    pub graph_format: GraphFormat,
    /// The graph segment files with their integrity envelopes.
    pub segments: Vec<SegmentMeta>,
    /// Every registered query, in registration order.
    pub queries: Vec<QuerySnapshot>,
}

/// Encodes a manifest as magic + one checksummed frame.
pub fn encode_manifest(manifest: &Manifest) -> Result<Vec<u8>, DurabilityError> {
    let payload = serde_json::to_string(manifest)?;
    let mut bytes = MANIFEST_MAGIC.to_vec();
    bytes.extend_from_slice(&encode_frame(payload.as_bytes())?);
    Ok(bytes)
}

/// Strict inverse of [`encode_manifest`]: rejects bad magic, any
/// single-byte corruption (via the frame checksum), trailing bytes, and
/// unknown schema versions.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, DurabilityError> {
    if bytes.len() < MANIFEST_MAGIC.len() {
        return Err(DurabilityError::Corrupt(format!(
            "manifest of {} bytes is shorter than its magic",
            bytes.len()
        )));
    }
    let (magic, frame) = bytes.split_at(MANIFEST_MAGIC.len());
    if magic != MANIFEST_MAGIC {
        return Err(DurabilityError::Corrupt(format!(
            "bad manifest magic: expected {MANIFEST_MAGIC:?}, found {magic:?}"
        )));
    }
    let payload = decode_frame_exact(frame)?;
    let text = std::str::from_utf8(payload).map_err(|e| {
        DurabilityError::Codec(format!("checksum-valid manifest is not UTF-8: {e}"))
    })?;
    let manifest: Manifest = serde_json::from_str(text)?;
    if manifest.version != SNAPSHOT_VERSION {
        return Err(DurabilityError::Corrupt(format!(
            "unsupported snapshot version {} (this build reads {SNAPSHOT_VERSION})",
            manifest.version
        )));
    }
    Ok(manifest)
}

fn write_synced(path: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

fn sync_dir(path: &Path) -> Result<(), DurabilityError> {
    // Directory fsync commits the renames/creations themselves. Some
    // filesystems refuse to fsync a directory handle; that is a platform
    // limitation, not an application error, so it is tolerated.
    if let Ok(d) = File::open(path) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Serializes the graph, choosing the dataset pair when the attribute
/// schema can carry it and the JSON codec otherwise. Returns the format and
/// `(file name, contents)` segments.
fn encode_graph(
    graph: &DataGraph,
) -> Result<(GraphFormat, Vec<(String, String)>), DurabilityError> {
    match dataset::dataset_attrs_string(graph) {
        Ok(attrs) => Ok((
            GraphFormat::Dataset,
            vec![
                (
                    "graph.edges".to_string(),
                    dataset::dataset_edges_string(graph),
                ),
                ("graph.attrs".to_string(), attrs),
            ],
        )),
        Err(_) => {
            let json = graph_io::data_graph_to_json(graph)
                .map_err(|e| DurabilityError::Codec(format!("graph JSON encoding failed: {e}")))?;
            Ok((GraphFormat::Json, vec![("graph.json".to_string(), json)]))
        }
    }
}

fn decode_graph(dir: &Path, manifest: &Manifest) -> Result<DataGraph, DurabilityError> {
    let mut contents = Vec::with_capacity(manifest.segments.len());
    for seg in &manifest.segments {
        let path = dir.join(&seg.file);
        let mut bytes = Vec::new();
        File::open(&path)
            .map_err(|e| {
                DurabilityError::Corrupt(format!(
                    "snapshot segment {} is missing: {e}",
                    path.display()
                ))
            })?
            .read_to_end(&mut bytes)?;
        if bytes.len() as u64 != seg.len || crc32(&bytes) != seg.crc {
            return Err(DurabilityError::Corrupt(format!(
                "snapshot segment {} failed its integrity check ({} bytes, crc {:#010x}; manifest says {} bytes, crc {:#010x})",
                path.display(),
                bytes.len(),
                crc32(&bytes),
                seg.len,
                seg.crc
            )));
        }
        let text = String::from_utf8(bytes).map_err(|e| {
            DurabilityError::Corrupt(format!(
                "snapshot segment {} is not UTF-8: {e}",
                path.display()
            ))
        })?;
        contents.push((seg.file.as_str(), text));
    }
    let find = |name: &str| -> Result<&str, DurabilityError> {
        contents
            .iter()
            .find(|(f, _)| *f == name)
            .map(|(_, c)| c.as_str())
            .ok_or_else(|| DurabilityError::Corrupt(format!("manifest lists no {name} segment")))
    };
    match manifest.graph_format {
        GraphFormat::Dataset => {
            let (graph, _ids, _schema) =
                dataset::read_dataset_strs(find("graph.edges")?, find("graph.attrs")?).map_err(
                    |e| DurabilityError::Corrupt(format!("snapshot dataset did not parse: {e}")),
                )?;
            Ok(graph)
        }
        GraphFormat::Json => graph_io::data_graph_from_json(find("graph.json")?).map_err(|e| {
            DurabilityError::Corrupt(format!("snapshot graph JSON did not parse: {e}"))
        }),
    }
}

/// Materialises a complete snapshot of the service state under
/// `root/snapshot/`, atomically replacing any previous one (see the module
/// docs for the crash-safe rename dance).
pub(crate) fn write_snapshot(
    root: &Path,
    graph: &DataGraph,
    backend: OracleBackend,
    epoch: u64,
    next_seq: u64,
    catalog: &QueryCatalog,
) -> Result<(), DurabilityError> {
    let tmp = root.join(SNAPSHOT_TMP_DIR);
    let live = root.join(SNAPSHOT_DIR);
    let prev = root.join(SNAPSHOT_PREV_DIR);
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    fs::create_dir_all(&tmp)?;

    let (graph_format, segments) = encode_graph(graph)?;
    let mut segment_metas = Vec::with_capacity(segments.len());
    for (file, contents) in &segments {
        write_synced(&tmp.join(file), contents.as_bytes())?;
        segment_metas.push(SegmentMeta {
            file: file.clone(),
            len: contents.len() as u64,
            crc: crc32(contents.as_bytes()),
        });
    }
    let queries = catalog
        .iter()
        .map(|e| QuerySnapshot {
            id: e.id().value(),
            pattern: e.pattern().clone(),
            active: e.is_active(),
            state: e.state.as_ref().map(MatchState::to_snapshot),
            emitted: e.emitted.clone(),
        })
        .collect();
    let manifest = Manifest {
        version: SNAPSHOT_VERSION,
        epoch,
        next_seq,
        backend: backend.name().to_string(),
        next_query_id: catalog.next_id(),
        graph_format,
        segments: segment_metas,
        queries,
    };
    write_synced(&tmp.join(MANIFEST_FILE), &encode_manifest(&manifest)?)?;
    sync_dir(&tmp)?;

    // The swap. Every intermediate state is recoverable by load_snapshot.
    if prev.exists() {
        fs::remove_dir_all(&prev)?;
    }
    if live.exists() {
        fs::rename(&live, &prev)?;
    }
    fs::rename(&tmp, &live)?;
    sync_dir(root)?;
    if prev.exists() {
        fs::remove_dir_all(&prev)?;
    }
    Ok(())
}

/// A loaded snapshot: the decoded manifest plus the reconstructed graph.
#[derive(Debug)]
pub(crate) struct LoadedSnapshot {
    pub manifest: Manifest,
    pub graph: DataGraph,
}

/// Loads the live snapshot under `root`, first rolling back any
/// half-finished swap a crash left behind (missing `snapshot/` with a
/// surviving `snapshot.prev/`) and clearing stale scratch directories.
pub(crate) fn load_snapshot(root: &Path) -> Result<LoadedSnapshot, DurabilityError> {
    let live = root.join(SNAPSHOT_DIR);
    let prev = root.join(SNAPSHOT_PREV_DIR);
    let tmp = root.join(SNAPSHOT_TMP_DIR);
    if !live.exists() && prev.exists() {
        // Crashed between renaming the old snapshot away and promoting the
        // new one: the WAL was not yet truncated, so the old snapshot plus
        // the full log is still a consistent state. Roll back.
        fs::rename(&prev, &live)?;
        sync_dir(root)?;
    }
    if tmp.exists() {
        fs::remove_dir_all(&tmp)?;
    }
    if prev.exists() {
        fs::remove_dir_all(&prev)?;
    }
    if !live.exists() {
        return Err(DurabilityError::State(format!(
            "{} has no snapshot directory — not a durable service root (create_durable never completed here?)",
            root.display()
        )));
    }
    let mut bytes = Vec::new();
    File::open(live.join(MANIFEST_FILE))?.read_to_end(&mut bytes)?;
    let manifest = decode_manifest(&bytes)?;
    let graph = decode_graph(&live, &manifest)?;
    Ok(LoadedSnapshot { manifest, graph })
}

/// Rebuilds the in-memory catalog from a manifest, validating every
/// persisted state against the recovered graph and its pattern.
pub(crate) fn restore_catalog(
    manifest: &Manifest,
    graph: &DataGraph,
) -> Result<QueryCatalog, DurabilityError> {
    let mut entries = Vec::with_capacity(manifest.queries.len());
    for q in &manifest.queries {
        let np = q.pattern.node_count();
        if q.emitted.pattern_node_count() != np {
            return Err(DurabilityError::Corrupt(format!(
                "query q{}: emitted relation has {} pattern nodes, pattern has {np}",
                q.id,
                q.emitted.pattern_node_count()
            )));
        }
        let state = match &q.state {
            None => None,
            Some(snap) => {
                if snap.nodes != graph.node_count() {
                    return Err(DurabilityError::Corrupt(format!(
                        "query q{}: state snapshot is over {} data nodes, graph has {}",
                        q.id,
                        snap.nodes,
                        graph.node_count()
                    )));
                }
                if snap.satisfies.len() != np {
                    return Err(DurabilityError::Corrupt(format!(
                        "query q{}: state snapshot has {} pattern rows, pattern has {np}",
                        q.id,
                        snap.satisfies.len()
                    )));
                }
                Some(
                    MatchState::from_snapshot(snap)
                        .map_err(|e| DurabilityError::Corrupt(format!("query q{}: {e}", q.id)))?,
                )
            }
        };
        entries.push(QueryCatalog::restored_entry(
            QueryId(q.id),
            q.pattern.clone(),
            state,
            q.emitted.clone(),
            q.active,
        ));
    }
    QueryCatalog::restore(manifest.next_query_id, entries).map_err(DurabilityError::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> Manifest {
        Manifest {
            version: SNAPSHOT_VERSION,
            epoch: 12,
            next_seq: 40,
            backend: "matrix".to_string(),
            next_query_id: 3,
            graph_format: GraphFormat::Dataset,
            segments: vec![SegmentMeta {
                file: "graph.edges".to_string(),
                len: 17,
                crc: 0xDEAD_BEEF,
            }],
            queries: vec![QuerySnapshot {
                id: 2,
                pattern: gpm_graph::PatternGraphBuilder::new()
                    .labeled_node("a")
                    .labeled_node("b")
                    .edge("a", "b", 2u32)
                    .build()
                    .unwrap()
                    .0,
                active: false,
                state: None,
                emitted: MatchRelation::empty(2),
            }],
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample_manifest();
        let bytes = encode_manifest(&m).unwrap();
        assert_eq!(decode_manifest(&bytes).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_single_byte_corruption() {
        let bytes = encode_manifest(&sample_manifest()).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                decode_manifest(&bad).is_err(),
                "corrupting manifest byte {i} went undetected"
            );
        }
    }

    #[test]
    fn manifest_rejects_future_version() {
        let mut m = sample_manifest();
        m.version = SNAPSHOT_VERSION + 1;
        let bytes = encode_manifest(&m).unwrap();
        assert!(matches!(
            decode_manifest(&bytes),
            Err(DurabilityError::Corrupt(_))
        ));
    }
}
