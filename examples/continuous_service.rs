//! Continuous fraud monitoring with the `gpm-service` layer.
//!
//! A payments graph evolves while three standing patterns watch it: a fan-in
//! mule pattern, a layering chain, and a (cyclic) round-trip pattern. All
//! three share one data graph and one distance matrix inside
//! [`gpm::MatchService`]; every update batch computes the affected area once
//! and repairs each query from it, and subscribers receive only the pairs
//! that entered or left their result.
//!
//! Run with `cargo run --example continuous_service`.

use gpm::{fold_deltas, DataGraphBuilder, EdgeUpdate, MatchService, PatternGraphBuilder, QueryId};

fn main() {
    // A small payments graph: two source accounts, two intermediaries, one
    // collection account. More edges will stream in below.
    let (graph, ids) = DataGraphBuilder::new()
        .labeled_node("src1")
        .labeled_node("src2")
        .labeled_node("mule1")
        .labeled_node("mule2")
        .labeled_node("sink")
        .edge("src1", "mule1")
        .edge("src2", "mule2")
        .build()
        .unwrap();
    // Give the service something to label-match on.
    let mut graph = graph;
    for (name, label) in [
        ("src1", "account"),
        ("src2", "account"),
        ("mule1", "mule"),
        ("mule2", "mule"),
        ("sink", "collector"),
    ] {
        graph.attributes_mut(ids[name]).set("label", label);
    }

    let mut svc = MatchService::new(graph);

    // Standing query 1: an account funnelling to a collector within 2 hops.
    let (funnel, _) = PatternGraphBuilder::new()
        .labeled_node("account")
        .labeled_node("collector")
        .edge("account", "collector", 2u32)
        .build()
        .unwrap();
    // Standing query 2: a full layering chain account -> mule -> collector.
    let (chain, _) = PatternGraphBuilder::new()
        .labeled_node("account")
        .labeled_node("mule")
        .labeled_node("collector")
        .edge("account", "mule", 1u32)
        .edge("mule", "collector", 1u32)
        .build()
        .unwrap();
    // Standing query 3 (cyclic): money that comes back — account and mule
    // reachable from each other. The service maintains cyclic patterns too,
    // falling back to per-query recomputation only when a batch shortens
    // distances.
    let (round_trip, _) = PatternGraphBuilder::new()
        .labeled_node("account")
        .labeled_node("mule")
        .edge("account", "mule", 2u32)
        .edge("mule", "account", 2u32)
        .build()
        .unwrap();

    let q_funnel = svc.register(funnel);
    let q_chain = svc.register(chain);
    let q_round = svc.register(round_trip);
    let names = |q: QueryId| match q {
        q if q == q_funnel => "funnel",
        q if q == q_chain => "chain",
        q if q == q_round => "round-trip",
        _ => "?",
    };

    // Follow the chain query's delta stream.
    let chain_sub = svc.subscribe(q_chain).unwrap();

    println!("three standing queries registered; streaming updates...\n");
    let batches: Vec<(&str, Vec<EdgeUpdate>)> = vec![
        (
            "mules forward to the collection account",
            vec![
                EdgeUpdate::Insert(ids["mule1"], ids["sink"]),
                EdgeUpdate::Insert(ids["mule2"], ids["sink"]),
            ],
        ),
        (
            "kickback: sink wires back to src1",
            vec![EdgeUpdate::Insert(ids["sink"], ids["src1"])],
        ),
        (
            "mule1's forwarding edge is taken down",
            vec![EdgeUpdate::Delete(ids["mule1"], ids["sink"])],
        ),
    ];

    for (label, batch) in batches {
        let out = svc.apply(&batch);
        println!("batch {} ({label}):", out.epoch);
        if out.deltas.is_empty() {
            println!("  no result changes");
        }
        for d in &out.deltas {
            println!(
                "  {}: +{} pairs, -{} pairs",
                names(d.query),
                d.added.len(),
                d.removed.len()
            );
        }
    }

    // The subscriber's fold equals the live result — deltas are lossless.
    let folded = fold_deltas(3, chain_sub.drain().iter());
    assert_eq!(folded, svc.result(q_chain).unwrap());
    println!(
        "\nchain query result ({} pairs) reconstructed exactly from its delta stream",
        folded.pair_count()
    );
    println!(
        "shared AFF computations: {} (one per effective batch, however many queries)",
        svc.stats().aff_computations
    );
}
