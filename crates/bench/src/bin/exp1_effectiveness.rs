//! Exp-1 (effectiveness): bounded simulation vs subgraph isomorphism on the
//! simulated YouTube graph (or a real on-disk dataset via
//! `--dataset-dir`/`--dataset`).
//!
//! The paper generates 20 patterns, runs `Match` and `SubIso` on each, and
//! reports (a) how many patterns SubIso fails on entirely while Match still
//! finds sensible communities, and (b) the average number of matches per
//! pattern node for both approaches.

use gpm::{
    bounded_simulation_with_oracle, generate_pattern, subgraph_isomorphism_ullmann, IsoConfig,
    PatternGenConfig,
};
use gpm_bench::{fmt_ms, load_source_or_exit, time, HarnessArgs, Subject, Table};

fn main() {
    let args = HarnessArgs::from_env();
    let pattern_count = args.patterns.max(20);
    let source = args.update_source_or_exit();
    let graph = load_source_or_exit(&source, &args);
    let subject = Subject::new(graph);
    println!(
        "{}: |V| = {}, |E| = {}, distance matrix built in {} ms [{}]\n",
        source.name(),
        subject.graph.node_count(),
        subject.graph.edge_count(),
        fmt_ms(subject.matrix_build_time),
        source.describe(args.scale)
    );

    let mut table = Table::new(
        format!("Exp-1: Match vs SubIso over {pattern_count} generated patterns"),
        &[
            "pattern",
            "Match pairs",
            "Match per-node",
            "SubIso embeddings",
            "SubIso per-node",
            "Match ms",
            "SubIso ms",
        ],
    );

    let mut subiso_failures = 0usize;
    let mut match_failures = 0usize;
    let mut sum_match_per_node = 0.0;
    let mut sum_subiso_per_node = 0.0;

    for i in 0..pattern_count {
        // Small patterns with k <= 4, as in the experiment; bound 1 edges are
        // common which favours SubIso.
        let cfg = PatternGenConfig::new(4, 4, 4).with_seed(args.seed + i as u64);
        let (pattern, _) = generate_pattern(&subject.graph, &cfg);

        let (outcome, match_time) =
            time(|| bounded_simulation_with_oracle(&pattern, &subject.graph, &subject.matrix));
        let (iso, iso_time) =
            time(|| subgraph_isomorphism_ullmann(&pattern, &subject.graph, &IsoConfig::default()));

        let match_per_node = outcome.relation.average_matches_per_pattern_node();
        let subiso_per_node = iso.average_images_per_pattern_node(&pattern);
        sum_match_per_node += match_per_node;
        sum_subiso_per_node += subiso_per_node;
        if !iso.is_match() {
            subiso_failures += 1;
        }
        if !outcome.relation.is_match(&pattern) {
            match_failures += 1;
        }

        table.row(vec![
            format!("P#{i:02}(4,4,<=4)"),
            outcome.relation.pair_count().to_string(),
            format!("{match_per_node:.1}"),
            iso.count().to_string(),
            format!("{subiso_per_node:.1}"),
            fmt_ms(match_time),
            fmt_ms(iso_time),
        ]);
    }
    table.print();

    println!(
        "summary: SubIso found no embedding for {subiso_failures}/{pattern_count} patterns \
         (Match unmatched: {match_failures}/{pattern_count});"
    );
    println!(
        "average matches per pattern node: Match {:.1} vs SubIso {:.1}",
        sum_match_per_node / pattern_count as f64,
        sum_subiso_per_node / pattern_count as f64
    );
    println!(
        "paper reference: SubIso failed on 2/20 patterns; Match found ~5-9 matches per pattern \
         node vs 1 for SubIso."
    );
}
