//! `gpm-obs` — zero-dependency runtime observability for the gpm workspace.
//!
//! The crate provides four primitives and one process-global anchor:
//!
//! * [`Counter`] — a relaxed `AtomicU64` event counter, tagged at creation
//!   as *deterministic* (value must be bit-identical at any `GPM_THREADS`)
//!   or not (scheduling-dependent, e.g. work steals).
//! * [`Histogram`] — a log-bucketed latency/size histogram: values `< 16`
//!   are exact, larger values land in one of 16 linear sub-buckets per
//!   power-of-two octave, so every recorded value is reported with at most
//!   `1/16` relative error and percentiles come back as certified upper
//!   bounds (see [`HistogramSnapshot::percentile`]).
//! * [`Span`] — a drop-guard timer that records elapsed nanoseconds into a
//!   histogram when it goes out of scope.
//! * [`registry()`] — the process-global [`Registry`] of named per-subsystem
//!   [`Scope`]s (`"match"`, `"oracle"`, `"exec"`, `"wal"`, …), with a
//!   human-readable [`Registry::report`] and a machine-readable JSONL sink.
//!
//! # The gate
//!
//! Everything is behind one runtime flag: the `GPM_OBS` environment variable
//! (`1`/`true`/`on`/`yes`) or an explicit [`set_enabled`] call. When the
//! flag is off, [`Counter::add`], [`Histogram::record`] and
//! [`Histogram::span`] reduce to a single relaxed atomic load plus a
//! predictable branch — no clock reads, no stores — so instrumented hot
//! paths cost nothing measurable (BENCHMARKS.md batch 7 records the delta).
//!
//! # Sinks
//!
//! [`Registry::report`] renders the hierarchy as indented text.
//! [`Registry::export_snapshot`] and [`emit_event`] append single-line JSON
//! records to the file named by `GPM_OBS_OUT` (or [`set_out_path`]); the
//! writer is hand-rolled so this crate stays dependency-free, and the output
//! is plain JSON that any parser (including the workspace's `serde_json`)
//! round-trips.
//!
//! # Example
//!
//! ```
//! gpm_obs::set_enabled(true);
//! let scope = gpm_obs::registry().scope("demo");
//! let waves = scope.counter("waves");           // deterministic counter
//! let lat = scope.histogram("batch_ns");
//!
//! for _ in 0..3 {
//!     let _span = lat.span();                   // records on drop
//!     waves.inc();
//! }
//!
//! assert_eq!(waves.get(), 3);
//! let snap = lat.snapshot();
//! assert_eq!(snap.count, 3);
//! assert!(snap.percentile(0.50) >= snap.min);
//! let text = gpm_obs::registry().report();
//! assert!(text.contains("demo") && text.contains("waves"));
//! ```

mod hist;
mod json;
mod registry;

pub use hist::{Histogram, HistogramSnapshot, Span, NUM_BUCKETS};
pub use registry::{
    emit_event, fmt_ns, registry, set_out_path, CounterSnapshot, Registry, RegistrySnapshot, Scope,
    ScopeSnapshot,
};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether observability is on. The first call resolves `GPM_OBS` from the
/// environment; afterwards this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_UNINIT => init_from_env(),
        state => state == STATE_ON,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("GPM_OBS").ok().as_deref(),
        Some("1") | Some("true") | Some("on") | Some("yes")
    );
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Programmatically enable/disable observability (overrides `GPM_OBS`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// A monotone event counter.
///
/// Counters are created through [`Scope::counter`] (deterministic — the
/// final value must not depend on thread count or scheduling) or
/// [`Scope::nondet_counter`] (scheduling-dependent). The flag is carried
/// into snapshots so determinism checks can filter on it.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    deterministic: bool,
}

impl Counter {
    pub(crate) fn new(deterministic: bool) -> Self {
        Counter {
            value: AtomicU64::new(0),
            deterministic,
        }
    }

    /// Add `n` events. A no-op (one load + branch) while disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Whether this counter's value is independent of scheduling.
    pub fn is_deterministic(&self) -> bool {
        self.deterministic
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}
