//! Fig. 6(d) — flexibility: the impact of adding pattern edges.
//!
//! Synthetic graph (paper: 20K nodes, 40K edges, 2K distinct attributes);
//! patterns P(|Vp|, E, 9) for |Vp| ∈ {4, 6, 8, 10, 12}. Starting from the
//! positive spanning structure (|Vp| - 1 edges), 1..8 extra edges are added;
//! the y-axis reports how much of the pattern still finds matches.

use gpm::{
    bounded_simulation_with_oracle, generate_pattern, random_graph, PatternGenConfig,
    RandomGraphConfig,
};
use gpm_bench::{HarnessArgs, Subject, Table};

fn main() {
    let args = HarnessArgs::from_env();
    let nodes = args.scaled(20_000);
    let edges = args.scaled(40_000);
    let graph = random_graph(
        &RandomGraphConfig::new(nodes, edges, 2_000.min(nodes / 10).max(4)).with_seed(args.seed),
    );
    let subject = Subject::new(graph);
    println!(
        "synthetic graph: |V| = {}, |E| = {}\n",
        subject.graph.node_count(),
        subject.graph.edge_count()
    );

    let mut table = Table::new(
        "Fig. 6(d): matches vs number of pattern edges added (avg over patterns)",
        &[
            "edges added",
            "P(4,E,9)",
            "P(6,E,9)",
            "P(8,E,9)",
            "P(10,E,9)",
            "P(12,E,9)",
        ],
    );

    for added in 1..=8usize {
        let mut cells = vec![added.to_string()];
        for &vp in &[4usize, 6, 8, 10, 12] {
            let mut matched_pairs = 0usize;
            for rep in 0..args.patterns {
                let cfg = PatternGenConfig::new(vp, (vp - 1) + added, 9)
                    .with_seed(args.seed + (vp * 1_000 + rep) as u64);
                let (pattern, _) = generate_pattern(&subject.graph, &cfg);
                let outcome =
                    bounded_simulation_with_oracle(&pattern, &subject.graph, &subject.matrix);
                matched_pairs += outcome.relation.pair_count();
            }
            cells.push((matched_pairs / args.patterns).to_string());
        }
        table.row(cells);
    }
    table.print();
    println!(
        "paper reference: with 1 extra edge every pattern matches; by ~8 extra edges most\n\
         patterns stop matching — each added edge is an extra constraint."
    );
}
