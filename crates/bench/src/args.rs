//! Minimal command-line argument handling shared by the experiment binaries.
//!
//! Only a handful of flags are needed (`--scale`, `--seed`, `--patterns`,
//! `--threads`, `--oracle`, `--dataset-dir`, `--dataset`, `--obs`,
//! `--obs-out`), so a tiny hand-rolled parser keeps the harness free of CLI
//! dependencies.

use gpm::{Dataset, DatasetSource, OracleBackend, Parallelism};
use std::path::PathBuf;

/// Common harness arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct HarnessArgs {
    /// Fraction of the paper's dataset sizes to generate.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of random patterns to average over.
    pub patterns: usize,
    /// Worker threads for the parallel runtime (`0` = process default:
    /// `GPM_THREADS` or all available cores). Lets the Fig. 6(f)–(h)
    /// experiments sweep 1→8 cores from the command line.
    pub threads: usize,
    /// The distance backend every matcher/service in the experiment runs on
    /// (`--oracle matrix|two-hop`; defaults to the `GPM_ORACLE` environment
    /// variable, i.e. `matrix` when unset).
    pub oracle: OracleBackend,
    /// Directory of on-disk datasets (`<name>.edges` + optional
    /// `<name>.attrs`, see `gpm::graph::dataset`). When set, experiments run
    /// on the real files instead of the synthetic stand-ins.
    pub dataset_dir: Option<PathBuf>,
    /// Restrict to one dataset by name (an on-disk file stem when
    /// `--dataset-dir` is set, otherwise `Matter`/`PBlog`/`YouTube`,
    /// case-insensitive).
    pub dataset: Option<String>,
    /// Per-curve wall-clock budget in milliseconds for baselines with
    /// exponential worst cases (VF2 in the Fig. 6(b) sweep): once a
    /// pattern-size's accumulated baseline time crosses the budget, larger
    /// sizes skip that baseline instead of hanging the harness.
    pub cutoff_ms: u64,
    /// Enables the `gpm-obs` observability layer for this run (`--obs`,
    /// equivalent to `GPM_OBS=1`): binaries that support it print a
    /// `Registry::report()` dump after their tables.
    pub obs: bool,
    /// JSONL sink path for `gpm-obs` events and snapshots (`--obs-out`,
    /// equivalent to `GPM_OBS_OUT`). Implies `--obs`.
    pub obs_out: Option<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.25,
            seed: 2010,
            patterns: 5,
            threads: 0,
            oracle: OracleBackend::from_env(),
            dataset_dir: None,
            dataset: None,
            cutoff_ms: 2_000,
            obs: false,
            obs_out: None,
        }
    }
}

impl HarnessArgs {
    /// Parses the harness flags from an iterator of arguments (unknown
    /// arguments are reported with an error message).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut take_value = |name: &str| {
                iter.next()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--scale" => {
                    out.scale = take_value("--scale")?
                        .parse()
                        .map_err(|e| format!("invalid --scale: {e}"))?;
                }
                "--seed" => {
                    out.seed = take_value("--seed")?
                        .parse()
                        .map_err(|e| format!("invalid --seed: {e}"))?;
                }
                "--patterns" => {
                    out.patterns = take_value("--patterns")?
                        .parse()
                        .map_err(|e| format!("invalid --patterns: {e}"))?;
                }
                "--threads" => {
                    out.threads = take_value("--threads")?
                        .parse()
                        .map_err(|e| format!("invalid --threads: {e}"))?;
                }
                "--oracle" => {
                    out.oracle = OracleBackend::parse(&take_value("--oracle")?)
                        .map_err(|e| format!("invalid --oracle: {e}"))?;
                }
                "--dataset-dir" => {
                    out.dataset_dir = Some(PathBuf::from(take_value("--dataset-dir")?));
                }
                "--dataset" => {
                    out.dataset = Some(take_value("--dataset")?);
                }
                "--cutoff-ms" => {
                    out.cutoff_ms = take_value("--cutoff-ms")?
                        .parse()
                        .map_err(|e| format!("invalid --cutoff-ms: {e}"))?;
                }
                "--obs" => {
                    out.obs = true;
                }
                "--obs-out" => {
                    out.obs_out = Some(PathBuf::from(take_value("--obs-out")?));
                    out.obs = true;
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: <experiment> [--scale <f>] [--seed <n>] [--patterns <n>] \
                         [--threads <n>] [--oracle matrix|two-hop] [--dataset-dir <path>] \
                         [--dataset <name>] [--cutoff-ms <n>] [--obs] [--obs-out <path>]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if out.scale <= 0.0 || !out.scale.is_finite() {
            return Err("--scale must be a positive number".to_string());
        }
        if out.patterns == 0 {
            return Err("--patterns must be at least 1".to_string());
        }
        if out.cutoff_ms == 0 {
            return Err("--cutoff-ms must be at least 1".to_string());
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error.
    ///
    /// Propagates the selected backend to `GPM_ORACLE`, so every entry point
    /// that defaults to [`OracleBackend::from_env`] — `MatchService::new`,
    /// `IncrementalMatcher::new`, `bounded_simulation` — honours the
    /// `--oracle` flag without threading the value through every call site.
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => {
                std::env::set_var("GPM_ORACLE", args.oracle.name());
                if args.obs {
                    gpm::obs::set_enabled(true);
                }
                if let Some(path) = &args.obs_out {
                    gpm::obs::set_out_path(path);
                }
                args
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Scales one of the paper's workload sizes.
    pub fn scaled(&self, paper_size: usize) -> usize {
        ((paper_size as f64 * self.scale).round() as usize).max(8)
    }

    /// The [`Parallelism`] policy selected by `--threads` (the process
    /// default when the flag is 0/absent).
    pub fn parallelism(&self) -> Parallelism {
        if self.threads == 0 {
            Parallelism::from_env()
        } else {
            Parallelism::new(self.threads)
        }
    }

    /// The dataset sources the multi-dataset experiments (Fig. 6(e),
    /// Table 1) iterate over.
    ///
    /// With `--dataset-dir`, every `*.edges` file in the directory is one
    /// source — the experiments consume the real on-disk crawls and never
    /// fall back to synthetic generation. Without it, the three simulated
    /// stand-ins of the paper are used. `--dataset <name>` narrows either
    /// list to one entry (exact, case-insensitive).
    pub fn dataset_sources(&self) -> Result<Vec<DatasetSource>, String> {
        let all = match &self.dataset_dir {
            Some(dir) => {
                let found = DatasetSource::discover(dir).map_err(|e| e.to_string())?;
                if found.is_empty() {
                    return Err(format!("no `*.edges` datasets found in {}", dir.display()));
                }
                found
            }
            None => Dataset::ALL.map(DatasetSource::Synthetic).to_vec(),
        };
        match &self.dataset {
            None => Ok(all),
            Some(name) => {
                let picked: Vec<DatasetSource> = all
                    .iter()
                    .filter(|s| s.name().eq_ignore_ascii_case(name))
                    .cloned()
                    .collect();
                if picked.is_empty() {
                    let known: Vec<String> = all.iter().map(DatasetSource::name).collect();
                    Err(format!(
                        "unknown dataset `{name}` (available: {})",
                        known.join(", ")
                    ))
                } else {
                    Ok(picked)
                }
            }
        }
    }

    /// The single source used by the experiments that the paper runs on one
    /// graph (Exp-1, Figs. 6(i)–(k), the |AFF|/|Gr| statistics): the first
    /// [`HarnessArgs::dataset_sources`] entry when `--dataset-dir` or
    /// `--dataset` is given, the simulated YouTube graph otherwise.
    pub fn update_source(&self) -> Result<DatasetSource, String> {
        if self.dataset_dir.is_none() && self.dataset.is_none() {
            return Ok(DatasetSource::Synthetic(Dataset::YouTube));
        }
        Ok(self.dataset_sources()?.remove(0))
    }

    /// [`HarnessArgs::dataset_sources`], exiting with the message on error
    /// (the experiment binaries' shared error path).
    pub fn dataset_sources_or_exit(&self) -> Vec<DatasetSource> {
        self.dataset_sources().unwrap_or_else(|msg| exit_with(&msg))
    }

    /// [`HarnessArgs::update_source`], exiting with the message on error.
    pub fn update_source_or_exit(&self) -> DatasetSource {
        self.update_source().unwrap_or_else(|msg| exit_with(&msg))
    }
}

/// Arguments of the `svc_loadgen` network load driver: the common
/// [`HarnessArgs`] plus the load-shape flags. Loadgen-specific flags are
/// extracted first and everything else is delegated to
/// [`HarnessArgs::parse_from`], so `--scale`, `--oracle`, `--obs-out` etc.
/// behave exactly as in every other binary.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadgenArgs {
    /// The shared harness flags.
    pub harness: HarnessArgs,
    /// Target sustained rate in updates per second (`--rate`).
    pub rate: f64,
    /// The K sweep: registered queries per cell (`--queries 2,8,16`).
    pub queries: Vec<usize>,
    /// The M sweep: subscribers per query (`--subscribers 1,4`).
    pub subscribers: Vec<usize>,
    /// Batches per cell (`--batches`).
    pub batches: usize,
    /// Updates per batch (`--batch-size`).
    pub batch_size: usize,
}

impl Default for LoadgenArgs {
    fn default() -> Self {
        LoadgenArgs {
            harness: HarnessArgs::default(),
            rate: 2_000.0,
            queries: vec![2, 8, 16],
            subscribers: vec![1, 4],
            batches: 40,
            batch_size: 50,
        }
    }
}

impl LoadgenArgs {
    /// Parses loadgen flags from an iterator, delegating unrecognised
    /// arguments to [`HarnessArgs::parse_from`].
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = LoadgenArgs::default();
        let mut rest = Vec::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut take_value = |name: &str| {
                iter.next()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--rate" => {
                    out.rate = take_value("--rate")?
                        .parse()
                        .map_err(|e| format!("invalid --rate: {e}"))?;
                }
                "--queries" => {
                    out.queries = parse_usize_list("--queries", &take_value("--queries")?)?;
                }
                "--subscribers" => {
                    out.subscribers =
                        parse_usize_list("--subscribers", &take_value("--subscribers")?)?;
                }
                "--batches" => {
                    out.batches = take_value("--batches")?
                        .parse()
                        .map_err(|e| format!("invalid --batches: {e}"))?;
                }
                "--batch-size" => {
                    out.batch_size = take_value("--batch-size")?
                        .parse()
                        .map_err(|e| format!("invalid --batch-size: {e}"))?;
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: svc_loadgen [--rate <updates/s>] [--queries <k,k,...>] \
                         [--subscribers <m,m,...>] [--batches <n>] [--batch-size <n>] \
                         + the common harness flags (see any experiment's --help)"
                            .to_string(),
                    )
                }
                _ => rest.push(arg),
            }
        }
        if !(out.rate.is_finite() && out.rate > 0.0) {
            return Err("--rate must be a positive number".to_string());
        }
        if out.batches == 0 || out.batch_size == 0 {
            return Err("--batches and --batch-size must be at least 1".to_string());
        }
        out.harness = HarnessArgs::parse_from(rest)?;
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error, with
    /// the same environment propagation as [`HarnessArgs::from_env`].
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => {
                std::env::set_var("GPM_ORACLE", args.harness.oracle.name());
                if args.harness.obs {
                    gpm::obs::set_enabled(true);
                }
                if let Some(path) = &args.harness.obs_out {
                    gpm::obs::set_out_path(path);
                }
                args
            }
            Err(msg) => exit_with(&msg),
        }
    }
}

fn parse_usize_list(name: &str, text: &str) -> Result<Vec<usize>, String> {
    let list: Result<Vec<usize>, _> = text.split(',').map(|s| s.trim().parse()).collect();
    match list {
        Ok(v) if !v.is_empty() && v.iter().all(|&x| x > 0) => Ok(v),
        _ => Err(format!(
            "invalid {name}: expected a comma-separated list of positive integers, got `{text}`"
        )),
    }
}

fn exit_with(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Loads a source's graph, exiting the process with a readable message when
/// the on-disk files are missing or malformed (the experiment binaries'
/// shared error path).
pub fn load_source_or_exit(source: &DatasetSource, args: &HarnessArgs) -> gpm::DataGraph {
    match source.load(args.scale, args.seed) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to load dataset `{}`: {e}", source.name());
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm::export_dataset;
    use std::path::Path;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, HarnessArgs::default());
        assert!(a.scale > 0.0);
        assert!(a.dataset_dir.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "99",
            "--patterns",
            "20",
            "--threads",
            "4",
            "--oracle",
            "two-hop",
            "--dataset-dir",
            "fixtures",
            "--dataset",
            "mini-youtube",
            "--cutoff-ms",
            "750",
            "--obs-out",
            "/tmp/obs.jsonl",
        ])
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 99);
        assert_eq!(a.patterns, 20);
        assert_eq!(a.threads, 4);
        assert_eq!(a.parallelism().threads(), 4);
        assert_eq!(a.oracle, OracleBackend::TwoHop);
        assert_eq!(a.dataset_dir.as_deref(), Some(Path::new("fixtures")));
        assert_eq!(a.dataset.as_deref(), Some("mini-youtube"));
        assert_eq!(a.cutoff_ms, 750);
        assert!(a.obs, "--obs-out implies --obs");
        assert_eq!(a.obs_out.as_deref(), Some(Path::new("/tmp/obs.jsonl")));

        let b = parse(&["--obs"]).unwrap();
        assert!(b.obs);
        assert!(b.obs_out.is_none());
    }

    #[test]
    fn threads_zero_means_process_default() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.threads, 0);
        assert!(a.parallelism().threads() >= 1);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--patterns", "0"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--oracle"]).is_err());
        assert!(parse(&["--oracle", "bfs"]).is_err());
        assert!(parse(&["--dataset-dir"]).is_err());
        assert!(parse(&["--dataset"]).is_err());
        assert!(parse(&["--cutoff-ms", "0"]).is_err());
        assert!(parse(&["--cutoff-ms", "abc"]).is_err());
        assert!(parse(&["--obs-out"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn loadgen_args_split_from_harness_flags() {
        let parse_lg = |args: &[&str]| LoadgenArgs::parse_from(args.iter().map(|s| s.to_string()));
        let a = parse_lg(&[
            "--rate",
            "500",
            "--queries",
            "2,4",
            "--subscribers",
            "3",
            "--batches",
            "10",
            "--batch-size",
            "20",
            "--scale",
            "0.5",
            "--oracle",
            "two-hop",
        ])
        .unwrap();
        assert_eq!(a.rate, 500.0);
        assert_eq!(a.queries, vec![2, 4]);
        assert_eq!(a.subscribers, vec![3]);
        assert_eq!(a.batches, 10);
        assert_eq!(a.batch_size, 20);
        assert_eq!(a.harness.scale, 0.5);
        assert_eq!(a.harness.oracle, OracleBackend::TwoHop);

        let d = parse_lg(&[]).unwrap();
        assert_eq!(d, LoadgenArgs::default());

        assert!(parse_lg(&["--rate", "0"]).is_err());
        assert!(parse_lg(&["--queries", "2,0"]).is_err());
        assert!(parse_lg(&["--queries", "x"]).is_err());
        assert!(parse_lg(&["--batches", "0"]).is_err());
        assert!(
            parse_lg(&["--bogus"]).is_err(),
            "unknown flags still rejected"
        );
        assert!(parse_lg(&["--help"]).is_err());
    }

    #[test]
    fn scaled_sizes() {
        let a = parse(&["--scale", "0.1"]).unwrap();
        assert_eq!(a.scaled(1000), 100);
        assert_eq!(a.scaled(10), 8, "clamped to a useful minimum");
    }

    #[test]
    fn default_sources_are_the_three_synthetic_datasets() {
        let a = parse(&[]).unwrap();
        let sources = a.dataset_sources().unwrap();
        assert_eq!(sources.len(), 3);
        assert!(sources.iter().all(DatasetSource::is_synthetic));
        assert_eq!(
            a.update_source().unwrap(),
            DatasetSource::Synthetic(Dataset::YouTube)
        );
    }

    #[test]
    fn dataset_flag_filters_synthetic_sources() {
        let a = parse(&["--dataset", "pblog"]).unwrap();
        let sources = a.dataset_sources().unwrap();
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].name(), "PBlog");
        assert_eq!(a.update_source().unwrap().name(), "PBlog");
        let err = parse(&["--dataset", "nope"]).unwrap().dataset_sources();
        assert!(err.unwrap_err().contains("unknown dataset"));
    }

    #[test]
    fn dataset_dir_discovers_on_disk_sources_with_no_synthetic_fallback() {
        let dir = std::env::temp_dir().join(format!("gpm-args-test-{}", std::process::id()));
        let g = Dataset::PBlog.generate(0.01, 1);
        export_dataset(&dir, "crawl-a", &g).unwrap();
        export_dataset(&dir, "crawl-b", &g).unwrap();

        let a = parse(&["--dataset-dir", dir.to_str().unwrap()]).unwrap();
        let sources = a.dataset_sources().unwrap();
        assert_eq!(sources.len(), 2);
        assert!(sources.iter().all(|s| !s.is_synthetic()));
        assert_eq!(sources[0].name(), "crawl-a");
        assert_eq!(a.update_source().unwrap().name(), "crawl-a");

        let b = parse(&[
            "--dataset-dir",
            dir.to_str().unwrap(),
            "--dataset",
            "crawl-b",
        ])
        .unwrap();
        let sources = b.dataset_sources().unwrap();
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].name(), "crawl-b");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dataset_dir_is_an_error_not_a_fallback() {
        let dir = std::env::temp_dir().join(format!("gpm-args-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = parse(&["--dataset-dir", dir.to_str().unwrap()]).unwrap();
        assert!(a.dataset_sources().unwrap_err().contains("no `*.edges`"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
