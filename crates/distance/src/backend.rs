//! Runtime selection of the distance backend.
//!
//! Matching, incremental maintenance and the service layer are generic over
//! [`DistanceOracle`]; [`OracleBackend`] is the small value that picks which
//! maintainable implementation to build. It is read from the `GPM_ORACLE`
//! environment variable by default and exposed as a `--oracle` flag by every
//! experiment binary in `gpm-bench`.

use crate::matrix::DistanceMatrix;
use crate::oracle::DistanceOracle;
use crate::two_hop_inc::IncrementalTwoHop;
use gpm_exec::Executor;
use gpm_graph::DataGraph;

/// The maintainable distance back-ends a matcher or service can run on.
///
/// | backend | memory | build | query | incremental cost |
/// |---------|--------|-------|-------|------------------|
/// | [`Matrix`](OracleBackend::Matrix) | `O(\|V\|²)` | `\|V\|` BFS passes | `O(1)` | affected rectangle / sink columns |
/// | [`TwoHop`](OracleBackend::TwoHop) | `O(Σ labels)` | pruned landmark BFS | label merge-join | resumed BFS on insert; row repair or rebuild on delete |
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum OracleBackend {
    /// The paper's all-pairs distance matrix: fastest queries, `|V|²` memory.
    #[default]
    Matrix,
    /// Incrementally maintained 2-hop (pruned landmark) labeling: memory
    /// proportional to the label count, exact label-only queries.
    TwoHop,
}

impl OracleBackend {
    /// Every selectable backend.
    pub const ALL: [OracleBackend; 2] = [OracleBackend::Matrix, OracleBackend::TwoHop];

    /// Reads the backend from the `GPM_ORACLE` environment variable
    /// (`matrix` by default).
    ///
    /// # Panics
    ///
    /// Panics if `GPM_ORACLE` is set to an unknown value, listing the
    /// accepted names — a misconfigured benchmark must not silently fall
    /// back to a different backend.
    pub fn from_env() -> Self {
        match std::env::var("GPM_ORACLE") {
            Ok(v) => match Self::parse(&v) {
                Ok(b) => b,
                Err(e) => panic!("GPM_ORACLE: {e}"),
            },
            Err(_) => OracleBackend::Matrix,
        }
    }

    /// Parses a backend name (`matrix`, `two-hop`; `twohop`/`2-hop` are
    /// accepted aliases).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "matrix" => Ok(OracleBackend::Matrix),
            "two-hop" | "twohop" | "2-hop" => Ok(OracleBackend::TwoHop),
            other => Err(format!(
                "unknown distance backend `{other}` (expected `matrix` or `two-hop`)"
            )),
        }
    }

    /// The canonical name, parseable by [`parse`](Self::parse).
    pub fn name(self) -> &'static str {
        match self {
            OracleBackend::Matrix => "matrix",
            OracleBackend::TwoHop => "two-hop",
        }
    }

    /// Builds the selected backend for `g` on the shared executor.
    pub fn build(self, g: &DataGraph, exec: &Executor) -> Box<dyn DistanceOracle + Send + Sync> {
        let start = gpm_obs::enabled().then(std::time::Instant::now);
        let oracle: Box<dyn DistanceOracle + Send + Sync> = match self {
            OracleBackend::Matrix => Box::new(DistanceMatrix::build_with(g, exec)),
            OracleBackend::TwoHop => Box::new(IncrementalTwoHop::build_with(g, exec)),
        };
        if let Some(start) = start {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let m = crate::metrics::build_metrics();
            m.builds.inc();
            m.build_ns.record(ns);
            gpm_obs::emit_event(
                "oracle",
                "build",
                &[("dur_ns", ns), ("nodes", g.node_count() as u64)],
                &[("backend", self.name())],
            );
        }
        oracle
    }
}

impl std::fmt::Display for OracleBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::NodeId;

    #[test]
    fn parse_accepts_canonical_names_and_aliases() {
        assert_eq!(OracleBackend::parse("matrix"), Ok(OracleBackend::Matrix));
        assert_eq!(OracleBackend::parse("two-hop"), Ok(OracleBackend::TwoHop));
        assert_eq!(OracleBackend::parse("twohop"), Ok(OracleBackend::TwoHop));
        assert_eq!(OracleBackend::parse("2-hop"), Ok(OracleBackend::TwoHop));
        assert_eq!(OracleBackend::parse(" Matrix "), Ok(OracleBackend::Matrix));
        assert!(OracleBackend::parse("bfs").is_err());
        assert!(OracleBackend::parse("").is_err());
    }

    #[test]
    fn names_round_trip() {
        for b in OracleBackend::ALL {
            assert_eq!(OracleBackend::parse(b.name()), Ok(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(OracleBackend::default(), OracleBackend::Matrix);
    }

    #[test]
    fn build_produces_working_incremental_oracles() {
        let mut g = DataGraph::new();
        g.add_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let exec = Executor::sequential();
        for b in OracleBackend::ALL {
            let mut oracle = b.build(&g, &exec);
            assert!(oracle.supports_incremental(), "{b}");
            assert_eq!(
                oracle.nonempty_distance(&g, NodeId::new(0), NodeId::new(1)),
                Some(1),
                "{b}"
            );
            let mut g2 = g.clone();
            g2.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
            let aff = oracle.apply_insert(&g2, NodeId::new(1), NodeId::new(2), &exec);
            assert!(!aff.is_empty(), "{b}");
            assert_eq!(
                oracle.nonempty_distance(&g2, NodeId::new(0), NodeId::new(2)),
                Some(2),
                "{b}"
            );
        }
    }
}
