//! 2-hop (hub) labeling — the "2-hop" variant of Exp-2.
//!
//! The paper's 2-hop variant of `Match` uses the reachability labels of
//! Cohen et al. / Cheng et al. as a *filter*: if the labels show that `x`
//! cannot reach `y` at all, the pair is discarded in constant time; otherwise
//! a BFS computes the exact distance (appendix, "2-hop labeling").
//!
//! Constructing a minimum 2-hop cover is NP-hard, so this implementation
//! substitutes a **pruned landmark labeling**
//! (degree-descending landmark order, pruned forward/backward BFS). The
//! result is a correct, exact 2-hop distance/reachability labeling with the
//! same query interface; only the cover-construction heuristic differs from
//! the cited work.

use crate::oracle::DistanceOracle;
use crate::UNREACHABLE;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, NodeId};
use std::collections::VecDeque;

/// A hub label entry: `(hub rank, distance in hops)`.
pub(crate) type LabelEntry = (u32, u16);

/// An exact 2-hop distance/reachability labeling of a data graph.
///
/// For every node `v` the index stores
/// * `label_out(v)`: hubs `h` reachable *from* `v`, with `dist(v → h)`;
/// * `label_in(v)`: hubs `h` that reach `v`, with `dist(h → v)`.
///
/// `dist(x, y) = min over common hubs h of dist(x → h) + dist(h → y)`.
#[derive(Clone, Debug)]
pub struct TwoHopIndex {
    /// Outgoing hub labels per node, sorted by hub rank.
    pub(crate) label_out: Vec<Vec<LabelEntry>>,
    /// Incoming hub labels per node, sorted by hub rank.
    pub(crate) label_in: Vec<Vec<LabelEntry>>,
    /// Non-empty distance from each node to itself (shortest cycle length).
    pub(crate) diagonal: Vec<u16>,
}

impl TwoHopIndex {
    /// Builds the labeling for `g`.
    ///
    /// Landmarks are processed in descending total-degree order, which keeps
    /// label sizes small on the skewed-degree graphs of the evaluation.
    pub fn build(g: &DataGraph) -> Self {
        Self::build_with(g, &Executor::from_env())
    }

    /// Builds the labeling on the shared executor.
    ///
    /// The landmark loop itself is inherently sequential — the pruned BFS of
    /// each hub prunes against the labels of every *higher-ranked* hub, and
    /// that ordering is exactly what keeps label sizes small — so only the
    /// per-node diagonal pass (shortest cycle through each node, pure label
    /// queries) is fanned out across the workers.
    pub fn build_with(g: &DataGraph, exec: &Executor) -> Self {
        let n = g.node_count();
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.total_degree(v)), v));

        let mut label_out: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut label_in: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];

        // Scratch buffers reused across landmarks.
        let mut dist = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();

        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;
            // Forward pruned BFS: label_in of reached nodes.
            let labelled = pruned_bfs(
                g,
                hub,
                Direction::Forward,
                &label_out,
                &label_in,
                &mut dist,
                &mut queue,
            );
            for (v, d) in labelled {
                label_in[v.index()].push((rank, d));
            }

            // Backward pruned BFS: label_out of nodes reaching the hub.
            let labelled = pruned_bfs(
                g,
                hub,
                Direction::Backward,
                &label_out,
                &label_in,
                &mut dist,
                &mut queue,
            );
            for (v, d) in labelled {
                label_out[v.index()].push((rank, d));
            }
        }

        let mut index = TwoHopIndex {
            label_out,
            label_in,
            diagonal: vec![UNREACHABLE; n],
        };
        // Non-empty diagonal: the shortest cycle through v is
        // 1 + min over out-neighbours s of dist(s, v). Label queries only —
        // one independent task chunk per node range.
        index.diagonal = {
            let idx = &index;
            exec.par_map_index(n, |vi| {
                let v = NodeId::new(vi as u32);
                let mut best = UNREACHABLE;
                for &s in g.out_neighbors(v) {
                    let d = if s == v {
                        0 // self-loop: cycle of length 1
                    } else {
                        idx.standard_distance_raw(s, v)
                    };
                    if d != UNREACHABLE {
                        // Clamp: a saturated-but-finite cycle length must not
                        // collide with the UNREACHABLE (∅) sentinel.
                        best = best.min(d.saturating_add(1).min(UNREACHABLE - 1));
                    }
                }
                best
            })
        };
        index
    }

    /// Standard distance (diagonal 0) between two nodes, `None` if `y` is not
    /// reachable from `x`.
    pub fn standard_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        match self.standard_distance_raw(x, y) {
            UNREACHABLE => None,
            d => Some(u32::from(d)),
        }
    }

    /// Non-empty distance between two nodes (diagonal = shortest cycle).
    pub fn nonempty_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        let d = if x == y {
            self.diagonal[x.index()]
        } else {
            self.standard_distance_raw(x, y)
        };
        match d {
            UNREACHABLE => None,
            d => Some(u32::from(d)),
        }
    }

    /// Whether a non-empty path from `x` to `y` exists, answered from the
    /// labels alone (the "filter" the paper describes).
    pub fn reachable(&self, x: NodeId, y: NodeId) -> bool {
        if x == y {
            self.diagonal[x.index()] != UNREACHABLE
        } else {
            self.standard_distance_raw(x, y) != UNREACHABLE
        }
    }

    /// Total number of label entries (a proxy for index size).
    pub fn label_entries(&self) -> usize {
        self.label_out.iter().map(Vec::len).sum::<usize>()
            + self.label_in.iter().map(Vec::len).sum::<usize>()
    }

    /// Average number of label entries per node.
    pub fn average_label_size(&self) -> f64 {
        if self.label_out.is_empty() {
            return 0.0;
        }
        self.label_entries() as f64 / self.label_out.len() as f64
    }

    pub(crate) fn standard_distance_raw(&self, x: NodeId, y: NodeId) -> u16 {
        if x == y {
            return 0;
        }
        merge_min(&self.label_out[x.index()], &self.label_in[y.index()])
    }

    /// Raw non-empty distance (diagonal = shortest cycle), `UNREACHABLE` = ∅.
    pub(crate) fn nonempty_raw(&self, x: NodeId, y: NodeId) -> u16 {
        if x == y {
            self.diagonal[x.index()]
        } else {
            self.standard_distance_raw(x, y)
        }
    }
}

/// Merge-join of two rank-sorted label lists, returning the minimal distance
/// sum over common hubs.
///
/// Label entries are always finite, but the *sum* of two saturated entries
/// can hit `UNREACHABLE` exactly — that would conflate a very long path with
/// the ∅ ("no path") sentinel, so the sum is clamped to `UNREACHABLE - 1`,
/// matching the saturation convention of the distance matrix.
pub(crate) fn merge_min(out: &[LabelEntry], inc: &[LabelEntry]) -> u16 {
    let mut best = UNREACHABLE;
    let (mut i, mut j) = (0, 0);
    while i < out.len() && j < inc.len() {
        match out[i].0.cmp(&inc[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let sum = out[i].1.saturating_add(inc[j].1).min(UNREACHABLE - 1);
                best = best.min(sum);
                i += 1;
                j += 1;
            }
        }
    }
    best
}

#[derive(Clone, Copy)]
pub(crate) enum Direction {
    /// Follow out-edges.
    Forward,
    /// Follow in-edges.
    Backward,
}

/// Pruned BFS from `hub` following out-edges (`Forward`) or in-edges
/// (`Backward`). Returns the nodes that should receive a label for this hub,
/// with their distances. `dist` is scratch space and is fully reset before
/// returning.
fn pruned_bfs(
    g: &DataGraph,
    hub: NodeId,
    direction: Direction,
    label_out: &[Vec<LabelEntry>],
    label_in: &[Vec<LabelEntry>],
    dist: &mut [u16],
    queue: &mut VecDeque<NodeId>,
) -> Vec<(NodeId, u16)> {
    queue.clear();
    dist[hub.index()] = 0;
    queue.push_back(hub);
    let mut visited: Vec<NodeId> = vec![hub];
    let mut labelled: Vec<(NodeId, u16)> = Vec::new();
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        // Prune if labels from higher-ranked hubs already certify `<= d`.
        let already = match direction {
            Direction::Forward => merge_min(&label_out[hub.index()], &label_in[v.index()]),
            Direction::Backward => merge_min(&label_out[v.index()], &label_in[hub.index()]),
        };
        if already <= d {
            continue;
        }
        labelled.push((v, d));
        // Depth saturation: never hand out UNREACHABLE (∅) as a real
        // distance — nodes beyond the horizon keep the saturated value.
        if d >= UNREACHABLE - 1 {
            continue;
        }
        let neighbours = match direction {
            Direction::Forward => g.out_neighbors(v),
            Direction::Backward => g.in_neighbors(v),
        };
        for &w in neighbours {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                visited.push(w);
                queue.push_back(w);
            }
        }
    }
    for v in visited {
        dist[v.index()] = UNREACHABLE;
    }
    labelled
}

/// [`DistanceOracle`] built on a [`TwoHopIndex`], mirroring the paper's
/// implementation: labels answer the reachability filter, and a BFS computes
/// the exact distance only for reachable pairs.
#[derive(Debug)]
pub struct TwoHopOracle {
    index: TwoHopIndex,
    bfs: crate::bfs_oracle::BfsOracle,
}

impl TwoHopOracle {
    /// Builds the labeling for `g` and wraps it as an oracle.
    pub fn build(g: &DataGraph) -> Self {
        TwoHopOracle {
            index: TwoHopIndex::build(g),
            bfs: crate::bfs_oracle::BfsOracle::new(),
        }
    }

    /// Builds the labeling on the shared executor and wraps it as an oracle.
    pub fn build_with(g: &DataGraph, exec: &Executor) -> Self {
        TwoHopOracle {
            index: TwoHopIndex::build_with(g, exec),
            bfs: crate::bfs_oracle::BfsOracle::new(),
        }
    }

    /// Wraps an existing index.
    pub fn from_index(index: TwoHopIndex) -> Self {
        TwoHopOracle {
            index,
            bfs: crate::bfs_oracle::BfsOracle::new(),
        }
    }

    /// The underlying labeling.
    pub fn index(&self) -> &TwoHopIndex {
        &self.index
    }
}

impl DistanceOracle for TwoHopOracle {
    fn nonempty_distance(&self, g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32> {
        // Filter on the labels first: unreachable pairs never hit the BFS.
        if !self.index.reachable(from, to) {
            return None;
        }
        self.bfs.nonempty_distance(g, from, to)
    }

    fn name(&self) -> &'static str {
        "2-hop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use gpm_graph::EdgeBound;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> DataGraph {
        // Two components: a cycle 0-1-2 with a tail to 3, and isolated 4 -> 5.
        let mut g = DataGraph::new();
        g.add_nodes(6);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g.add_edge(n(4), n(5)).unwrap();
        g
    }

    #[test]
    fn exact_distances_match_matrix() {
        let g = sample();
        let m = DistanceMatrix::build(&g);
        let idx = TwoHopIndex::build(&g);
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    idx.nonempty_distance(x, y),
                    m.nonempty_distance(x, y),
                    "mismatch at ({x}, {y})"
                );
                assert_eq!(
                    idx.standard_distance(x, y),
                    m.standard_distance(x, y),
                    "standard mismatch at ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn reachability_filter() {
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        assert!(idx.reachable(n(0), n(3)));
        assert!(!idx.reachable(n(3), n(0)));
        assert!(!idx.reachable(n(0), n(5)));
        assert!(idx.reachable(n(0), n(0))); // on a cycle
        assert!(!idx.reachable(n(3), n(3))); // not on a cycle
    }

    #[test]
    fn label_size_statistics() {
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        assert!(idx.label_entries() > 0);
        assert!(idx.average_label_size() > 0.0);
    }

    #[test]
    fn oracle_agrees_with_index() {
        let g = sample();
        let o = TwoHopOracle::build(&g);
        let m = DistanceMatrix::build(&g);
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(o.nonempty_distance(&g, x, y), m.nonempty_distance(x, y));
            }
        }
        assert!(o.within(&g, n(0), n(3), EdgeBound::Hops(3)));
        assert!(!o.within(&g, n(0), n(5), EdgeBound::Unbounded));
        assert_eq!(o.name(), "2-hop");
        assert!(o.index().reachable(n(0), n(1)));
    }

    #[test]
    fn empty_graph() {
        let g = DataGraph::new();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.label_entries(), 0);
        assert_eq!(idx.average_label_size(), 0.0);
    }

    #[test]
    fn isolated_nodes_from_declared_node_sets() {
        // Nodes declared with no incident edges (the `.attrs`-file case):
        // standard self-distance is 0, non-empty self-distance is ∅, and no
        // cross pair is reachable.
        let mut g = DataGraph::new();
        g.add_nodes(3);
        let idx = TwoHopIndex::build(&g);
        let m = DistanceMatrix::build(&g);
        for x in g.nodes() {
            assert_eq!(idx.standard_distance(x, x), Some(0));
            assert_eq!(idx.nonempty_distance(x, x), None);
            assert!(!idx.reachable(x, x));
            for y in g.nodes() {
                assert_eq!(idx.nonempty_distance(x, y), m.nonempty_distance(x, y));
                assert_eq!(idx.standard_distance(x, y), m.standard_distance(x, y));
                if x != y {
                    assert!(!idx.reachable(x, y));
                }
            }
        }
    }

    #[test]
    fn unreachable_pairs_are_none_not_huge() {
        // Across components both conventions must report ∅ (None), never a
        // saturated finite value.
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.standard_distance(n(0), n(5)), None);
        assert_eq!(idx.nonempty_distance(n(0), n(5)), None);
        assert_eq!(idx.standard_distance(n(5), n(4)), None);
        // Within a component but against edge direction: also ∅.
        assert_eq!(idx.standard_distance(n(3), n(0)), None);
        assert_eq!(idx.nonempty_distance(n(3), n(0)), None);
    }

    #[test]
    fn saturated_label_sums_stay_finite() {
        // Two saturated-but-finite label entries must not sum to the ∅
        // sentinel: a very long path is still a path.
        let idx = TwoHopIndex {
            label_out: vec![vec![(0, UNREACHABLE - 1)], Vec::new()],
            label_in: vec![Vec::new(), vec![(0, UNREACHABLE - 1)]],
            diagonal: vec![UNREACHABLE, UNREACHABLE],
        };
        assert_eq!(
            idx.standard_distance(n(0), n(1)),
            Some(u32::from(UNREACHABLE - 1))
        );
        assert_eq!(
            idx.nonempty_distance(n(0), n(1)),
            Some(u32::from(UNREACHABLE - 1))
        );
        assert!(idx.reachable(n(0), n(1)));
        // The diagonal honours the same convention.
        assert_eq!(idx.nonempty_distance(n(0), n(0)), None);
        assert!(!idx.reachable(n(0), n(0)));
    }

    #[test]
    fn self_distance_conventions_on_a_cycle() {
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        // On the 0-1-2 cycle: standard diagonal is 0, non-empty is the cycle.
        assert_eq!(idx.standard_distance(n(0), n(0)), Some(0));
        assert_eq!(idx.nonempty_distance(n(0), n(0)), Some(3));
        // Off the cycle: standard 0, non-empty ∅.
        assert_eq!(idx.standard_distance(n(3), n(3)), Some(0));
        assert_eq!(idx.nonempty_distance(n(3), n(3)), None);
    }

    #[test]
    fn self_loop_diagonal() {
        let mut g = DataGraph::new();
        g.add_nodes(2);
        g.add_edge(n(0), n(0)).unwrap();
        g.add_edge(n(0), n(1)).unwrap();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.nonempty_distance(n(0), n(0)), Some(1));
        assert_eq!(idx.nonempty_distance(n(1), n(1)), None);
    }

    proptest! {
        /// 2-hop labels give exactly the same distances as the matrix on
        /// random graphs.
        #[test]
        fn prop_agrees_with_matrix(
            nodes in 2usize..14,
            edges in proptest::collection::vec((0u32..14, 0u32..14), 0..60)
        ) {
            let mut g = DataGraph::new();
            g.add_nodes(nodes);
            for (a, b) in edges {
                if (a as usize) < nodes && (b as usize) < nodes {
                    let _ = g.try_add_edge(n(a), n(b));
                }
            }
            let m = DistanceMatrix::build(&g);
            let idx = TwoHopIndex::build(&g);
            for x in g.nodes() {
                for y in g.nodes() {
                    prop_assert_eq!(idx.nonempty_distance(x, y), m.nonempty_distance(x, y));
                    prop_assert_eq!(idx.reachable(x, y), m.reachable(x, y));
                }
            }
        }
    }
}
