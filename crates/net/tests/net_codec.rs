//! Property tests for the wire codec: the same two guarantees the WAL's
//! codec suite pins (`encode ∘ decode = id`, any single-byte corruption is
//! rejected), restated over full protocol messages, plus the stream-reader
//! invariant that concatenated frames read back exactly with a clean EOF.

use gpm_distance::EdgeUpdate;
use gpm_graph::{NodeId, PatternGraph, PatternGraphBuilder, PatternNodeId};
use gpm_net::codec::{decode_message, encode_message, read_message, ReadOutcome};
use gpm_net::{NetError, Request, StreamMsg, PROTOCOL_VERSION};
use gpm_service::{MatchDelta, QueryId};
use proptest::prelude::*;
use std::io::Cursor;

fn chain_pattern(n: usize, bound: u32) -> PatternGraph {
    let mut b = PatternGraphBuilder::new();
    for i in 0..n {
        b = b.labeled_node(format!("l{i}"));
    }
    for i in 1..n {
        b = b.edge(format!("l{}", i - 1), format!("l{i}"), bound);
    }
    let (p, _) = b.build().expect("chain pattern is well-formed");
    p
}

fn arb_update() -> impl Strategy<Value = EdgeUpdate> {
    (0u32..2, 0u32..500, 0u32..500).prop_map(|(ins, a, b)| {
        if ins == 0 {
            EdgeUpdate::Insert(NodeId::new(a), NodeId::new(b))
        } else {
            EdgeUpdate::Delete(NodeId::new(a), NodeId::new(b))
        }
    })
}

fn arb_delta() -> impl Strategy<Value = MatchDelta> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        collection::vec((0u32..8, 0u32..500), 0..8),
        collection::vec((0u32..8, 0u32..500), 0..8),
    )
        .prop_map(|(query, epoch, added, removed)| MatchDelta {
            query: QueryId::from_raw(query),
            epoch,
            added: added
                .into_iter()
                .map(|(u, v)| (PatternNodeId::new(u), NodeId::new(v)))
                .collect(),
            removed: removed
                .into_iter()
                .map(|(u, v)| (PatternNodeId::new(u), NodeId::new(v)))
                .collect(),
        })
}

/// Every [`Request`] shape, tag-selected (the vendored proptest has no
/// `prop_oneof`).
fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u32..9,
        collection::vec(arb_update(), 0..16),
        (1usize..5, 1u32..4),
        0u64..1_000_000,
    )
        .prop_map(|(tag, updates, (n, bound), id)| match tag {
            0 => Request::Hello {
                version: PROTOCOL_VERSION,
            },
            1 => Request::Register {
                pattern: chain_pattern(n, bound),
            },
            2 => Request::Deregister { query: id },
            3 => Request::Suspend { query: id },
            4 => Request::Resume { query: id },
            5 => Request::ApplyBatch { updates },
            6 => Request::Result { query: id },
            7 => Request::Subscribe { query: id },
            _ => Request::Ping,
        })
}

fn arb_stream_msg() -> impl Strategy<Value = StreamMsg> {
    (0u32..4, arb_delta()).prop_map(|(tag, delta)| match tag {
        0 => StreamMsg::End {
            reason: gpm_net::EndReason::QueryClosed,
        },
        1 => StreamMsg::End {
            reason: gpm_net::EndReason::Backpressure,
        },
        _ => StreamMsg::Delta(delta),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode = id for every request shape.
    #[test]
    fn prop_request_roundtrip(req in arb_request()) {
        let frame = encode_message(&req).expect("encodable");
        prop_assert_eq!(decode_message::<Request>(&frame).expect("decodable"), req);
    }

    /// encode ∘ decode = id for stream messages (the subscriber path).
    #[test]
    fn prop_stream_msg_roundtrip(msg in arb_stream_msg()) {
        let frame = encode_message(&msg).expect("encodable");
        prop_assert_eq!(decode_message::<StreamMsg>(&frame).expect("decodable"), msg);
    }

    /// Any single-byte XOR anywhere in a framed message — length, CRC or
    /// payload — is rejected by the strict decoder.
    #[test]
    fn prop_message_rejects_single_byte_corruption(
        req in arb_request(),
        pos_raw in 0usize..1_000_000,
        mask in 1u32..256,
    ) {
        let mut frame = encode_message(&req).expect("encodable");
        let pos = pos_raw % frame.len();
        frame[pos] ^= mask as u8;
        prop_assert!(
            decode_message::<Request>(&frame).is_err(),
            "corruption at byte {} (mask {:#04x}) must not decode", pos, mask
        );
    }

    /// The same single-byte corruption is rejected by the *stream* reader
    /// too (the server's actual read path), as a Frame or Codec error —
    /// never an Io error or a silent success.
    #[test]
    fn prop_stream_reader_rejects_single_byte_corruption(
        req in arb_request(),
        pos_raw in 0usize..1_000_000,
        mask in 1u32..256,
    ) {
        let mut frame = encode_message(&req).expect("encodable");
        let pos = pos_raw % frame.len();
        frame[pos] ^= mask as u8;
        let mut cur = Cursor::new(&frame);
        match read_message::<_, Request>(&mut cur) {
            Err(NetError::Frame(_)) | Err(NetError::Codec(_)) => {}
            // Growing the length field makes the frame look torn — also a
            // Frame error by construction, so only non-errors are failures.
            Ok(out) => prop_assert!(
                false,
                "corruption at byte {} (mask {:#04x}) read back as {:?}", pos, mask, out
            ),
            Err(NetError::Io(e)) => prop_assert!(
                false,
                "corruption at byte {} surfaced as Io({}), not Frame/Codec", pos, e
            ),
            Err(_) => {}
        }
    }

    /// Concatenated frames read back in order with a clean EOF — the
    /// reader never eats into a following frame or stops early.
    #[test]
    fn prop_stream_of_messages_roundtrips(reqs in collection::vec(arb_request(), 0..8)) {
        let mut wire = Vec::new();
        for r in &reqs {
            wire.extend(encode_message(r).expect("encodable"));
        }
        let mut cur = Cursor::new(&wire);
        let mut back = Vec::new();
        while let ReadOutcome::Msg(m, _) =
            read_message::<_, Request>(&mut cur).expect("valid stream")
        {
            back.push(m);
        }
        prop_assert_eq!(back, reqs);
    }

    /// Truncating a frame at any byte boundary is a Frame error from the
    /// stream reader — never EOF, never a partial message.
    #[test]
    fn prop_truncation_is_torn_not_eof(req in arb_request(), cut_raw in 0usize..1_000_000) {
        let frame = encode_message(&req).expect("encodable");
        let cut = 1 + cut_raw % (frame.len() - 1);
        let mut cur = Cursor::new(&frame[..cut]);
        let out = read_message::<_, Request>(&mut cur);
        prop_assert!(
            matches!(out, Err(NetError::Frame(_))),
            "cut at {}: got {:?}", cut, out
        );
    }
}
