//! The mutable matching state maintained across updates.
//!
//! The incremental algorithms keep, per pattern node `u`:
//!
//! * `mat(u)` — the data nodes currently matching `u` (the maximum match of
//!   the *current* graph);
//! * `can(u)` — the candidate set of the paper's `Match+`: nodes whose
//!   attributes satisfy `f_v(u)` but which are **not** currently in `mat(u)`.
//!   Since node attributes never change under edge updates, candidacy is
//!   computed once.
//!
//! The externally reported relation follows the paper's convention: if some
//! pattern node has an empty `mat(u)`, the match is `∅` (but the internal
//! sets are kept so maintenance can continue and later insertions can revive
//! the match).

use gpm_core::{bounded_simulation_with_oracle_on, MatchRelation};
use gpm_distance::DistanceOracle;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};
use serde::{Deserialize, Serialize};

/// Per-pattern-node match and candidate sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchState {
    /// `satisfies[u][v]`: does `v` satisfy the predicate of `u`?
    satisfies: Vec<Vec<bool>>,
    /// `mat[u][v]`: is `(u, v)` in the current maximum match?
    mat: Vec<Vec<bool>>,
    /// Number of `true` entries per row of `mat`.
    live: Vec<usize>,
}

impl MatchState {
    /// Initialises the state by running the batch `Match` algorithm against
    /// the given oracle (this is the "compute matches once" step the paper
    /// prescribes before switching to incremental maintenance). Runs on the
    /// process-default [`gpm_exec::Parallelism`] policy.
    pub fn initialise<O: DistanceOracle + Sync + ?Sized>(
        pattern: &PatternGraph,
        graph: &DataGraph,
        oracle: &O,
    ) -> Self {
        Self::initialise_with(pattern, graph, oracle, &Executor::from_env())
    }

    /// [`MatchState::initialise`] on an explicit executor (the satisfaction
    /// bitmaps are one independent task per pattern node; the batch `Match`
    /// run parallelises as described on
    /// [`bounded_simulation_with_oracle_on`]).
    pub fn initialise_with<O: DistanceOracle + Sync + ?Sized>(
        pattern: &PatternGraph,
        graph: &DataGraph,
        oracle: &O,
        exec: &Executor,
    ) -> Self {
        let nv = graph.node_count();
        let np = pattern.node_count();
        let satisfies: Vec<Vec<bool>> = exec.map_tasks(np, nv, |ui| {
            let u = PatternNodeId::new(ui as u32);
            let mut row = vec![false; nv];
            for v in graph.nodes_satisfying(pattern.predicate(u)) {
                row[v.index()] = true;
            }
            row
        });

        let outcome = bounded_simulation_with_oracle_on(pattern, graph, oracle, exec);
        let mut mat = vec![vec![false; nv]; np];
        let mut live = vec![0usize; np];
        // `Match` clears the whole relation when P ⋬ G; recover the per-node
        // greatest-fixpoint sets by re-running the refinement on the
        // non-cleared relation is unnecessary: an all-empty mat is a correct
        // (and maintainable) representation only if *every* node is truly
        // unmatched, which is not generally the case. We therefore recompute
        // the greatest fixpoint without the final clearing step.
        if outcome.relation.is_match(pattern) {
            for (u, v) in outcome.relation.iter_pairs() {
                mat[u.index()][v.index()] = true;
                live[u.index()] += 1;
            }
        } else {
            let fixpoint = greatest_fixpoint_sets(pattern, graph, oracle, &satisfies);
            for (u_idx, row) in fixpoint.into_iter().enumerate() {
                for v in row {
                    mat[u_idx][v.index()] = true;
                    live[u_idx] += 1;
                }
            }
        }
        MatchState {
            satisfies,
            mat,
            live,
        }
    }

    /// Number of pattern nodes.
    pub fn pattern_node_count(&self) -> usize {
        self.mat.len()
    }

    /// Whether `(u, v)` is in the current maximum match.
    #[inline]
    pub fn in_mat(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.mat[u.index()][v.index()]
    }

    /// Whether `v` is in `can(u)`: satisfies the predicate but is not matched.
    #[inline]
    pub fn in_can(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.satisfies[u.index()][v.index()] && !self.mat[u.index()][v.index()]
    }

    /// Whether `v` satisfies the predicate of `u` (candidate or matched).
    #[inline]
    pub fn satisfies(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.satisfies[u.index()][v.index()]
    }

    /// Adds `(u, v)` to the match; returns `true` if it was not present.
    pub fn add(&mut self, u: PatternNodeId, v: NodeId) -> bool {
        let slot = &mut self.mat[u.index()][v.index()];
        if *slot {
            return false;
        }
        *slot = true;
        self.live[u.index()] += 1;
        true
    }

    /// Removes `(u, v)` from the match; returns `true` if it was present.
    pub fn remove(&mut self, u: PatternNodeId, v: NodeId) -> bool {
        let slot = &mut self.mat[u.index()][v.index()];
        if !*slot {
            return false;
        }
        *slot = false;
        self.live[u.index()] -= 1;
        true
    }

    /// Number of matches of pattern node `u`.
    pub fn live_count(&self, u: PatternNodeId) -> usize {
        self.live[u.index()]
    }

    /// The data nodes currently matching `u` (ascending order).
    pub fn matches_of(&self, u: PatternNodeId) -> Vec<NodeId> {
        self.mat[u.index()]
            .iter()
            .enumerate()
            .filter(|&(_v, &b)| b)
            .map(|(v, &_b)| NodeId::new(v as u32))
            .collect()
    }

    /// The candidate (non-matched, predicate-satisfying) nodes of `u`.
    pub fn candidates_of(&self, u: PatternNodeId) -> Vec<NodeId> {
        self.satisfies[u.index()]
            .iter()
            .enumerate()
            .filter(|&(v, &s)| s && !self.mat[u.index()][v])
            .map(|(v, &_s)| NodeId::new(v as u32))
            .collect()
    }

    /// Whether every pattern node currently has at least one match.
    pub fn all_matched(&self) -> bool {
        self.live.iter().all(|&c| c > 0)
    }

    /// The externally visible relation, following the paper's convention:
    /// `∅` when some pattern node is unmatched, otherwise the mat sets.
    pub fn relation(&self) -> MatchRelation {
        if !self.all_matched() {
            return MatchRelation::empty(self.mat.len());
        }
        MatchRelation::from_sets(
            (0..self.mat.len())
                .map(|u| self.matches_of(PatternNodeId::new(u as u32)))
                .collect(),
        )
    }

    /// The internal per-node sets as a relation, *without* the ∅ convention.
    /// Used by tests to compare against a from-scratch greatest fixpoint.
    pub fn raw_relation(&self) -> MatchRelation {
        MatchRelation::from_sets(
            (0..self.mat.len())
                .map(|u| self.matches_of(PatternNodeId::new(u as u32)))
                .collect(),
        )
    }

    /// Folds the state into its canonical persisted form: per pattern node,
    /// the ascending `NodeId` lists of the satisfaction and match sets (the
    /// dense bitmap layout is an in-memory concern, not an encoding).
    pub fn to_snapshot(&self) -> MatchStateSnapshot {
        let ids = |row: &[bool]| -> Vec<u32> {
            row.iter()
                .enumerate()
                .filter(|&(_v, &b)| b)
                .map(|(v, &_b)| v as u32)
                .collect()
        };
        MatchStateSnapshot {
            nodes: self.satisfies.first().map_or(0, Vec::len),
            satisfies: self.satisfies.iter().map(|r| ids(r)).collect(),
            mat: self.mat.iter().map(|r| ids(r)).collect(),
        }
    }

    /// Rebuilds a state from its persisted form. Errors (with a message
    /// naming the defect) when the snapshot is internally inconsistent:
    /// mismatched row counts, out-of-range node ids, unsorted/duplicated
    /// lists, or a matched node that does not satisfy its predicate.
    pub fn from_snapshot(snap: &MatchStateSnapshot) -> std::result::Result<Self, String> {
        if snap.satisfies.len() != snap.mat.len() {
            return Err(format!(
                "match-state snapshot has {} satisfies rows but {} mat rows",
                snap.satisfies.len(),
                snap.mat.len()
            ));
        }
        let nv = snap.nodes;
        let fill = |list: &[u32], what: &str, u: usize| -> std::result::Result<Vec<bool>, String> {
            let mut row = vec![false; nv];
            let mut prev: Option<u32> = None;
            for &v in list {
                if (v as usize) >= nv {
                    return Err(format!(
                        "match-state snapshot: {what}[{u}] contains node {v} >= |V| = {nv}"
                    ));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(format!(
                        "match-state snapshot: {what}[{u}] is not strictly ascending at {v}"
                    ));
                }
                prev = Some(v);
                row[v as usize] = true;
            }
            Ok(row)
        };
        let mut satisfies = Vec::with_capacity(snap.satisfies.len());
        let mut mat = Vec::with_capacity(snap.mat.len());
        let mut live = Vec::with_capacity(snap.mat.len());
        for (u, (sat, matched)) in snap.satisfies.iter().zip(&snap.mat).enumerate() {
            let sat_row = fill(sat, "satisfies", u)?;
            let mat_row = fill(matched, "mat", u)?;
            if let Some(&v) = matched.iter().find(|&&v| !sat_row[v as usize]) {
                return Err(format!(
                    "match-state snapshot: mat[{u}] contains node {v} outside satisfies[{u}]"
                ));
            }
            live.push(matched.len());
            satisfies.push(sat_row);
            mat.push(mat_row);
        }
        Ok(MatchState {
            satisfies,
            mat,
            live,
        })
    }
}

/// The canonical serde encoding of a [`MatchState`] — what `gpm-service`
/// persists per query inside a durability snapshot.
///
/// Node ids are stored as strictly ascending `u32` lists per pattern node,
/// so equal states always serialize to identical bytes regardless of how
/// they were produced (initialised from scratch, incrementally repaired, or
/// recovered), and [`MatchState::from_snapshot`] can validate the shape
/// before trusting it.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchStateSnapshot {
    /// Data-graph node count (the width of every row).
    pub nodes: usize,
    /// Per pattern node: ascending data-node ids satisfying its predicate.
    pub satisfies: Vec<Vec<u32>>,
    /// Per pattern node: ascending data-node ids in the current match
    /// (always a subset of the same row of `satisfies`).
    pub mat: Vec<Vec<u32>>,
}

/// The per-node greatest fixpoint sets (naive iteration), *without* clearing
/// when some node ends up empty. This is the invariant the incremental state
/// maintains.
pub(crate) fn greatest_fixpoint_sets<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
    satisfies: &[Vec<bool>],
) -> Vec<Vec<NodeId>> {
    let mut sets: Vec<Vec<NodeId>> = satisfies
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(_v, &s)| s)
                .map(|(v, &_s)| NodeId::new(v as u32))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for e in pattern.edges() {
            let targets = sets[e.to.index()].clone();
            let before = sets[e.from.index()].len();
            sets[e.from.index()]
                .retain(|&x| targets.iter().any(|&y| oracle.within(graph, x, y, e.bound)));
            if sets[e.from.index()].len() != before {
                changed = true;
            }
        }
        if !changed {
            return sets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_distance::DistanceMatrix;
    use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};

    fn pn(i: u32) -> PatternNodeId {
        PatternNodeId::new(i)
    }

    fn setup() -> (DataGraph, PatternGraph, DistanceMatrix) {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .path(&["A", "B", "C"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 2u32)
            .build()
            .unwrap();
        let m = DistanceMatrix::build(&g);
        (g, p, m)
    }

    #[test]
    fn initialise_matches_batch_algorithm() {
        let (g, p, m) = setup();
        let state = MatchState::initialise(&p, &g, &m);
        assert!(state.all_matched());
        assert_eq!(state.live_count(pn(0)), 1);
        assert_eq!(state.matches_of(pn(0)), vec![NodeId::new(0)]);
        assert!(state.in_mat(pn(1), NodeId::new(2)));
        // Node B satisfies neither predicate.
        assert!(!state.satisfies(pn(0), NodeId::new(1)));
        let relation = state.relation();
        assert!(relation.is_match(&p));
    }

    #[test]
    fn candidates_exclude_matches() {
        let (mut g, p, _) = setup();
        // Add another node labelled A with no outgoing edges: it satisfies
        // the predicate of pattern node A but cannot match it.
        let extra = g.add_node(gpm_graph::Attributes::labeled("A"));
        let m = DistanceMatrix::build(&g);
        let state = MatchState::initialise(&p, &g, &m);
        assert!(state.in_can(pn(0), extra));
        assert!(!state.in_mat(pn(0), extra));
        assert_eq!(state.candidates_of(pn(0)), vec![extra]);
    }

    #[test]
    fn add_remove_bookkeeping() {
        let (g, p, m) = setup();
        let mut state = MatchState::initialise(&p, &g, &m);
        let v = NodeId::new(0);
        assert!(!state.add(pn(0), v), "already present");
        assert!(state.remove(pn(0), v));
        assert!(!state.remove(pn(0), v));
        assert_eq!(state.live_count(pn(0)), 0);
        assert!(!state.all_matched());
        // The reported relation collapses to ∅, but the raw sets keep node C.
        assert!(state.relation().is_empty());
        assert_eq!(state.raw_relation().matches_of(pn(1)).len(), 1);
        assert!(state.add(pn(0), v));
        assert!(state.all_matched());
    }

    #[test]
    fn initialise_when_pattern_does_not_match_keeps_partial_sets() {
        // Pattern A -[1]-> Z cannot match (no Z nodes), but the fixpoint of
        // the Z node set is empty while... A's set is also empty (no witness).
        // Use a pattern where one node matches and another does not.
        let (g, _, _) = setup();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("Z")
            .build()
            .unwrap(); // no edges: two isolated pattern nodes
        let m = DistanceMatrix::build(&g);
        let state = MatchState::initialise(&p, &g, &m);
        assert!(!state.all_matched());
        assert_eq!(state.live_count(pn(0)), 1, "A still has its fixpoint match");
        assert_eq!(state.live_count(pn(1)), 0);
        assert!(state.relation().is_empty());
    }
}
