//! Differential crash-recovery suite: killing a durable `MatchService` at
//! **every** crash point and reopening must be indistinguishable from never
//! having crashed.
//!
//! The harness scripts a deterministic schedule of service operations
//! (update batches, register/deregister, suspend/resume), runs it once
//! uninterrupted on a durable service, and then simulates a crash at every
//! byte boundary of the resulting write-ahead log — each record boundary
//! *and* each torn mid-record prefix. For every crash point the recovered
//! service must:
//!
//! * reopen successfully (torn tails are detected and truncated, never
//!   silently replayed);
//! * hold exactly the state of an uninterrupted run over the records that
//!   survived (epoch, catalog, active flags, materialised states, and the
//!   subscription snapshot each query would stream — compared as raw
//!   `MatchDelta`s, i.e. byte-identical);
//! * when driven onward with the rest of the schedule, produce
//!   [`BatchOutcome`]s and final results **bit-identical** to the
//!   uninterrupted run's — on both oracle backends and at 1/2/8 threads.
//!
//! Garbled (bit-flipped) bytes must likewise truncate at the damaged
//! record: checksums turn corruption into clean truncation, and the prefix
//! before the damage replays exactly.

use gpm::exec::Parallelism;
use gpm::service::wal::{read_wal_bytes, WalOp, WAL_FILE, WAL_MAGIC};
use gpm::{datagen::powerlaw_graph, datagen::PowerLawConfig};
use gpm::{
    fold_deltas, generate_pattern, random_updates, BatchOutcome, DataGraph, DurableOptions,
    EdgeUpdate, MatchDelta, MatchService, OracleBackend, PatternGenConfig, PatternGraph, QueryId,
    UpdateStreamConfig,
};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};
use std::fs;
use std::path::{Path, PathBuf};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn forced(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_sequential_threshold(0)
}

fn labelled_graph(nodes: usize, edges: usize, labels: usize, seed: u64) -> DataGraph {
    let mut g = powerlaw_graph(&PowerLawConfig::new(nodes, edges).with_seed(seed));
    for v in 0..g.node_count() {
        let label = format!("a{}", v % labels);
        g.attributes_mut(gpm::NodeId::new(v as u32))
            .set("label", label);
    }
    g
}

/// A concrete, replayable service operation. Each op appends exactly one
/// WAL record, so `ops[..k]` is the uninterrupted history of a log prefix
/// holding `k` complete records.
#[derive(Clone, Debug)]
enum Op {
    Batch(Vec<EdgeUpdate>),
    Register(PatternGraph),
    Deregister(u64),
    Suspend(u64),
    Resume(u64),
}

/// Executes one op, resolving raw ids through this run's own id roster
/// (ids are assigned in registration order, so rosters align across runs).
fn exec_op(svc: &mut MatchService, roster: &mut Vec<QueryId>, op: &Op) -> Option<BatchOutcome> {
    let resolve = |roster: &[QueryId], raw: u64| -> QueryId {
        *roster
            .iter()
            .find(|id| id.value() == raw)
            .expect("schedule refers to a registered id")
    };
    match op {
        Op::Batch(updates) => return Some(svc.apply(updates)),
        Op::Register(p) => roster.push(svc.register(p.clone())),
        Op::Deregister(raw) => {
            let id = resolve(roster, *raw);
            assert!(svc.deregister(id));
            roster.retain(|i| *i != id);
        }
        Op::Suspend(raw) => assert!(svc.suspend(resolve(roster, *raw))),
        Op::Resume(raw) => assert!(svc.resume(resolve(roster, *raw))),
    }
    None
}

/// Builds a deterministic schedule by simulating it once against a scratch
/// (non-durable) copy of the service, so every op carries concrete updates
/// and ids. Guarantees at least one suspend → batches → resume arc.
fn build_schedule(graph: &DataGraph, seed: u64, ops: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut svc = MatchService::with_parallelism(graph.clone(), forced(1));
    let mut roster: Vec<QueryId> = Vec::new();
    let mut suspended: Vec<u64> = Vec::new();
    let mut schedule = Vec::new();
    let mut push = |svc: &mut MatchService, roster: &mut Vec<QueryId>, op: Op| {
        exec_op(svc, roster, &op);
        schedule.push(op);
    };

    // Two seed queries so batches always touch standing state.
    for i in 0..2u64 {
        let (p, _) = generate_pattern(
            svc.graph(),
            &PatternGenConfig::new(3, 3, 3).with_seed(seed * 7 + i),
        );
        push(&mut svc, &mut roster, Op::Register(p));
    }
    for round in 0..ops as u64 {
        match rng.gen_range(0..8u32) {
            0 if roster.len() < 5 => {
                let (p, _) = generate_pattern(
                    svc.graph(),
                    &PatternGenConfig::new(3, 3, 3).with_seed(seed * 31 + round),
                );
                push(&mut svc, &mut roster, Op::Register(p));
            }
            1 if roster.len() > 2 => {
                let raw = roster[rng.gen_range(0..roster.len())].value();
                suspended.retain(|r| *r != raw);
                push(&mut svc, &mut roster, Op::Deregister(raw));
            }
            2 => {
                let raw = roster[rng.gen_range(0..roster.len())].value();
                if let Some(pos) = suspended.iter().position(|r| *r == raw) {
                    suspended.remove(pos);
                    push(&mut svc, &mut roster, Op::Resume(raw));
                } else {
                    suspended.push(raw);
                    push(&mut svc, &mut roster, Op::Suspend(raw));
                }
            }
            _ => {
                let n = rng.gen_range(2..8usize);
                let updates = random_updates(
                    svc.graph(),
                    &UpdateStreamConfig::mixed(n).with_seed(seed * 131 + round),
                );
                push(&mut svc, &mut roster, Op::Batch(updates));
            }
        }
    }
    // Make sure the suspended-across-crash arc is exercised: leave one
    // query suspended behind a trailing batch.
    if suspended.is_empty() {
        let raw = roster[0].value();
        push(&mut svc, &mut roster, Op::Suspend(raw));
        let updates = random_updates(
            svc.graph(),
            &UpdateStreamConfig::mixed(4).with_seed(seed * 977),
        );
        push(&mut svc, &mut roster, Op::Batch(updates));
    }
    schedule
}

/// Everything observable about a service without disturbing its semantic
/// state: epoch, catalog shape, and the exact snapshot delta every query
/// would stream to a fresh subscriber.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    epoch: u64,
    queries: Vec<(u64, bool, bool, MatchDelta)>,
}

fn fingerprint(svc: &mut MatchService) -> Fingerprint {
    let ids = svc.catalog().ids();
    let mut queries = Vec::new();
    for id in ids {
        let (active, has_state) = {
            let e = svc.catalog().get(id).unwrap();
            (e.is_active(), e.has_state())
        };
        let sub = svc.subscribe(id).unwrap();
        let mut stream = sub.drain();
        assert_eq!(stream.len(), 1, "a fresh subscription streams its snapshot");
        queries.push((id.value(), active, has_state, stream.remove(0)));
    }
    Fingerprint {
        epoch: svc.epoch(),
        queries,
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).unwrap();
        }
    }
}

struct TempRoot(PathBuf);

impl TempRoot {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("gpm-recovery-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempRoot(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// No automatic snapshots: the WAL keeps the whole history, so crash points
/// cover every operation since creation.
const WAL_ONLY: DurableOptions = DurableOptions {
    snapshot_every: None,
};

/// The uninterrupted reference run: a durable service executing the full
/// schedule plus the tail, with everything observable collected.
struct Reference {
    outcomes: Vec<BatchOutcome>,
    tail_outcomes: Vec<BatchOutcome>,
    wal: Vec<u8>,
    template: PathBuf,
}

fn tail_batches(graph: &DataGraph, seed: u64) -> Vec<Vec<EdgeUpdate>> {
    // Fixed continuation applied after recovery: two mixed batches derived
    // from the *final* reference graph, so both sides apply identical data.
    (0..2u64)
        .map(|i| {
            random_updates(
                graph,
                &UpdateStreamConfig::mixed(5).with_seed(seed * 503 + i),
            )
        })
        .collect()
}

/// Runs the schedule uninterrupted on a fresh durable root; also snapshots
/// the pristine post-create directory as the template every simulated
/// crash starts from.
fn reference_run(
    root: &TempRoot,
    graph: &DataGraph,
    backend: OracleBackend,
    threads: usize,
    schedule: &[Op],
    seed: u64,
) -> (Reference, Vec<Vec<EdgeUpdate>>) {
    let dir = root.path(&format!("ref-{}-{threads}", backend.name()));
    let template = root.path(&format!("template-{}-{threads}", backend.name()));
    let mut svc =
        MatchService::create_durable_with(&dir, graph.clone(), backend, forced(threads), WAL_ONLY)
            .unwrap();
    copy_dir(&dir, &template);

    let mut roster = Vec::new();
    let mut outcomes = Vec::new();
    for op in schedule {
        if let Some(out) = exec_op(&mut svc, &mut roster, op) {
            outcomes.push(out);
        }
    }
    let tails = tail_batches(svc.graph(), seed);
    let wal = fs::read(dir.join(WAL_FILE)).unwrap();
    let tail_outcomes = tails.iter().map(|t| svc.apply(t)).collect();
    (
        Reference {
            outcomes,
            tail_outcomes,
            wal,
            template,
        },
        tails,
    )
}

/// Materialises a crash directory: the pristine template plus the given
/// WAL image, then reopens it.
fn reopen_crashed(
    root: &TempRoot,
    reference: &Reference,
    wal_image: &[u8],
    threads: usize,
    tag: &str,
) -> MatchService {
    let dir = root.path(tag);
    let _ = fs::remove_dir_all(&dir);
    copy_dir(&reference.template, &dir);
    fs::write(dir.join(WAL_FILE), wal_image).unwrap();
    MatchService::open_durable_with(&dir, forced(threads), WAL_ONLY).unwrap_or_else(|e| {
        panic!(
            "reopen failed for {tag} ({} wal bytes): {e}",
            wal_image.len()
        )
    })
}

/// The incremental uninterrupted reference: advances op by op so each of
/// the (many) crash points compares against it without re-running history.
struct RollingReference {
    svc: MatchService,
    roster: Vec<QueryId>,
    cursor: usize,
}

impl RollingReference {
    fn new(graph: &DataGraph, backend: OracleBackend, threads: usize) -> Self {
        RollingReference {
            svc: MatchService::with_backend(graph.clone(), backend, forced(threads)),
            roster: Vec::new(),
            cursor: 0,
        }
    }

    fn advance_to(&mut self, schedule: &[Op], k: usize) {
        assert!(k >= self.cursor, "crash points visit prefixes in order");
        for op in &schedule[self.cursor..k] {
            exec_op(&mut self.svc, &mut self.roster, op);
        }
        self.cursor = k;
    }
}

/// The tentpole: every byte boundary of the WAL is a crash point, and every
/// one recovers into exactly the uninterrupted state over the surviving
/// records.
#[test]
fn every_byte_crash_prefix_recovers_bit_identically() {
    let seed = 0xD15C;
    let graph = labelled_graph(20, 45, 3, seed);
    let schedule = build_schedule(&graph, seed, 10);
    let root = TempRoot::new("everybyte");
    let backend = OracleBackend::Matrix;
    let threads = 2;
    let (reference, tails) = reference_run(&root, &graph, backend, threads, &schedule, seed);

    let mut rolling = RollingReference::new(&graph, backend, threads);
    let mut boundary_points = 0usize;
    for cut in 0..=reference.wal.len() {
        let prefix = &reference.wal[..cut];
        let decoded = read_wal_bytes(prefix).unwrap();
        let k = decoded.records.len();
        let at_boundary = decoded.torn_bytes == 0;
        let mut recovered = reopen_crashed(&root, &reference, prefix, threads, "crash");

        rolling.advance_to(&schedule, k);
        assert_eq!(
            fingerprint(&mut recovered),
            fingerprint(&mut rolling.svc),
            "cut at byte {cut} ({k} records survived, torn {})",
            decoded.torn_bytes
        );

        // At record boundaries, drive the recovered service through the
        // rest of the schedule + tail: outcomes must be bit-identical to
        // the uninterrupted run's (subscribers receive these same deltas,
        // so this is stream equality too).
        if at_boundary {
            boundary_points += 1;
            let mut roster = recovered.catalog().ids();
            let mut continued = Vec::new();
            for op in &schedule[k..] {
                if let Some(out) = exec_op(&mut recovered, &mut roster, op) {
                    continued.push(out);
                }
            }
            for t in &tails {
                continued.push(recovered.apply(t));
            }
            let n_ref = reference.outcomes.len();
            let already = n_ref + reference.tail_outcomes.len() - continued.len();
            let mut expected: Vec<BatchOutcome> = reference.outcomes[already..].to_vec();
            expected.extend(reference.tail_outcomes.iter().cloned());
            assert_eq!(
                continued, expected,
                "continuation diverged after crash at record boundary {k}"
            );
        }
    }
    // One boundary per schedule op (each logs one record), plus the empty
    // file (torn header, byte 0) and the bare magic after creation.
    assert_eq!(boundary_points, schedule.len() + 2);
}

/// Bit-flips anywhere in the log must truncate at the damaged record —
/// detected by checksum, never silently replayed — and the undamaged
/// prefix must recover exactly. Flips inside the magic are a hard error.
#[test]
fn garbled_bytes_truncate_at_the_damaged_record() {
    let seed = 0x6A5B;
    let graph = labelled_graph(18, 40, 3, seed);
    let schedule = build_schedule(&graph, seed, 8);
    let root = TempRoot::new("garble");
    let backend = OracleBackend::Matrix;
    let threads = 1;
    let (reference, _tails) = reference_run(&root, &graph, backend, threads, &schedule, seed);

    let mut rolling = RollingReference::new(&graph, backend, threads);
    // Record boundaries, to locate which record a damaged byte falls into.
    let clean = read_wal_bytes(&reference.wal).unwrap();
    assert_eq!(clean.torn_bytes, 0);
    for garble_at in (0..reference.wal.len()).step_by(3) {
        for mask in [0x01u8, 0x80u8] {
            let mut image = reference.wal.clone();
            image[garble_at] ^= mask;
            if garble_at < WAL_MAGIC.len() {
                let dir = root.path("badmagic");
                let _ = fs::remove_dir_all(&dir);
                copy_dir(&reference.template, &dir);
                fs::write(dir.join(WAL_FILE), &image).unwrap();
                assert!(
                    MatchService::open_durable_with(&dir, forced(threads), WAL_ONLY).is_err(),
                    "a damaged magic must not open (byte {garble_at})"
                );
                continue;
            }
            let decoded = read_wal_bytes(&image).unwrap();
            let k = decoded.records.len();
            assert!(
                (decoded.valid_len as usize) <= garble_at,
                "the surviving prefix must stop before the damaged byte {garble_at}"
            );
            let mut recovered = reopen_crashed(&root, &reference, &image, threads, "garbled");
            rolling.advance_to(&schedule, k);
            assert_eq!(
                fingerprint(&mut recovered),
                fingerprint(&mut rolling.svc),
                "garbled byte {garble_at} mask {mask:#04x}: {k} records should survive"
            );
        }
    }
}

/// Record-boundary crashes recover bit-identically on both oracle backends
/// at 1, 2 and 8 threads — and every configuration agrees with every other.
#[test]
fn recovery_is_bit_identical_across_backends_and_threads() {
    let seed = 0xBEE5;
    let graph = labelled_graph(18, 40, 3, seed);
    let schedule = build_schedule(&graph, seed, 8);
    let root = TempRoot::new("matrix2hop");

    let mut all_final: Vec<(String, Vec<BatchOutcome>)> = Vec::new();
    for backend in [OracleBackend::Matrix, OracleBackend::TwoHop] {
        for threads in THREAD_COUNTS {
            let (reference, tails) =
                reference_run(&root, &graph, backend, threads, &schedule, seed);
            let boundaries: Vec<usize> = {
                // Every clean prefix of the WAL, by record count.
                let mut cuts = vec![WAL_MAGIC.len()];
                let mut bytes = WAL_MAGIC.len();
                let decoded = read_wal_bytes(&reference.wal).unwrap();
                for rec in &decoded.records {
                    let frame = gpm::service::wal::encode_record(rec).unwrap();
                    bytes += frame.len();
                    cuts.push(bytes);
                }
                cuts
            };
            for (k, &cut) in boundaries.iter().enumerate() {
                let tag = format!("cfg-{}-{threads}-{k}", backend.name());
                let mut recovered =
                    reopen_crashed(&root, &reference, &reference.wal[..cut], threads, &tag);
                let mut roster = recovered.catalog().ids();
                let mut continued = Vec::new();
                for op in &schedule[k..] {
                    if let Some(out) = exec_op(&mut recovered, &mut roster, op) {
                        continued.push(out);
                    }
                }
                for t in &tails {
                    continued.push(recovered.apply(t));
                }
                let n_batches_remaining = continued.len() - tails.len();
                let mut expected: Vec<BatchOutcome> =
                    reference.outcomes[reference.outcomes.len() - n_batches_remaining..].to_vec();
                expected.extend(reference.tail_outcomes.iter().cloned());
                assert_eq!(
                    continued,
                    expected,
                    "diverged: backend {} threads {threads} crash at record {k}",
                    backend.name()
                );
            }
            all_final.push((
                format!("{}-{threads}", backend.name()),
                reference
                    .outcomes
                    .iter()
                    .chain(reference.tail_outcomes.iter())
                    .cloned()
                    .collect(),
            ));
        }
    }
    // Cross-configuration: every backend × thread count produced the exact
    // same outcome stream.
    let (base_tag, base) = &all_final[0];
    for (tag, outcomes) in &all_final[1..] {
        assert_eq!(outcomes, base, "{tag} diverged from {base_tag}");
    }
}

/// A `result()` read that materialises a lazily-resumed state mutates the
/// emitted relation, so it is logged (`WalOp::Read`) and replayed: crashing
/// after the read recovers the catch-up delta exactly once.
#[test]
fn read_activation_is_logged_and_replayed() {
    let seed = 0xAC71;
    let graph = labelled_graph(18, 40, 3, seed);
    let root = TempRoot::new("readlog");
    let dir = root.path("svc");
    let mut svc = MatchService::create_durable_with(
        &dir,
        graph.clone(),
        OracleBackend::Matrix,
        forced(1),
        WAL_ONLY,
    )
    .unwrap();
    let (p, _) = generate_pattern(svc.graph(), &PatternGenConfig::new(3, 3, 3).with_seed(seed));
    let q = svc.register(p.clone());
    svc.suspend(q);
    for i in 0..3u64 {
        let updates = random_updates(
            svc.graph(),
            &UpdateStreamConfig::mixed(5).with_seed(seed + i),
        );
        svc.apply(&updates);
    }
    svc.resume(q);
    // The read materialises the state and must appear in the log.
    let live = svc.result(q).unwrap();
    let wal = fs::read(dir.join(WAL_FILE)).unwrap();
    let decoded = read_wal_bytes(&wal).unwrap();
    assert!(
        matches!(decoded.records.last().unwrap().op, WalOp::Read(_)),
        "the activating read must be the last WAL record"
    );
    // A pure re-read is not logged.
    let _ = svc.result(q);
    let wal2 = fs::read(dir.join(WAL_FILE)).unwrap();
    assert_eq!(wal.len(), wal2.len(), "pure reads must not grow the log");
    drop(svc);

    let mut reopened = MatchService::open_durable_with(&dir, forced(1), WAL_ONLY).unwrap();
    // The replayed read rebuilt the state and already emitted the catch-up:
    // a fresh subscriber sees exactly the live relation, and result() agrees
    // without emitting anything further.
    let sub = reopened.subscribe(q).unwrap();
    assert_eq!(reopened.result(q).unwrap(), live);
    let stream = sub.drain();
    assert_eq!(stream.len(), 1, "no second catch-up after recovery");
    assert_eq!(fold_deltas(p.node_count(), stream.iter()), live);
}

/// Crashes on a root that mixes a mid-history snapshot with a WAL tail:
/// recovery folds snapshot + surviving suffix records. Also pins the
/// automatic cadence: `snapshot_every: Some(n)` keeps the live log at most
/// `n` records long.
#[test]
fn snapshot_plus_wal_tail_recovers_at_every_cut() {
    let seed = 0x5EED;
    let graph = labelled_graph(20, 45, 3, seed);
    let schedule = build_schedule(&graph, seed, 12);
    let root = TempRoot::new("mixed");
    let backend = OracleBackend::Matrix;
    let threads = 2;
    let cadence = 5u64;
    let dir = root.path("svc");
    let mut svc = MatchService::create_durable_with(
        &dir,
        graph.clone(),
        backend,
        forced(threads),
        DurableOptions {
            snapshot_every: Some(cadence),
        },
    )
    .unwrap();
    let mut roster = Vec::new();
    for op in &schedule {
        exec_op(&mut svc, &mut roster, op);
        let wal_records = read_wal_bytes(&fs::read(dir.join(WAL_FILE)).unwrap())
            .unwrap()
            .records
            .len() as u64;
        assert!(
            wal_records < cadence,
            "automatic snapshots must keep the log under {cadence} records"
        );
    }
    drop(svc);

    // The directory now holds a mid-history snapshot + a short WAL tail.
    // Crash at every byte of that tail; the uninterrupted state at k
    // surviving records is ops[..next_seq + k].
    let manifest_bytes = fs::read(dir.join("snapshot").join("MANIFEST.bin")).unwrap();
    let manifest = gpm::service::snapshot::decode_manifest(&manifest_bytes).unwrap();
    let wal = fs::read(dir.join(WAL_FILE)).unwrap();
    let base = manifest.next_seq as usize;

    let mut rolling = RollingReference::new(&graph, backend, threads);
    for cut in 0..=wal.len() {
        let prefix = &wal[..cut];
        let k = read_wal_bytes(prefix).unwrap().records.len();
        let crash_dir = root.path("crash");
        let _ = fs::remove_dir_all(&crash_dir);
        copy_dir(&dir, &crash_dir);
        fs::write(crash_dir.join(WAL_FILE), prefix).unwrap();
        let mut recovered = MatchService::open_durable_with(&crash_dir, forced(threads), WAL_ONLY)
            .unwrap_or_else(|e| panic!("reopen failed at tail byte {cut}: {e}"));
        rolling.advance_to(&schedule, base + k);
        assert_eq!(
            fingerprint(&mut recovered),
            fingerprint(&mut rolling.svc),
            "snapshot+tail crash at byte {cut} ({k} tail records)"
        );
    }
}

/// `create_durable` refuses to clobber an existing root, and `open_durable`
/// refuses a directory that never finished `create_durable`.
#[test]
fn directory_lifecycle_errors() {
    let root = TempRoot::new("lifecycle");
    let dir = root.path("svc");
    let graph = labelled_graph(10, 20, 2, 1);
    let svc = MatchService::create_durable_with(
        &dir,
        graph.clone(),
        OracleBackend::Matrix,
        forced(1),
        WAL_ONLY,
    )
    .unwrap();
    drop(svc);
    assert!(
        MatchService::create_durable_with(
            &dir,
            graph.clone(),
            OracleBackend::Matrix,
            forced(1),
            WAL_ONLY,
        )
        .is_err(),
        "create over an existing root must fail"
    );
    let empty = root.path("never-created");
    fs::create_dir_all(&empty).unwrap();
    assert!(
        MatchService::open_durable_with(&empty, forced(1), WAL_ONLY).is_err(),
        "open on a root without a snapshot must fail"
    );
}

/// Reopening ignores `GPM_ORACLE`: the backend persisted in the manifest
/// wins, so a directory never silently changes oracle across restarts.
#[test]
fn persisted_backend_choice_survives_reopen() {
    let root = TempRoot::new("backendpin");
    let dir = root.path("svc");
    let graph = labelled_graph(12, 25, 2, 3);
    let svc =
        MatchService::create_durable_with(&dir, graph, OracleBackend::TwoHop, forced(1), WAL_ONLY)
            .unwrap();
    assert_eq!(svc.oracle().name(), "two-hop");
    drop(svc);
    let reopened = MatchService::open_durable_with(&dir, forced(1), WAL_ONLY).unwrap();
    assert_eq!(
        reopened.oracle().name(),
        "two-hop",
        "the manifest's backend choice must win on reopen"
    );
}
