//! # gpm-exec
//!
//! A small work-stealing parallel runtime for the gpm workspace: scoped
//! fork-join execution over borrowed data, with a [`Parallelism`] policy
//! shared by every hot path (the `Match` candidate refinement in `gpm-core`,
//! the BFS-per-source matrix build in `gpm-distance`, candidate computation
//! in `gpm-iso` and batch-update repair in `gpm-incremental`).
//!
//! ## Design
//!
//! * **Scoped fork-join.** A parallel region collects its tasks and runs
//!   them to completion before returning ([`Executor::scope`]); tasks may
//!   borrow from the caller's stack (no `'static` bound, no `Arc` plumbing).
//!   Worker threads live for the duration of one region — the executor is a
//!   cheap, copyable *policy* handle, not a long-lived thread pool, which
//!   keeps the whole crate free of `unsafe` lifetime laundering.
//! * **Work stealing.** Each worker owns a [`StealDeque`]; tasks are dealt
//!   round-robin, owners pop LIFO from the bottom, idle workers steal FIFO
//!   from the top (the Chase–Lev discipline, synchronised with a `std` mutex
//!   rather than the original lock-free atomics — see [`StealDeque`]). This
//!   balances the skewed task costs typical of per-source BFS and per-node
//!   refinement without any tuning.
//! * **Deterministic merges.** The mapping combinators
//!   ([`Executor::par_map_index`], [`Executor::map_tasks`]) always deliver
//!   results in task-index order, whatever interleaving the workers produce,
//!   so parallel `Match` is bit-identical to sequential `Match`. The
//!   [`Parallelism::deterministic`] flag only relaxes *reduction* order
//!   ([`Executor::par_reduce`]) for callers that fold commutative monoids.
//! * **Sequential fallback.** Regions whose work hint falls below
//!   [`Parallelism::sequential_threshold`] (or when `threads <= 1`) run
//!   inline on the caller thread, in task order — the passthrough executes
//!   the same code as the parallel path, so results cannot diverge.
//!
//! The default thread count honours the `GPM_THREADS` environment variable
//! (see [`Parallelism::from_env`]), which is how CI exercises the parallel
//! paths and how `gpm-bench --threads` sweeps 1→8 cores.
//!
//! ## Example
//!
//! ```
//! use gpm_exec::{Executor, Parallelism};
//!
//! // Four workers; regions smaller than 1 item never go parallel.
//! let exec = Executor::new(Parallelism::new(4).with_sequential_threshold(1));
//!
//! // Deterministic map: results are in index order regardless of scheduling.
//! let squares = exec.par_map_index(1_000, |i| i * i);
//! assert_eq!(squares[31], 961);
//!
//! // Scoped fork-join over borrowed data.
//! let words = ["work", "stealing", "deque"];
//! let lens = std::sync::Mutex::new([0usize; 3]);
//! exec.scope(|s| {
//!     for (i, w) in words.iter().enumerate() {
//!         let lens = &lens;
//!         s.spawn(move || lens.lock().unwrap()[i] = w.len());
//!     }
//! });
//! assert_eq!(lens.into_inner().unwrap(), [4, 8, 5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deque;
pub mod executor;
pub mod parallelism;

pub use deque::StealDeque;
pub use executor::{Executor, Scope};
pub use parallelism::Parallelism;
