//! Determinism suite for the service's parallel fan-out: with identical
//! inputs, the per-query delta streams, batch outcomes and work counters
//! are **bit-for-bit identical** at 1, 2 and 8 worker threads.
//!
//! Mirrors `parallel_determinism.rs` for `gpm-service`: repair tasks are
//! fanned out across the `gpm-exec` executor, but every merge lands in a
//! per-query slot and emission walks the catalog in registration order, so
//! scheduling cannot leak into the output. Thread policies force
//! `sequential_threshold(0)` so even test-sized catalogs genuinely hit the
//! threaded path. (Per BENCHMARKS.md: a single-vCPU host verifies
//! determinism, not speedup.)

use gpm::exec::Parallelism;
use gpm::{datagen::powerlaw_graph, datagen::PowerLawConfig};
use gpm::{
    fold_deltas, generate_pattern, random_updates, BatchOutcome, DataGraph, MatchDelta,
    MatchService, PatternGenConfig, ServiceStats, UpdateStreamConfig,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn forced(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_sequential_threshold(0)
}

fn labelled_graph(nodes: usize, edges: usize, labels: usize, seed: u64) -> DataGraph {
    let mut g = powerlaw_graph(&PowerLawConfig::new(nodes, edges).with_seed(seed));
    for v in 0..g.node_count() {
        let label = format!("a{}", v % labels);
        g.attributes_mut(gpm::NodeId::new(v as u32))
            .set("label", label);
    }
    g
}

/// Runs the same scripted session at a given thread count and returns
/// everything observable: per-batch outcomes, subscription streams, final
/// results and stats.
fn run_session(
    threads: usize,
    seed: u64,
    queries: usize,
    batches: usize,
) -> (
    Vec<BatchOutcome>,
    Vec<Vec<MatchDelta>>,
    Vec<gpm::MatchRelation>,
    ServiceStats,
) {
    let g = labelled_graph(45, 130, 4, seed);
    let mut svc = MatchService::with_parallelism(g, forced(threads));

    let ids: Vec<_> = (0..queries as u64)
        .map(|i| {
            let (p, _) = generate_pattern(
                svc.graph(),
                &PatternGenConfig::new(3, 3, 3).with_seed(seed * 13 + i),
            );
            svc.register(p)
        })
        .collect();
    let subs: Vec<_> = ids.iter().map(|&id| svc.subscribe(id).unwrap()).collect();

    // Suspend one query mid-stream and resume it later so the lazy
    // activation path is covered by the determinism contract too.
    let parked = ids[1];
    let mut outcomes = Vec::new();
    for round in 0..batches as u64 {
        if round == 1 {
            svc.suspend(parked);
        }
        if round == batches as u64 - 1 {
            svc.resume(parked);
        }
        let updates = random_updates(
            svc.graph(),
            &UpdateStreamConfig::mixed(12).with_seed(seed * 97 + round),
        );
        outcomes.push(svc.apply(&updates));
    }

    let streams: Vec<Vec<MatchDelta>> = subs.iter().map(|s| s.drain()).collect();
    let finals: Vec<gpm::MatchRelation> = ids.iter().map(|&id| svc.result(id).unwrap()).collect();
    (outcomes, streams, finals, svc.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batch outcomes, delta streams, final results and stats are identical
    /// at every thread count.
    #[test]
    fn delta_streams_are_bit_identical_across_thread_counts(
        seed in 0u64..5_000,
        queries in 2usize..6,
        batches in 2usize..6,
    ) {
        let baseline = run_session(1, seed, queries, batches);
        for threads in THREAD_COUNTS {
            let run = run_session(threads, seed, queries, batches);
            prop_assert_eq!(&run.0, &baseline.0, "batch outcomes diverged at {} threads", threads);
            prop_assert_eq!(&run.1, &baseline.1, "delta streams diverged at {} threads", threads);
            prop_assert_eq!(&run.2, &baseline.2, "final results diverged at {} threads", threads);
            prop_assert_eq!(&run.3, &baseline.3, "stats diverged at {} threads", threads);
        }
    }
}

/// A fixed-seed session large enough to clear the *default* sequential
/// threshold, so the default-policy fan-out path is covered end to end.
#[test]
fn default_policy_session_agrees_with_sequential() {
    let build = |threads: usize| {
        let g = labelled_graph(300, 1_100, 5, 99);
        let mut svc = MatchService::with_parallelism(g, Parallelism::new(threads));
        let ids: Vec<_> = (0..6u64)
            .map(|i| {
                let (p, _) = generate_pattern(
                    svc.graph(),
                    &PatternGenConfig::new(4, 4, 3).with_seed(200 + i),
                );
                svc.register(p)
            })
            .collect();
        let mut all_deltas = Vec::new();
        for round in 0..3u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(25).with_seed(300 + round),
            );
            all_deltas.push(svc.apply(&updates));
        }
        let finals: Vec<_> = ids.iter().map(|&id| svc.result(id).unwrap()).collect();
        (all_deltas, finals)
    };
    let sequential = build(1);
    for threads in THREAD_COUNTS {
        let run = build(threads);
        assert_eq!(run, sequential, "diverged at {threads} threads");
    }
}

/// The subscription fold is itself thread-count independent: folding the
/// stream from any run reproduces the same relation.
#[test]
fn folded_streams_agree_across_thread_counts() {
    let mut folded_per_thread = Vec::new();
    for threads in THREAD_COUNTS {
        let (_, streams, finals, _) = run_session(threads, 4242, 4, 4);
        let folds: Vec<_> = streams
            .iter()
            .zip(&finals)
            .map(|(stream, fin)| {
                let folded = fold_deltas(fin.pattern_node_count(), stream.iter());
                assert_eq!(&folded, fin, "fold ≠ live result at {threads} threads");
                folded
            })
            .collect();
        folded_per_thread.push(folds);
    }
    assert!(folded_per_thread.windows(2).all(|w| w[0] == w[1]));
}
