//! Embeddings (matched subgraphs) and enumeration configuration.

use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};
use rustc_hash::FxHashSet;

/// An injective embedding of the pattern into the data graph: pattern node
/// `u_i` is mapped to `nodes[i]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Embedding {
    /// The image of each pattern node, indexed by pattern node id.
    pub nodes: Vec<NodeId>,
}

impl Embedding {
    /// The data node pattern node `u` is mapped to.
    pub fn image_of(&self, u: PatternNodeId) -> NodeId {
        self.nodes[u.index()]
    }

    /// Checks that this embedding is a correct subgraph-isomorphism match:
    /// injective, predicate-satisfying, and edge-preserving (pattern edge →
    /// direct data edge).
    pub fn verify(&self, pattern: &PatternGraph, graph: &DataGraph) -> bool {
        if self.nodes.len() != pattern.node_count() {
            return false;
        }
        let distinct: FxHashSet<NodeId> = self.nodes.iter().copied().collect();
        if distinct.len() != self.nodes.len() {
            return false;
        }
        for u in pattern.node_ids() {
            if !graph.satisfies(self.image_of(u), pattern.predicate(u)) {
                return false;
            }
        }
        for e in pattern.edges() {
            if !graph.has_edge(self.image_of(e.from), self.image_of(e.to)) {
                return false;
            }
        }
        true
    }
}

/// Enumeration limits for the subgraph-isomorphism baselines.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IsoConfig {
    /// Stop after this many embeddings have been found.
    pub max_embeddings: usize,
    /// Stop after this many search-tree nodes have been expanded (guards
    /// against exponential blow-ups on dense instances).
    pub max_steps: usize,
}

impl Default for IsoConfig {
    fn default() -> Self {
        IsoConfig {
            max_embeddings: 10_000,
            max_steps: 5_000_000,
        }
    }
}

impl IsoConfig {
    /// A configuration that stops at the first embedding (existence check).
    pub fn first_match_only() -> Self {
        IsoConfig {
            max_embeddings: 1,
            ..Default::default()
        }
    }
}

/// The outcome of a subgraph-isomorphism enumeration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IsoOutcome {
    /// The embeddings found (up to the configured cap).
    pub embeddings: Vec<Embedding>,
    /// Number of search-tree nodes expanded.
    pub steps: usize,
    /// Whether enumeration stopped because a cap was reached.
    pub truncated: bool,
}

impl IsoOutcome {
    /// Whether at least one embedding was found.
    pub fn is_match(&self) -> bool {
        !self.embeddings.is_empty()
    }

    /// Number of embeddings found.
    pub fn count(&self) -> usize {
        self.embeddings.len()
    }

    /// The number of *distinct data nodes* used per pattern node, averaged —
    /// the "matches per pattern node" metric of Exp-1 for the baselines.
    pub fn average_images_per_pattern_node(&self, pattern: &PatternGraph) -> f64 {
        if pattern.node_count() == 0 {
            return 0.0;
        }
        let mut total = 0usize;
        for u in pattern.node_ids() {
            let distinct: FxHashSet<NodeId> =
                self.embeddings.iter().map(|e| e.image_of(u)).collect();
            total += distinct.len();
        }
        total as f64 / pattern.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};

    fn dn(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn instance() -> (DataGraph, PatternGraph) {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B")
            .edge("B", "C")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B", 1u32)
            .build()
            .unwrap();
        (g, p)
    }

    #[test]
    fn verify_accepts_correct_embedding() {
        let (g, p) = instance();
        let e = Embedding {
            nodes: vec![dn(0), dn(1)],
        };
        assert!(e.verify(&p, &g));
        assert_eq!(e.image_of(PatternNodeId::new(0)), dn(0));
    }

    #[test]
    fn verify_rejects_wrong_embeddings() {
        let (g, p) = instance();
        // Wrong arity.
        assert!(!Embedding { nodes: vec![dn(0)] }.verify(&p, &g));
        // Not injective.
        assert!(!Embedding {
            nodes: vec![dn(0), dn(0)]
        }
        .verify(&p, &g));
        // Predicate violated (B mapped to node labelled C).
        assert!(!Embedding {
            nodes: vec![dn(0), dn(2)]
        }
        .verify(&p, &g));
        // Edge missing (B -> A is not an edge).
        assert!(!Embedding {
            nodes: vec![dn(1), dn(0)]
        }
        .verify(&p, &g));
    }

    #[test]
    fn outcome_helpers() {
        let (_, p) = instance();
        let mut out = IsoOutcome::default();
        assert!(!out.is_match());
        out.embeddings.push(Embedding {
            nodes: vec![dn(0), dn(1)],
        });
        out.embeddings.push(Embedding {
            nodes: vec![dn(0), dn(2)],
        });
        assert!(out.is_match());
        assert_eq!(out.count(), 2);
        // Pattern node 0 has 1 distinct image, node 1 has 2 -> average 1.5.
        assert!((out.average_images_per_pattern_node(&p) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn config_defaults() {
        let c = IsoConfig::default();
        assert!(c.max_embeddings > 0 && c.max_steps > 0);
        assert_eq!(IsoConfig::first_match_only().max_embeddings, 1);
    }
}
