//! Observability handles for the network layer: the `"net"` scope.

use gpm_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

pub(crate) struct NetMetrics {
    pub connections: Arc<Counter>,
    pub requests: Arc<Counter>,
    pub bad_frames: Arc<Counter>,
    pub subscriptions: Arc<Counter>,
    pub deltas_streamed: Arc<Counter>,
    pub kicked_subscribers: Arc<Counter>,
    pub bytes_in: Arc<Counter>,
    pub bytes_out: Arc<Counter>,
    /// Server-side request handling latency (read → response written).
    pub request_ns: Arc<Histogram>,
}

pub(crate) fn net() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let scope = gpm_obs::registry().scope("net");
        NetMetrics {
            connections: scope.counter("connections"),
            requests: scope.counter("requests"),
            bad_frames: scope.counter("bad_frames"),
            subscriptions: scope.counter("subscriptions"),
            deltas_streamed: scope.counter("deltas_streamed"),
            kicked_subscribers: scope.counter("kicked_subscribers"),
            bytes_in: scope.counter("bytes_in"),
            bytes_out: scope.counter("bytes_out"),
            request_ns: scope.histogram("request_ns"),
        }
    })
}
