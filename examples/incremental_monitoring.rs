//! Continuous community monitoring over an evolving graph — the Section 4
//! workflow: compute the maximum match once, then maintain it incrementally
//! with `IncMatch` while edges are inserted and deleted, instead of re-running
//! `Match` after every change.
//!
//! Run with `cargo run -p gpm --release --example incremental_monitoring`.

use gpm::{
    bounded_simulation_with_oracle, random_updates, Dataset, IncrementalMatcher,
    PatternGraphBuilder, Predicate, UpdateStreamConfig,
};
use std::time::Instant;

fn main() {
    // A scaled-down simulated YouTube network.
    let graph = Dataset::YouTube.generate(0.05, 7);
    println!(
        "monitoring a graph with {} nodes / {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // A DAG pattern (IncMatch requires DAG patterns): popular music videos
    // recommending well-viewed videos that lead to "People" videos.
    let (pattern, _) = PatternGraphBuilder::new()
        .node(
            "music",
            Predicate::label_eq("category", "Music").and("rate", gpm::CmpOp::Gt, 3.0),
        )
        .node("hub", Predicate::atom("views", gpm::CmpOp::Gt, 1_000))
        .node("people", Predicate::label_eq("category", "People"))
        .edge("music", "hub", 2u32)
        .edge("hub", "people", 3u32)
        .edge("music", "people", 4u32)
        .build()
        .unwrap();

    // Initial batch computation (distance matrix + maximum match).
    let t0 = Instant::now();
    let mut matcher = IncrementalMatcher::new(pattern, graph);
    println!(
        "initial Match: {} pairs in {:?}",
        matcher.relation().pair_count(),
        t0.elapsed()
    );

    // Apply five waves of mixed updates, maintaining the match incrementally,
    // and compare against recomputing from scratch each time.
    for wave in 1..=5u64 {
        let updates = random_updates(
            matcher.graph(),
            &UpdateStreamConfig::mixed(100).with_seed(wave),
        );

        let t_inc = Instant::now();
        let outcome = matcher.apply_batch(&updates).expect("DAG pattern");
        let inc_time = t_inc.elapsed();

        let t_batch = Instant::now();
        let recomputed =
            bounded_simulation_with_oracle(matcher.pattern(), matcher.graph(), matcher.oracle());
        let batch_time = t_batch.elapsed();

        assert_eq!(
            matcher.relation(),
            recomputed.relation,
            "incremental = batch"
        );
        println!(
            "wave {wave}: |δ| = {:>3}  |AFF1| = {:>6}  |AFF2| = {:>4}  pairs = {:>5}  \
             IncMatch {:>10?} vs re-Match {:>10?}",
            updates.len(),
            outcome.stats.aff1,
            outcome.stats.aff2,
            matcher.relation().pair_count(),
            inc_time,
            batch_time,
        );
    }
    println!("\nincremental and batch results agreed after every wave.");
}
