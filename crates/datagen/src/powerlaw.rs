//! Preferential-attachment digraphs.
//!
//! The three real-life graphs of the paper (a co-authorship network, a
//! hyperlinked blog network and a video recommendation network) all exhibit
//! the skewed degree distributions typical of social/information networks.
//! The simulated datasets in [`crate::datasets`] therefore use a directed
//! preferential-attachment backbone: new nodes attach to existing nodes with
//! probability proportional to in-degree + 1, and a configurable fraction of
//! "back edges" keeps the graph cyclic (recommendation and citation networks
//! are not DAGs).

use gpm_graph::{Attributes, DataGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the preferential-attachment generator.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerLawConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of edges (approximate: the generator adds
    /// `edges / nodes` out-edges per node and then tops up randomly).
    pub edges: usize,
    /// Fraction of edges that point "backwards" (from an old node to a newer
    /// one), which creates cycles. 0.0 gives a DAG, 0.3 is a typical value.
    pub back_edge_fraction: f64,
    /// Fraction of the top-up edges that reciprocate an existing edge
    /// (`(b, a)` for an existing `(a, b)`). Real recommendation / hyperlink
    /// networks are strongly reciprocal, which is what makes single-edge
    /// deletions barely move shortest distances.
    pub reciprocal_fraction: f64,
    /// Fraction of the top-up edges created by triadic closure (`(a, c)` for
    /// existing `(a, b)` and `(b, c)`), providing the alternative short paths
    /// typical of social graphs.
    pub closure_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            nodes: 1_000,
            edges: 4_000,
            back_edge_fraction: 0.3,
            reciprocal_fraction: 0.3,
            closure_fraction: 0.3,
            seed: 0,
        }
    }
}

impl PowerLawConfig {
    /// Creates a configuration with the given size and default skew.
    pub fn new(nodes: usize, edges: usize) -> Self {
        PowerLawConfig {
            nodes,
            edges,
            ..Default::default()
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a preferential-attachment digraph with empty node attributes
/// (dataset builders fill the attributes afterwards).
pub fn powerlaw_graph(config: &PowerLawConfig) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let mut g = DataGraph::with_capacity(n);
    for _ in 0..n {
        g.add_node(Attributes::new());
    }
    if n <= 1 {
        return g;
    }

    // Repeated-endpoint list: picking a uniform element approximates
    // preferential attachment (each edge endpoint re-enters the pool).
    let mut pool: Vec<u32> = (0..n as u32).collect();
    let per_node = (config.edges / n).max(1);

    for i in 1..n as u32 {
        for _ in 0..per_node {
            if g.edge_count() >= config.edges {
                break;
            }
            // Attach to an already-present node, biased by the pool.
            let target = loop {
                let t = pool[rng.gen_range(0..pool.len())];
                if t < i {
                    break t;
                }
                // Fall back to a uniform earlier node to guarantee progress.
                if rng.gen_bool(0.25) {
                    break rng.gen_range(0..i);
                }
            };
            let (from, to) = if rng.gen_bool(config.back_edge_fraction) {
                (NodeId::new(target), NodeId::new(i))
            } else {
                (NodeId::new(i), NodeId::new(target))
            };
            if g.try_add_edge(from, to).unwrap_or(false) {
                pool.push(from.0);
                pool.push(to.0);
            }
        }
    }
    // Top up to the target edge count with a mix of reciprocal edges, triadic
    // closures and random preferential edges. Reciprocity and closure inject
    // the path redundancy observed in real social/recommendation networks.
    let attempt_cap = config.edges.saturating_mul(40) + 1_000;
    let mut attempts = 0;
    while g.edge_count() < config.edges.min(n * n) && attempts < attempt_cap {
        attempts += 1;
        let roll: f64 = rng.gen();
        if roll < config.reciprocal_fraction {
            // Reciprocate an existing edge out of a random node.
            let a = NodeId::new(pool[rng.gen_range(0..pool.len())]);
            let outs = g.out_neighbors(a);
            if let Some(&b) = pick(outs, &mut rng) {
                let _ = g.try_add_edge(b, a);
                continue;
            }
        } else if roll < config.reciprocal_fraction + config.closure_fraction {
            // Triadic closure: a -> b -> c becomes a -> c as well.
            let a = NodeId::new(pool[rng.gen_range(0..pool.len())]);
            let step = |v: NodeId, rng: &mut StdRng| pick(g.out_neighbors(v), rng).copied();
            if let Some(b) = step(a, &mut rng) {
                if let Some(c) = step(b, &mut rng) {
                    let _ = g.try_add_edge(a, c);
                    continue;
                }
            }
        }
        let a = pool[rng.gen_range(0..pool.len())];
        let b = rng.gen_range(0..n as u32);
        let _ = g.try_add_edge(NodeId::new(a), NodeId::new(b));
    }
    // Fold the build-time delta overlay into the CSR base: generated graphs
    // are read-heavy from here on.
    g.compact();
    g
}

/// Picks a uniform random element of a slice.
fn pick<'a, T>(slice: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.gen_range(0..slice.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_size() {
        let cfg = PowerLawConfig::new(500, 2_000).with_seed(1);
        let g = powerlaw_graph(&cfg);
        assert_eq!(g.node_count(), 500);
        assert_eq!(g.edge_count(), 2_000);
    }

    #[test]
    fn deterministic() {
        let cfg = PowerLawConfig::new(200, 800).with_seed(9);
        let a = powerlaw_graph(&cfg);
        let b = powerlaw_graph(&cfg);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = PowerLawConfig::new(2_000, 8_000).with_seed(3);
        let g = powerlaw_graph(&cfg);
        let mut degrees: Vec<usize> = g.nodes().map(|v| g.total_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = degrees.iter().take(g.node_count() / 10).sum();
        let total: usize = degrees.iter().sum();
        // The top 10% of nodes should own well over 10% of the degree mass.
        assert!(
            top_decile as f64 > 0.25 * total as f64,
            "expected a skewed degree distribution, top decile owns {top_decile}/{total}"
        );
    }

    #[test]
    fn back_edges_create_cycles() {
        let cfg = PowerLawConfig {
            nodes: 300,
            edges: 1_200,
            back_edge_fraction: 0.4,
            seed: 11,
            ..Default::default()
        };
        let g = powerlaw_graph(&cfg);
        assert!(!gpm_graph::is_dag(&g), "back edges should create cycles");
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        for n in 0..3 {
            let g = powerlaw_graph(&PowerLawConfig::new(n, 10));
            assert_eq!(g.node_count(), n);
        }
    }
}
