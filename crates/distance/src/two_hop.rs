//! 2-hop (hub) labeling — the "2-hop" variant of Exp-2.
//!
//! The paper's 2-hop variant of `Match` uses the reachability labels of
//! Cohen et al. / Cheng et al. as a *filter*: if the labels show that `x`
//! cannot reach `y` at all, the pair is discarded in constant time; otherwise
//! a BFS computes the exact distance (appendix, "2-hop labeling").
//!
//! Constructing a minimum 2-hop cover is NP-hard, so this implementation
//! substitutes a **pruned landmark labeling**
//! (degree-descending landmark order, pruned forward/backward BFS). The
//! result is a correct, exact 2-hop distance/reachability labeling with the
//! same query interface; only the cover-construction heuristic differs from
//! the cited work.

use crate::oracle::DistanceOracle;
use crate::UNREACHABLE;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, NodeId};
use std::collections::VecDeque;

/// A hub label entry: `(hub rank, distance in hops)`.
pub(crate) type LabelEntry = (u32, u16);

/// An exact 2-hop distance/reachability labeling of a data graph.
///
/// For every node `v` the index stores
/// * `label_out(v)`: hubs `h` reachable *from* `v`, with `dist(v → h)`;
/// * `label_in(v)`: hubs `h` that reach `v`, with `dist(h → v)`.
///
/// `dist(x, y) = min over common hubs h of dist(x → h) + dist(h → y)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoHopIndex {
    /// Outgoing hub labels per node, sorted by hub rank.
    pub(crate) label_out: Vec<Vec<LabelEntry>>,
    /// Incoming hub labels per node, sorted by hub rank.
    pub(crate) label_in: Vec<Vec<LabelEntry>>,
    /// Non-empty distance from each node to itself (shortest cycle length).
    pub(crate) diagonal: Vec<u16>,
}

impl TwoHopIndex {
    /// Builds the labeling for `g`.
    ///
    /// Landmarks are processed in descending total-degree order, which keeps
    /// label sizes small on the skewed-degree graphs of the evaluation.
    pub fn build(g: &DataGraph) -> Self {
        Self::build_with(g, &Executor::from_env())
    }

    /// Builds the labeling on the shared executor.
    ///
    /// Landmarks are processed in rank batches of 64 roots
    /// (see [`build_batched`](Self::build_batched)): each batch's pruned
    /// BFSes run word-parallel (one bit per root) and concurrently across the
    /// workers, and a sequential rank-order replay commits labels that are
    /// bit-identical to [`build_sequential`](Self::build_sequential).
    pub fn build_with(g: &DataGraph, exec: &Executor) -> Self {
        Self::build_batched(g, exec, DEFAULT_BATCH)
    }

    /// Reference construction: one pruned BFS pair per landmark, strictly in
    /// rank order, pruning against the labels of every higher-ranked hub.
    ///
    /// This is the semantics every other construction path must reproduce
    /// bit for bit; the differential suite pins
    /// [`build_batched`](Self::build_batched) against it.
    pub fn build_sequential(g: &DataGraph) -> Self {
        let n = g.node_count();
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.total_degree(v)), v));

        let mut label_out: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut label_in: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];

        // Scratch buffers reused across landmarks.
        let mut dist = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();

        for (rank, &hub) in order.iter().enumerate() {
            let rank = rank as u32;
            // Forward pruned BFS: label_in of reached nodes.
            let labelled = pruned_bfs(
                g,
                hub,
                Direction::Forward,
                &label_out,
                &label_in,
                &mut dist,
                &mut queue,
            );
            for (v, d) in labelled {
                label_in[v.index()].push((rank, d));
            }

            // Backward pruned BFS: label_out of nodes reaching the hub.
            let labelled = pruned_bfs(
                g,
                hub,
                Direction::Backward,
                &label_out,
                &label_in,
                &mut dist,
                &mut queue,
            );
            for (v, d) in labelled {
                label_out[v.index()].push((rank, d));
            }
        }

        Self::with_diagonal(g, &Executor::sequential(), label_out, label_in)
    }

    /// Rank-batched, bit-parallel construction.
    ///
    /// Landmarks are processed in batches of `batch_size` (clamped to
    /// `1..=64`) consecutive ranks. Each batch runs in two phases:
    ///
    /// 1. **Phase A** (parallel): per direction, one word-parallel
    ///    level-synchronous BFS carries all of the batch's roots as bits of a
    ///    `u64` frontier mask, pruning each root's bit against the labels
    ///    committed by *earlier batches* only. The prune value computed for
    ///    every (root, node) visit is cached, replacing the sequential
    ///    build's per-pop label merge-join with a dense table lookup shared
    ///    across up to 64 roots. Roots are split into contiguous groups, one
    ///    `gpm-exec` task each.
    /// 2. **Phase B** (sequential): the batch's pruned BFSes are replayed in
    ///    exact rank order, with the prune test assembled from the cached
    ///    phase-A value plus the intra-batch term over the labels committed
    ///    by lower-ranked same-batch roots. This reproduces the sequential
    ///    prune decisions exactly, so the committed labels — and hence the
    ///    whole index — are **bit-identical** to
    ///    [`build_sequential`](Self::build_sequential) for every batch size
    ///    and thread count.
    ///
    /// Phase A may visit nodes phase B prunes (it prunes against strictly
    /// fewer labels), and every node phase B visits was visited by phase A at
    /// an equal or smaller depth — which is what makes the cached prune
    /// values safe to reuse.
    pub fn build_batched(g: &DataGraph, exec: &Executor, batch_size: usize) -> Self {
        let n = g.node_count();
        let b = batch_size.clamp(1, 64);
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.total_degree(v)), v));

        let mut label_out: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];
        let mut label_in: Vec<Vec<LabelEntry>> = vec![Vec::new(); n];

        let n_groups = exec.threads().clamp(1, b);
        let group_cap = b.div_ceil(n_groups);
        let mut groups: Vec<GroupScratch> = (0..n_groups)
            .map(|_| GroupScratch::new(n, group_cap))
            .collect();

        // Labels committed by the current batch, dense per (node, batch-local
        // root): `bd_fwd[v * b + j]` mirrors the rank-`(base + j)` entry of
        // `label_in[v]` (forward commits), `bd_bwd` the `label_out[v]` entry
        // (backward commits). `UNREACHABLE` = no label; reset via the touched
        // lists after every batch.
        let mut bd_fwd = vec![UNREACHABLE; n * b];
        let mut bd_bwd = vec![UNREACHABLE; n * b];
        let mut touched_fwd: Vec<usize> = Vec::new();
        let mut touched_bwd: Vec<usize> = Vec::new();

        let mut dist = vec![UNREACHABLE; n];
        let mut queue = VecDeque::new();
        let mut hub_side: Vec<(usize, u16)> = Vec::with_capacity(b);

        let mut base = 0usize;
        while base < n {
            let len = b.min(n - base);
            let roots = &order[base..base + len];
            let gw = len.div_ceil(n_groups);

            // Phase A: one task per root group, both directions.
            {
                let label_out = &label_out;
                let label_in = &label_in;
                let slots: Vec<&mut GroupScratch> = groups.iter_mut().collect();
                exec.scope(|s| {
                    for (gi, group) in slots.into_iter().enumerate() {
                        let j0 = (gi * gw).min(len);
                        let j1 = ((gi + 1) * gw).min(len);
                        if j0 >= j1 {
                            continue;
                        }
                        let roots = &roots[j0..j1];
                        s.spawn(move || {
                            group.phase_a(g, roots, Direction::Forward, label_out, label_in);
                            group.phase_a(g, roots, Direction::Backward, label_out, label_in);
                        });
                    }
                });
            }

            // Phase B: exact replay in rank order, committing after each BFS
            // exactly as the sequential build does.
            for j in 0..len {
                let rank = (base + j) as u32;
                let hub = roots[j];
                let grp = &groups[j / gw];
                let jl = j % gw;

                // Forward: the intra-batch prune term runs over common hubs
                // base..base+j — hub-side distances from backward commits,
                // node-side from forward commits.
                hub_side.clear();
                let hub_row = &bd_bwd[hub.index() * b..hub.index() * b + j];
                for (j2, &dh) in hub_row.iter().enumerate() {
                    if dh != UNREACHABLE {
                        hub_side.push((j2, dh));
                    }
                }
                let labelled = replay_pruned_bfs(
                    g,
                    hub,
                    Direction::Forward,
                    &grp.already_fwd[jl * n..(jl + 1) * n],
                    &hub_side,
                    &bd_fwd,
                    b,
                    &mut dist,
                    &mut queue,
                );
                for &(v, dv) in &labelled {
                    label_in[v.index()].push((rank, dv));
                    let slot = v.index() * b + j;
                    bd_fwd[slot] = dv;
                    touched_fwd.push(slot);
                }

                // Backward: hub-side from forward commits, node-side from
                // backward commits. (The root's own fresh forward label is
                // rank base+j on the in-side only, so it never joins.)
                hub_side.clear();
                let hub_row = &bd_fwd[hub.index() * b..hub.index() * b + j];
                for (j2, &dh) in hub_row.iter().enumerate() {
                    if dh != UNREACHABLE {
                        hub_side.push((j2, dh));
                    }
                }
                let labelled = replay_pruned_bfs(
                    g,
                    hub,
                    Direction::Backward,
                    &grp.already_bwd[jl * n..(jl + 1) * n],
                    &hub_side,
                    &bd_bwd,
                    b,
                    &mut dist,
                    &mut queue,
                );
                for &(v, dv) in &labelled {
                    label_out[v.index()].push((rank, dv));
                    let slot = v.index() * b + j;
                    bd_bwd[slot] = dv;
                    touched_bwd.push(slot);
                }
            }

            for &slot in &touched_fwd {
                bd_fwd[slot] = UNREACHABLE;
            }
            touched_fwd.clear();
            for &slot in &touched_bwd {
                bd_bwd[slot] = UNREACHABLE;
            }
            touched_bwd.clear();
            base += len;
        }

        Self::with_diagonal(g, exec, label_out, label_in)
    }

    /// Finishes an index from committed labels: the non-empty diagonal (the
    /// shortest cycle through `v` is `1 + min over out-neighbours s of
    /// dist(s, v)`) is pure label queries, fanned out across the workers one
    /// node-range chunk per task.
    fn with_diagonal(
        g: &DataGraph,
        exec: &Executor,
        label_out: Vec<Vec<LabelEntry>>,
        label_in: Vec<Vec<LabelEntry>>,
    ) -> Self {
        let n = g.node_count();
        let mut index = TwoHopIndex {
            label_out,
            label_in,
            diagonal: vec![UNREACHABLE; n],
        };
        index.diagonal = {
            let idx = &index;
            exec.par_map_index(n, |vi| {
                let v = NodeId::new(vi as u32);
                let mut best = UNREACHABLE;
                for &s in g.out_neighbors(v) {
                    let d = if s == v {
                        0 // self-loop: cycle of length 1
                    } else {
                        idx.standard_distance_raw(s, v)
                    };
                    if d != UNREACHABLE {
                        // Clamp: a saturated-but-finite cycle length must not
                        // collide with the UNREACHABLE (∅) sentinel.
                        best = best.min(d.saturating_add(1).min(UNREACHABLE - 1));
                    }
                }
                best
            })
        };
        index
    }

    /// Standard distance (diagonal 0) between two nodes, `None` if `y` is not
    /// reachable from `x`.
    pub fn standard_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        match self.standard_distance_raw(x, y) {
            UNREACHABLE => None,
            d => Some(u32::from(d)),
        }
    }

    /// Non-empty distance between two nodes (diagonal = shortest cycle).
    pub fn nonempty_distance(&self, x: NodeId, y: NodeId) -> Option<u32> {
        let d = if x == y {
            self.diagonal[x.index()]
        } else {
            self.standard_distance_raw(x, y)
        };
        match d {
            UNREACHABLE => None,
            d => Some(u32::from(d)),
        }
    }

    /// Whether a non-empty path from `x` to `y` exists, answered from the
    /// labels alone (the "filter" the paper describes).
    pub fn reachable(&self, x: NodeId, y: NodeId) -> bool {
        if x == y {
            self.diagonal[x.index()] != UNREACHABLE
        } else {
            self.standard_distance_raw(x, y) != UNREACHABLE
        }
    }

    /// Total number of label entries (a proxy for index size).
    pub fn label_entries(&self) -> usize {
        self.label_out.iter().map(Vec::len).sum::<usize>()
            + self.label_in.iter().map(Vec::len).sum::<usize>()
    }

    /// Average number of label entries per node.
    pub fn average_label_size(&self) -> f64 {
        if self.label_out.is_empty() {
            return 0.0;
        }
        self.label_entries() as f64 / self.label_out.len() as f64
    }

    pub(crate) fn standard_distance_raw(&self, x: NodeId, y: NodeId) -> u16 {
        if x == y {
            return 0;
        }
        merge_min(&self.label_out[x.index()], &self.label_in[y.index()])
    }

    /// Raw non-empty distance (diagonal = shortest cycle), `UNREACHABLE` = ∅.
    pub(crate) fn nonempty_raw(&self, x: NodeId, y: NodeId) -> u16 {
        if x == y {
            self.diagonal[x.index()]
        } else {
            self.standard_distance_raw(x, y)
        }
    }
}

/// Merge-join of two rank-sorted label lists, returning the minimal distance
/// sum over common hubs.
///
/// Label entries are always finite, but the *sum* of two saturated entries
/// can hit `UNREACHABLE` exactly — that would conflate a very long path with
/// the ∅ ("no path") sentinel, so the sum is clamped to `UNREACHABLE - 1`,
/// matching the saturation convention of the distance matrix.
pub(crate) fn merge_min(out: &[LabelEntry], inc: &[LabelEntry]) -> u16 {
    let mut best = UNREACHABLE;
    let (mut i, mut j) = (0, 0);
    while i < out.len() && j < inc.len() {
        match out[i].0.cmp(&inc[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let sum = out[i].1.saturating_add(inc[j].1).min(UNREACHABLE - 1);
                best = best.min(sum);
                i += 1;
                j += 1;
            }
        }
    }
    best
}

/// Default number of same-batch roots packed into one word-parallel BFS
/// frontier (one bit per root; the word is a `u64`).
pub(crate) const DEFAULT_BATCH: usize = 64;

#[derive(Clone, Copy)]
pub(crate) enum Direction {
    /// Follow out-edges.
    Forward,
    /// Follow in-edges.
    Backward,
}

/// Per-group scratch for the batched construction, persistent across batches
/// (every buffer is reset through a touched list, never reallocated).
struct GroupScratch {
    n: usize,
    /// Row capacity: max roots this group handles per batch.
    cap: usize,
    /// Bitmask of roots that reached each node (phase A), reset per pass.
    arrived: Vec<u64>,
    /// Next-level mask accumulator, cleared while draining `next_list`.
    next: Vec<u64>,
    /// Dense hub-side label table: `tmp[rank * cap + j]` = pre-batch
    /// `label_out`/`label_in` entry of root `j`'s hub for `rank`.
    tmp: Vec<u16>,
    tmp_touched: Vec<usize>,
    /// Cached phase-A prune values, `already_*[j * n + v]`; only slots the
    /// phase-A BFS visited this batch are ever read back, so no reset.
    already_fwd: Vec<u16>,
    already_bwd: Vec<u16>,
    frontier: Vec<(u32, u64)>,
    next_list: Vec<u32>,
    arrived_list: Vec<u32>,
}

impl GroupScratch {
    fn new(n: usize, cap: usize) -> Self {
        GroupScratch {
            n,
            cap,
            arrived: vec![0; n],
            next: vec![0; n],
            tmp: vec![UNREACHABLE; n * cap],
            tmp_touched: Vec::new(),
            already_fwd: vec![0; n * cap],
            already_bwd: vec![0; n * cap],
            frontier: Vec::new(),
            next_list: Vec::new(),
            arrived_list: Vec::new(),
        }
    }

    /// Phase A: word-parallel pruned BFS for this group's `roots`, pruning
    /// against the labels committed by earlier batches only. Caches the
    /// computed prune value for every (root, node) visit in `already_fwd` /
    /// `already_bwd`. A root's bit stops expanding as soon as its prune value
    /// resolves to `<= depth`, exactly like the sequential prune — except
    /// that the intra-batch label term is deferred to phase B.
    fn phase_a(
        &mut self,
        g: &DataGraph,
        roots: &[NodeId],
        direction: Direction,
        label_out: &[Vec<LabelEntry>],
        label_in: &[Vec<LabelEntry>],
    ) {
        let (n, cap) = (self.n, self.cap);
        let width = roots.len();
        debug_assert!(width <= cap && width <= 64);

        // Dense hub-side table: one column per root, rows indexed by the
        // pre-batch rank of the joining hub.
        for (j, &hub) in roots.iter().enumerate() {
            let hub_labels = match direction {
                Direction::Forward => &label_out[hub.index()],
                Direction::Backward => &label_in[hub.index()],
            };
            for &(r, d) in hub_labels {
                let slot = r as usize * cap + j;
                self.tmp[slot] = d;
                self.tmp_touched.push(slot);
            }
        }

        self.frontier.clear();
        for (j, &hub) in roots.iter().enumerate() {
            self.arrived[hub.index()] |= 1u64 << j;
            self.arrived_list.push(hub.index() as u32);
            self.frontier.push((hub.index() as u32, 1u64 << j));
        }
        let already = match direction {
            Direction::Forward => &mut self.already_fwd,
            Direction::Backward => &mut self.already_bwd,
        };

        let mut d: u16 = 0;
        while !self.frontier.is_empty() {
            for &(vu, m) in &self.frontier {
                let v = vu as usize;
                let node_labels = match direction {
                    Direction::Forward => &label_in[v],
                    Direction::Backward => &label_out[v],
                };
                // One scan of the node-side label list serves every root bit
                // that arrived at this level; a bit leaves the alive mask as
                // soon as a common-hub sum resolves it as pruned.
                let mut cur = [UNREACHABLE; 64];
                let mut alive = m;
                'scan: for &(r, dv) in node_labels {
                    let row = r as usize * cap;
                    let mut bits = alive;
                    while bits != 0 {
                        let j = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let t = self.tmp[row + j];
                        if t != UNREACHABLE {
                            let sum = t.saturating_add(dv).min(UNREACHABLE - 1);
                            if sum < cur[j] {
                                cur[j] = sum;
                                if sum <= d {
                                    alive &= !(1u64 << j);
                                    if alive == 0 {
                                        break 'scan;
                                    }
                                }
                            }
                        }
                    }
                }
                let mut expand = 0u64;
                let mut bits = m;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    already[j * n + v] = cur[j];
                    if cur[j] > d {
                        expand |= 1u64 << j;
                    }
                }
                // Depth saturation, as in the sequential pruned BFS.
                if expand != 0 && d < UNREACHABLE - 1 {
                    let neighbours = match direction {
                        Direction::Forward => g.out_neighbors(NodeId::new(vu)),
                        Direction::Backward => g.in_neighbors(NodeId::new(vu)),
                    };
                    for &w in neighbours {
                        let wi = w.index();
                        let prev = self.arrived[wi];
                        let add = expand & !prev;
                        if add != 0 {
                            if prev == 0 {
                                self.arrived_list.push(wi as u32);
                            }
                            if self.next[wi] == 0 {
                                self.next_list.push(wi as u32);
                            }
                            self.arrived[wi] |= add;
                            self.next[wi] |= add;
                        }
                    }
                }
            }
            self.frontier.clear();
            for &w in &self.next_list {
                self.frontier.push((w, self.next[w as usize]));
                self.next[w as usize] = 0;
            }
            self.next_list.clear();
            d = d.saturating_add(1);
        }

        for &slot in &self.tmp_touched {
            self.tmp[slot] = UNREACHABLE;
        }
        self.tmp_touched.clear();
        for &v in &self.arrived_list {
            self.arrived[v as usize] = 0;
        }
        self.arrived_list.clear();
    }
}

/// Phase-B replay of one root's pruned BFS: identical traversal to
/// [`pruned_bfs`], with the label merge-join replaced by the cached phase-A
/// prune value plus the intra-batch term over the same-batch labels committed
/// so far (`hub_side` lists the finite hub-side distances per lower local
/// rank; `node_side` is the dense committed-label table, `v * b + j`).
#[allow(clippy::too_many_arguments)]
fn replay_pruned_bfs(
    g: &DataGraph,
    hub: NodeId,
    direction: Direction,
    already: &[u16],
    hub_side: &[(usize, u16)],
    node_side: &[u16],
    b: usize,
    dist: &mut [u16],
    queue: &mut VecDeque<NodeId>,
) -> Vec<(NodeId, u16)> {
    queue.clear();
    dist[hub.index()] = 0;
    queue.push_back(hub);
    let mut visited: Vec<NodeId> = vec![hub];
    let mut labelled: Vec<(NodeId, u16)> = Vec::new();
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        // Every node popped here was visited by phase A at depth <= d, so
        // the cached slot is fresh; the stored value prunes identically to
        // the full pre-batch merge-join (an early-terminated value is only
        // ever `<= the phase-A depth <= d`, which decides the same way).
        let mut best = already[v.index()];
        if best > d {
            let row = v.index() * b;
            for &(j2, dh) in hub_side {
                let dn = node_side[row + j2];
                if dn != UNREACHABLE {
                    let sum = dh.saturating_add(dn).min(UNREACHABLE - 1);
                    if sum < best {
                        best = sum;
                        if sum <= d {
                            break;
                        }
                    }
                }
            }
        }
        if best <= d {
            continue;
        }
        labelled.push((v, d));
        if d >= UNREACHABLE - 1 {
            continue;
        }
        let neighbours = match direction {
            Direction::Forward => g.out_neighbors(v),
            Direction::Backward => g.in_neighbors(v),
        };
        for &w in neighbours {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                visited.push(w);
                queue.push_back(w);
            }
        }
    }
    for v in visited {
        dist[v.index()] = UNREACHABLE;
    }
    labelled
}

/// Pruned BFS from `hub` following out-edges (`Forward`) or in-edges
/// (`Backward`). Returns the nodes that should receive a label for this hub,
/// with their distances. `dist` is scratch space and is fully reset before
/// returning.
fn pruned_bfs(
    g: &DataGraph,
    hub: NodeId,
    direction: Direction,
    label_out: &[Vec<LabelEntry>],
    label_in: &[Vec<LabelEntry>],
    dist: &mut [u16],
    queue: &mut VecDeque<NodeId>,
) -> Vec<(NodeId, u16)> {
    queue.clear();
    dist[hub.index()] = 0;
    queue.push_back(hub);
    let mut visited: Vec<NodeId> = vec![hub];
    let mut labelled: Vec<(NodeId, u16)> = Vec::new();
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        // Prune if labels from higher-ranked hubs already certify `<= d`.
        let already = match direction {
            Direction::Forward => merge_min(&label_out[hub.index()], &label_in[v.index()]),
            Direction::Backward => merge_min(&label_out[v.index()], &label_in[hub.index()]),
        };
        if already <= d {
            continue;
        }
        labelled.push((v, d));
        // Depth saturation: never hand out UNREACHABLE (∅) as a real
        // distance — nodes beyond the horizon keep the saturated value.
        if d >= UNREACHABLE - 1 {
            continue;
        }
        let neighbours = match direction {
            Direction::Forward => g.out_neighbors(v),
            Direction::Backward => g.in_neighbors(v),
        };
        for &w in neighbours {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = d + 1;
                visited.push(w);
                queue.push_back(w);
            }
        }
    }
    for v in visited {
        dist[v.index()] = UNREACHABLE;
    }
    labelled
}

/// [`DistanceOracle`] built on a [`TwoHopIndex`], mirroring the paper's
/// implementation: labels answer the reachability filter, and a BFS computes
/// the exact distance only for reachable pairs.
#[derive(Debug)]
pub struct TwoHopOracle {
    index: TwoHopIndex,
    bfs: crate::bfs_oracle::BfsOracle,
}

impl TwoHopOracle {
    /// Builds the labeling for `g` and wraps it as an oracle.
    pub fn build(g: &DataGraph) -> Self {
        TwoHopOracle {
            index: TwoHopIndex::build(g),
            bfs: crate::bfs_oracle::BfsOracle::new(),
        }
    }

    /// Builds the labeling on the shared executor and wraps it as an oracle.
    pub fn build_with(g: &DataGraph, exec: &Executor) -> Self {
        TwoHopOracle {
            index: TwoHopIndex::build_with(g, exec),
            bfs: crate::bfs_oracle::BfsOracle::new(),
        }
    }

    /// Wraps an existing index.
    pub fn from_index(index: TwoHopIndex) -> Self {
        TwoHopOracle {
            index,
            bfs: crate::bfs_oracle::BfsOracle::new(),
        }
    }

    /// The underlying labeling.
    pub fn index(&self) -> &TwoHopIndex {
        &self.index
    }
}

impl DistanceOracle for TwoHopOracle {
    fn nonempty_distance(&self, g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32> {
        // Filter on the labels first: unreachable pairs never hit the BFS.
        if !self.index.reachable(from, to) {
            return None;
        }
        self.bfs.nonempty_distance(g, from, to)
    }

    fn name(&self) -> &'static str {
        "2-hop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use gpm_graph::EdgeBound;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> DataGraph {
        // Two components: a cycle 0-1-2 with a tail to 3, and isolated 4 -> 5.
        let mut g = DataGraph::new();
        g.add_nodes(6);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g.add_edge(n(4), n(5)).unwrap();
        g
    }

    #[test]
    fn exact_distances_match_matrix() {
        let g = sample();
        let m = DistanceMatrix::build(&g);
        let idx = TwoHopIndex::build(&g);
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    idx.nonempty_distance(x, y),
                    m.nonempty_distance(x, y),
                    "mismatch at ({x}, {y})"
                );
                assert_eq!(
                    idx.standard_distance(x, y),
                    m.standard_distance(x, y),
                    "standard mismatch at ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn reachability_filter() {
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        assert!(idx.reachable(n(0), n(3)));
        assert!(!idx.reachable(n(3), n(0)));
        assert!(!idx.reachable(n(0), n(5)));
        assert!(idx.reachable(n(0), n(0))); // on a cycle
        assert!(!idx.reachable(n(3), n(3))); // not on a cycle
    }

    #[test]
    fn label_size_statistics() {
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        assert!(idx.label_entries() > 0);
        assert!(idx.average_label_size() > 0.0);
    }

    #[test]
    fn oracle_agrees_with_index() {
        let g = sample();
        let o = TwoHopOracle::build(&g);
        let m = DistanceMatrix::build(&g);
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(o.nonempty_distance(&g, x, y), m.nonempty_distance(x, y));
            }
        }
        assert!(o.within(&g, n(0), n(3), EdgeBound::Hops(3)));
        assert!(!o.within(&g, n(0), n(5), EdgeBound::Unbounded));
        assert_eq!(o.name(), "2-hop");
        assert!(o.index().reachable(n(0), n(1)));
    }

    #[test]
    fn empty_graph() {
        let g = DataGraph::new();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.label_entries(), 0);
        assert_eq!(idx.average_label_size(), 0.0);
    }

    #[test]
    fn isolated_nodes_from_declared_node_sets() {
        // Nodes declared with no incident edges (the `.attrs`-file case):
        // standard self-distance is 0, non-empty self-distance is ∅, and no
        // cross pair is reachable.
        let mut g = DataGraph::new();
        g.add_nodes(3);
        let idx = TwoHopIndex::build(&g);
        let m = DistanceMatrix::build(&g);
        for x in g.nodes() {
            assert_eq!(idx.standard_distance(x, x), Some(0));
            assert_eq!(idx.nonempty_distance(x, x), None);
            assert!(!idx.reachable(x, x));
            for y in g.nodes() {
                assert_eq!(idx.nonempty_distance(x, y), m.nonempty_distance(x, y));
                assert_eq!(idx.standard_distance(x, y), m.standard_distance(x, y));
                if x != y {
                    assert!(!idx.reachable(x, y));
                }
            }
        }
    }

    #[test]
    fn unreachable_pairs_are_none_not_huge() {
        // Across components both conventions must report ∅ (None), never a
        // saturated finite value.
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.standard_distance(n(0), n(5)), None);
        assert_eq!(idx.nonempty_distance(n(0), n(5)), None);
        assert_eq!(idx.standard_distance(n(5), n(4)), None);
        // Within a component but against edge direction: also ∅.
        assert_eq!(idx.standard_distance(n(3), n(0)), None);
        assert_eq!(idx.nonempty_distance(n(3), n(0)), None);
    }

    #[test]
    fn saturated_label_sums_stay_finite() {
        // Two saturated-but-finite label entries must not sum to the ∅
        // sentinel: a very long path is still a path.
        let idx = TwoHopIndex {
            label_out: vec![vec![(0, UNREACHABLE - 1)], Vec::new()],
            label_in: vec![Vec::new(), vec![(0, UNREACHABLE - 1)]],
            diagonal: vec![UNREACHABLE, UNREACHABLE],
        };
        assert_eq!(
            idx.standard_distance(n(0), n(1)),
            Some(u32::from(UNREACHABLE - 1))
        );
        assert_eq!(
            idx.nonempty_distance(n(0), n(1)),
            Some(u32::from(UNREACHABLE - 1))
        );
        assert!(idx.reachable(n(0), n(1)));
        // The diagonal honours the same convention.
        assert_eq!(idx.nonempty_distance(n(0), n(0)), None);
        assert!(!idx.reachable(n(0), n(0)));
    }

    #[test]
    fn self_distance_conventions_on_a_cycle() {
        let g = sample();
        let idx = TwoHopIndex::build(&g);
        // On the 0-1-2 cycle: standard diagonal is 0, non-empty is the cycle.
        assert_eq!(idx.standard_distance(n(0), n(0)), Some(0));
        assert_eq!(idx.nonempty_distance(n(0), n(0)), Some(3));
        // Off the cycle: standard 0, non-empty ∅.
        assert_eq!(idx.standard_distance(n(3), n(3)), Some(0));
        assert_eq!(idx.nonempty_distance(n(3), n(3)), None);
    }

    #[test]
    fn self_loop_diagonal() {
        let mut g = DataGraph::new();
        g.add_nodes(2);
        g.add_edge(n(0), n(0)).unwrap();
        g.add_edge(n(0), n(1)).unwrap();
        let idx = TwoHopIndex::build(&g);
        assert_eq!(idx.nonempty_distance(n(0), n(0)), Some(1));
        assert_eq!(idx.nonempty_distance(n(1), n(1)), None);
    }

    #[test]
    fn batched_build_is_bit_identical_to_sequential() {
        let g = sample();
        let seq = TwoHopIndex::build_sequential(&g);
        for threads in [1usize, 2, 8] {
            let exec =
                Executor::new(gpm_exec::Parallelism::new(threads).with_sequential_threshold(0));
            for bs in [1usize, 7, 64] {
                let batched = TwoHopIndex::build_batched(&g, &exec, bs);
                assert_eq!(batched, seq, "threads={threads} batch={bs}");
            }
        }
    }

    proptest! {
        /// The batched construction reproduces the sequential labels bit for
        /// bit on random graphs, for every batch size.
        #[test]
        fn prop_batched_is_bit_identical(
            nodes in 2usize..14,
            edges in proptest::collection::vec((0u32..14, 0u32..14), 0..60),
            batch in 1usize..9
        ) {
            let mut g = DataGraph::new();
            g.add_nodes(nodes);
            for (a, b) in edges {
                if (a as usize) < nodes && (b as usize) < nodes {
                    let _ = g.try_add_edge(n(a), n(b));
                }
            }
            let seq = TwoHopIndex::build_sequential(&g);
            let exec = Executor::new(
                gpm_exec::Parallelism::new(3).with_sequential_threshold(0),
            );
            prop_assert_eq!(TwoHopIndex::build_batched(&g, &exec, batch), seq);
        }
    }

    proptest! {
        /// 2-hop labels give exactly the same distances as the matrix on
        /// random graphs.
        #[test]
        fn prop_agrees_with_matrix(
            nodes in 2usize..14,
            edges in proptest::collection::vec((0u32..14, 0u32..14), 0..60)
        ) {
            let mut g = DataGraph::new();
            g.add_nodes(nodes);
            for (a, b) in edges {
                if (a as usize) < nodes && (b as usize) < nodes {
                    let _ = g.try_add_edge(n(a), n(b));
                }
            }
            let m = DistanceMatrix::build(&g);
            let idx = TwoHopIndex::build(&g);
            for x in g.nodes() {
                for y in g.nodes() {
                    prop_assert_eq!(idx.nonempty_distance(x, y), m.nonempty_distance(x, y));
                    prop_assert_eq!(idx.reachable(x, y), m.reachable(x, y));
                }
            }
        }
    }
}
