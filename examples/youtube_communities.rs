//! Identifying video communities in a (simulated) YouTube recommendation
//! network — the setting of Example 2.3 and Exp-1 of the paper.
//!
//! The pattern P' looks for: long, older videos (p3) recommending videos
//! with few comments and many views (p2), which lead to videos uploaded by
//! "neil010" (p4), from which both highly rated "People" videos (p1) and
//! "Travel & Places" videos with few ratings (p5) are recommended.
//!
//! The example prints the result graph of the maximum match and contrasts
//! the number of matches with what the subgraph-isomorphism baseline (VF2,
//! edge-to-edge, injective) can find.
//!
//! Run with `cargo run -p gpm --release --example youtube_communities`.

use gpm::{
    bounded_simulation, subgraph_isomorphism_vf2, CmpOp, Dataset, IsoConfig, PatternGraph,
    Predicate, ResultGraph,
};

fn build_pattern() -> PatternGraph {
    let mut p = PatternGraph::new();
    let p1 = p.add_named_node(
        "p1",
        Predicate::label_eq("category", "People").and("rate", CmpOp::Gt, 4.0),
    );
    let p2 = p.add_named_node(
        "p2",
        Predicate::atom("comments", CmpOp::Lt, 160).and("views", CmpOp::Gt, 700),
    );
    let p3 = p.add_named_node(
        "p3",
        Predicate::atom("length", CmpOp::Gt, 120).and("age", CmpOp::Gt, 365),
    );
    let p4 = p.add_named_node("p4", Predicate::label_eq("uploader", "neil010"));
    let p5 = p.add_named_node(
        "p5",
        Predicate::label_eq("category", "Travel & Places").and("ratings", CmpOp::Lt, 30),
    );
    p.add_edge(p3, p2, 2u32.into()).unwrap();
    p.add_edge(p2, p4, 3u32.into()).unwrap();
    p.add_edge(p4, p1, 2u32.into()).unwrap();
    p.add_edge(p4, p5, 2u32.into()).unwrap();
    p
}

fn main() {
    // A scaled-down simulated YouTube graph (use a larger scale for a closer
    // reproduction; 0.1 keeps this example fast).
    let scale = 0.1;
    let graph = Dataset::YouTube.generate(scale, 2010);
    println!(
        "simulated YouTube graph at scale {scale}: {} videos, {} recommendations",
        graph.node_count(),
        graph.edge_count()
    );

    let pattern = build_pattern();
    let outcome = bounded_simulation(&pattern, &graph);
    println!(
        "\nbounded simulation: match = {}, {} (pattern node, video) pairs, {:.1} matches per pattern node",
        outcome.relation.is_match(&pattern),
        outcome.relation.pair_count(),
        outcome.relation.average_matches_per_pattern_node()
    );
    for u in pattern.node_ids() {
        println!(
            "  {:<3} -> {} videos",
            pattern.name(u),
            outcome.relation.matches_of(u).len()
        );
    }

    let rg = ResultGraph::build(&pattern, &graph, &outcome.relation);
    println!(
        "\nresult graph: {} videos, {} edges, {} weakly connected communities",
        rg.node_count(),
        rg.edge_count(),
        rg.weakly_connected_components().len()
    );

    // The traditional baseline: VF2 subgraph isomorphism with edge-to-edge
    // semantics. It usually finds far fewer (often zero) communities.
    let iso = subgraph_isomorphism_vf2(&pattern, &graph, &IsoConfig::default());
    println!(
        "\nVF2 subgraph isomorphism: {} embeddings, {:.1} distinct videos per pattern node{}",
        iso.count(),
        iso.average_images_per_pattern_node(&pattern),
        if iso.truncated { " (truncated)" } else { "" }
    );
}
