//! `Match−` — incremental maintenance under a single edge **deletion**
//! (Fig. 5 of the paper). Works for arbitrary (possibly cyclic) patterns.
//!
//! A deletion can only *increase* distances, so matches can only disappear.
//! The algorithm:
//!
//! 1. update the distance matrix with `UpdateM`, obtaining `AFF1`;
//! 2. for every data node whose outgoing distances grew, re-verify the
//!    pattern edges of the pattern nodes it currently matches; failures are
//!    removed from the match and pushed on a worklist (`wSet`);
//! 3. pop `(u, y)` pairs from the worklist and re-verify the affected pattern
//!    edge for every matched ancestor candidate that could reach `y` within
//!    the bound, cascading removals until the fixpoint.
//!
//! The implementation deviates from the pseudo-code in one defensive way:
//! step 2 re-verifies *all* out-edges of the affected sources rather than
//! only the edges whose sink also appears in `AFF1` — this keeps the pass
//! correct when several pairs of the same batch interact (see the discussion
//! in `batch.rs`), at the cost of a few extra constant-time checks.
//!
//! Everything here is generic over a maintainable [`DistanceOracle`], so the
//! same pass drives the distance matrix and the incremental 2-hop labeling.

use crate::affected::{Aff2, IncrementalOutcome};
use crate::state::MatchState;
use gpm_distance::DistanceOracle;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, EdgeBound, GraphError, NodeId, PatternGraph, PatternNodeId};
use rustc_hash::FxHashSet;

/// Applies the deletion of `(from, to)` to `graph`, maintains `oracle` and
/// `state`, and reports the affected areas.
///
/// Errors with [`GraphError::MissingEdge`] if the edge does not exist; in
/// that case nothing is modified.
pub fn match_minus<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &mut DataGraph,
    oracle: &mut O,
    state: &mut MatchState,
    from: NodeId,
    to: NodeId,
) -> Result<IncrementalOutcome, GraphError> {
    graph.remove_edge(from, to)?;
    let aff1 = oracle.apply_delete(graph, from, to, &Executor::from_env());

    let sources: FxHashSet<NodeId> = aff1
        .iter()
        .filter(|p| p.increased())
        .map(|p| p.source)
        .collect();
    let mut aff2 = Aff2::default();
    let mut verifications = 0usize;
    process_removals(
        pattern,
        graph,
        oracle,
        state,
        &sources,
        &mut aff2,
        &mut verifications,
    );
    Ok(IncrementalOutcome::new(aff1, aff2, verifications))
}

/// Whether matched node `x` of pattern node `u` still has a witness for the
/// pattern edge `(u, target)` with the given bound.
#[inline]
pub(crate) fn edge_witnessed<O: DistanceOracle + ?Sized>(
    graph: &DataGraph,
    oracle: &O,
    state: &MatchState,
    x: NodeId,
    target: PatternNodeId,
    bound: EdgeBound,
) -> bool {
    state
        .matches_of(target)
        .into_iter()
        .any(|y| oracle.within(graph, x, y, bound))
}

/// Removal propagation shared by `Match−` and the deletion side of
/// `IncMatch`. `sources` are the data nodes whose *outgoing* distances
/// increased.
pub(crate) fn process_removals<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
    state: &mut MatchState,
    sources: &FxHashSet<NodeId>,
    aff2: &mut Aff2,
    verifications: &mut usize,
) {
    // Worklist of (pattern node, data node) pairs removed from the match.
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();

    // Step 2: seed from the affected sources.
    for &v in sources {
        for u in pattern.node_ids() {
            if !state.in_mat(u, v) {
                continue;
            }
            let mut invalid = false;
            for e in pattern.out_edges(u) {
                *verifications += 1;
                if !edge_witnessed(graph, oracle, state, v, e.to, e.bound) {
                    invalid = true;
                    break;
                }
            }
            if invalid {
                state.remove(u, v);
                aff2.removed.push((u, v));
                worklist.push((u, v));
            }
        }
    }

    // Step 3: cascade to ancestors.
    while let Some((u, y)) = worklist.pop() {
        for e in pattern.in_edges(u) {
            let parent = e.from;
            // Only matched nodes that could use y as a witness are affected.
            for x in state.matches_of(parent) {
                if !oracle.within(graph, x, y, e.bound) {
                    continue;
                }
                *verifications += 1;
                if edge_witnessed(graph, oracle, state, x, u, e.bound) {
                    continue;
                }
                state.remove(parent, x);
                aff2.removed.push((parent, x));
                worklist.push((parent, x));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_distance::DistanceMatrix;
    use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};

    fn setup() -> (DataGraph, PatternGraph, DistanceMatrix, MatchState) {
        // a -> b -> c -> d with labels A, B, C, D; pattern A -[2]-> C -[1]-> D.
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .labeled_node("D")
            .path(&["A", "B", "C", "D"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .labeled_node("D")
            .edge("A", "C", 2u32)
            .edge("C", "D", 1u32)
            .build()
            .unwrap();
        let m = DistanceMatrix::build(&g);
        let s = MatchState::initialise(&p, &g, &m);
        (g, p, m, s)
    }

    #[test]
    fn deleting_irrelevant_edge_changes_nothing() {
        let (mut g, p, _, _) = setup();
        // Add an extra edge whose deletion does not affect the match.
        let extra_from = NodeId::new(3);
        let extra_to = NodeId::new(0);
        g.add_edge(extra_from, extra_to).unwrap();
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        let before = s.relation();

        let out = match_minus(&p, &mut g, &mut m, &mut s, extra_from, extra_to).unwrap();
        // Distances did change (the cycle disappeared), but the match did not.
        assert!(s.relation().is_match(&p));
        assert_eq!(s.relation(), before);
        assert!(out.aff2.is_empty());
        assert_eq!(m, DistanceMatrix::build(&g));
    }

    #[test]
    fn deleting_witness_edge_breaks_the_match() {
        let (mut g, p, mut m, mut s) = setup();
        assert!(s.relation().is_match(&p));
        // Deleting c -> d removes D's only witness, cascading to C and A.
        let out = match_minus(&p, &mut g, &mut m, &mut s, NodeId::new(2), NodeId::new(3)).unwrap();
        assert!(!s.all_matched());
        assert!(s.relation().is_empty());
        assert!(
            out.aff2.removed.len() >= 2,
            "cascade should remove C and A matches"
        );
        assert!(out.stats.aff1 > 0);
        assert_eq!(out.stats.aff2, out.aff2.len());
        // Matrix stays consistent with a rebuild.
        assert_eq!(m, DistanceMatrix::build(&g));
    }

    #[test]
    fn deletion_with_alternative_witness_keeps_match() {
        // a -> b -> c and a -> x -> c (two 2-hop routes); pattern A -[2]-> C.
        let (mut g, names) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("X")
            .labeled_node("C")
            .path(&["A", "B", "C"])
            .path(&["A", "X", "C"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 2u32)
            .build()
            .unwrap();
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        assert!(s.relation().is_match(&p));

        let out = match_minus(&p, &mut g, &mut m, &mut s, names["B"], names["C"]).unwrap();
        assert!(
            s.relation().is_match(&p),
            "alternative route keeps the match"
        );
        assert!(out.aff2.is_empty());
    }

    #[test]
    fn missing_edge_is_an_error_and_leaves_state_untouched() {
        let (mut g, p, mut m, mut s) = setup();
        let before_edges = g.edge_count();
        let before_rel = s.relation();
        let err = match_minus(&p, &mut g, &mut m, &mut s, NodeId::new(3), NodeId::new(0));
        assert!(err.is_err());
        assert_eq!(g.edge_count(), before_edges);
        assert_eq!(s.relation(), before_rel);
        let _ = p;
    }

    #[test]
    fn state_equals_recompute_after_deletion() {
        let (mut g, p, mut m, mut s) = setup();
        match_minus(&p, &mut g, &mut m, &mut s, NodeId::new(0), NodeId::new(1)).unwrap();
        let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
        assert_eq!(s.relation(), recomputed.relation);
    }

    #[test]
    fn works_for_cyclic_patterns() {
        // Pattern with a cycle: A -[2]-> C, C -[3]-> A over a data cycle.
        let (mut g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .path(&["A", "B", "C"])
            .edge("C", "A")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 2u32)
            .edge("C", "A", 3u32)
            .build()
            .unwrap();
        assert!(!p.is_dag());
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        assert!(s.relation().is_match(&p));

        match_minus(&p, &mut g, &mut m, &mut s, NodeId::new(2), NodeId::new(0)).unwrap();
        let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
        assert_eq!(s.relation(), recomputed.relation);
        assert!(s.relation().is_empty());
    }
}
