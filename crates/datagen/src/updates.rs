//! Random update streams for the incremental experiments.
//!
//! Exp-3 applies lists of edge deletions and insertions (`|δ|` from 200 to
//! 3200) to the YouTube graph and compares `IncMatch` against re-running
//! `Match`. This module generates such streams: a configurable mix of
//! deletions of existing edges and insertions of fresh edges, each update
//! valid at the moment it is applied (the stream is generated against a
//! scratch copy of the graph that replays the updates).

use gpm_distance::EdgeUpdate;
use gpm_graph::{DataGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the update-stream generator.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateStreamConfig {
    /// Total number of updates `|δ|`.
    pub count: usize,
    /// Fraction of updates that are insertions (0.0 = deletions only,
    /// 1.0 = insertions only, 0.5 = the mixed workload of Fig. 6(i)).
    pub insert_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl UpdateStreamConfig {
    /// A mixed stream of `count` updates (half insertions, half deletions).
    pub fn mixed(count: usize) -> Self {
        UpdateStreamConfig {
            count,
            insert_fraction: 0.5,
            seed: 0,
        }
    }

    /// A deletions-only stream (Fig. 6(j)).
    pub fn deletions(count: usize) -> Self {
        UpdateStreamConfig {
            count,
            insert_fraction: 0.0,
            seed: 0,
        }
    }

    /// An insertions-only stream (Fig. 6(k)).
    pub fn insertions(count: usize) -> Self {
        UpdateStreamConfig {
            count,
            insert_fraction: 1.0,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a valid update stream for `graph`.
///
/// Every deletion removes an edge that exists at that point of the stream and
/// every insertion adds an edge that does not; `graph` itself is not
/// modified.
pub fn random_updates(graph: &DataGraph, config: &UpdateStreamConfig) -> Vec<EdgeUpdate> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut scratch = graph.clone();
    let n = scratch.node_count();
    let mut updates = Vec::with_capacity(config.count);
    if n == 0 {
        return updates;
    }
    // Pool of existing edges for cheap random deletion picks.
    let mut edge_pool: Vec<(NodeId, NodeId)> = scratch.edges().collect();
    edge_pool.shuffle(&mut rng);

    let mut attempts = 0usize;
    let attempt_cap = config.count * 100 + 1_000;
    while updates.len() < config.count && attempts < attempt_cap {
        attempts += 1;
        let want_insert = rng.gen_bool(config.insert_fraction);
        if want_insert {
            let a = NodeId::new(rng.gen_range(0..n as u32));
            let b = NodeId::new(rng.gen_range(0..n as u32));
            if scratch.has_edge(a, b) {
                continue;
            }
            scratch.add_edge(a, b).expect("validated endpoints");
            edge_pool.push((a, b));
            updates.push(EdgeUpdate::Insert(a, b));
        } else {
            // Pop candidates until one that still exists is found.
            let mut deleted = None;
            while let Some((a, b)) = edge_pool.pop() {
                if scratch.has_edge(a, b) {
                    scratch.remove_edge(a, b).expect("edge exists");
                    deleted = Some((a, b));
                    break;
                }
            }
            match deleted {
                Some((a, b)) => updates.push(EdgeUpdate::Delete(a, b)),
                None => {
                    // No edges left to delete: fall back to insertions.
                    if config.insert_fraction == 0.0 {
                        break;
                    }
                }
            }
        }
    }
    updates
}

/// One batch of a replayable timed stream: apply `updates` when the clock
/// reaches `at_ns` nanoseconds after stream start.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedBatch {
    /// Scheduled offset from stream start, in nanoseconds.
    pub at_ns: u64,
    /// The batch to apply at that instant (valid when applied in order).
    pub updates: Vec<EdgeUpdate>,
}

/// Configuration of [`timed_update_stream`].
#[derive(Clone, Debug, PartialEq)]
pub struct TimedStreamConfig {
    /// Number of batches in the stream.
    pub batches: usize,
    /// Updates per batch.
    pub batch_size: usize,
    /// Target sustained rate in updates per second; batch `i` is scheduled
    /// at `i * batch_size / updates_per_sec`.
    pub updates_per_sec: f64,
    /// Fraction of updates that are insertions (see
    /// [`UpdateStreamConfig::insert_fraction`]).
    pub insert_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TimedStreamConfig {
    /// A mixed stream (half insertions, half deletions) at a target rate.
    pub fn mixed(batches: usize, batch_size: usize, updates_per_sec: f64) -> Self {
        TimedStreamConfig {
            batches,
            batch_size,
            updates_per_sec,
            insert_fraction: 0.5,
            seed: 0,
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a replayable timestamped update stream for `graph`.
///
/// The schedule is purely arithmetic — batch `i` is due at
/// `i * batch_size / updates_per_sec` — so the same config always yields
/// the same timestamps *and* the same updates: a load run can be replayed
/// bit-identically. Each batch is generated against a scratch copy that has
/// the previous batches applied, so every update is valid when the stream
/// is replayed in order; `graph` itself is not modified.
pub fn timed_update_stream(graph: &DataGraph, config: &TimedStreamConfig) -> Vec<TimedBatch> {
    assert!(
        config.updates_per_sec.is_finite() && config.updates_per_sec > 0.0,
        "updates_per_sec must be positive"
    );
    let mut scratch = graph.clone();
    let batch_interval_ns = config.batch_size as f64 / config.updates_per_sec * 1e9;
    let mut stream = Vec::with_capacity(config.batches);
    for i in 0..config.batches {
        let updates = random_updates(
            &scratch,
            &UpdateStreamConfig {
                count: config.batch_size,
                insert_fraction: config.insert_fraction,
                seed: config.seed.wrapping_add(i as u64),
            },
        );
        for u in &updates {
            u.apply(&mut scratch);
        }
        stream.push(TimedBatch {
            at_ns: (i as f64 * batch_interval_ns).round() as u64,
            updates,
        });
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_graph::{random_graph, RandomGraphConfig};

    fn sample() -> DataGraph {
        random_graph(&RandomGraphConfig::new(100, 400, 10).with_seed(3))
    }

    /// Replays a stream, asserting every update is valid when applied.
    fn replay(graph: &DataGraph, updates: &[EdgeUpdate]) -> DataGraph {
        let mut g = graph.clone();
        for u in updates {
            assert!(u.apply(&mut g), "update {u} was not applicable");
        }
        g
    }

    #[test]
    fn mixed_stream_is_valid_and_sized() {
        let g = sample();
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(200).with_seed(1));
        assert_eq!(updates.len(), 200);
        let inserts = updates.iter().filter(|u| u.is_insert()).count();
        assert!(inserts > 50 && inserts < 150, "unbalanced mix: {inserts}");
        replay(&g, &updates);
    }

    #[test]
    fn deletion_only_stream() {
        let g = sample();
        let updates = random_updates(&g, &UpdateStreamConfig::deletions(150).with_seed(2));
        assert_eq!(updates.len(), 150);
        assert!(updates.iter().all(|u| !u.is_insert()));
        let after = replay(&g, &updates);
        assert_eq!(after.edge_count(), g.edge_count() - 150);
    }

    #[test]
    fn insertion_only_stream() {
        let g = sample();
        let updates = random_updates(&g, &UpdateStreamConfig::insertions(150).with_seed(2));
        assert_eq!(updates.len(), 150);
        assert!(updates.iter().all(|u| u.is_insert()));
        let after = replay(&g, &updates);
        assert_eq!(after.edge_count(), g.edge_count() + 150);
    }

    #[test]
    fn deletions_capped_by_available_edges() {
        let g = random_graph(&RandomGraphConfig::new(10, 12, 2).with_seed(1));
        let updates = random_updates(&g, &UpdateStreamConfig::deletions(500));
        assert_eq!(updates.len(), 12);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = sample();
        let a = random_updates(&g, &UpdateStreamConfig::mixed(50).with_seed(9));
        let b = random_updates(&g, &UpdateStreamConfig::mixed(50).with_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_yields_no_updates() {
        let g = DataGraph::new();
        let updates = random_updates(&g, &UpdateStreamConfig::mixed(10));
        assert!(updates.is_empty());
    }

    #[test]
    fn timed_stream_is_scheduled_valid_and_replayable() {
        let g = sample();
        let cfg = TimedStreamConfig::mixed(6, 25, 1000.0).with_seed(5);
        let stream = timed_update_stream(&g, &cfg);
        assert_eq!(stream.len(), 6);
        // Schedule: batch i due at i * 25ms for 25 updates at 1000/s.
        for (i, b) in stream.iter().enumerate() {
            assert_eq!(b.at_ns, i as u64 * 25_000_000);
            assert_eq!(b.updates.len(), 25);
        }
        // Replaying the concatenated stream is valid against the base graph.
        let all: Vec<EdgeUpdate> = stream.iter().flat_map(|b| b.updates.clone()).collect();
        replay(&g, &all);
        // Bit-identical on regeneration.
        assert_eq!(stream, timed_update_stream(&g, &cfg));
    }
}
