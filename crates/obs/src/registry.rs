//! The process-global registry: named scopes holding counters and
//! histograms, a hierarchical text report, and the JSONL export sink.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json::Obj;
use crate::{enabled, Counter};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// A named group of metrics for one subsystem (`"match"`, `"wal"`, …).
///
/// Lookups get-or-create under a mutex and hand back `Arc`s; instrumented
/// code resolves its handles once (typically in a `OnceLock`) and then
/// touches only lock-free atomics on the hot path.
#[derive(Debug)]
pub struct Scope {
    name: String,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Scope {
    fn new(name: &str) -> Self {
        Scope {
            name: name.to_string(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// This scope's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Get-or-create a **deterministic** counter: its final value must be
    /// bit-identical regardless of `GPM_THREADS` or scheduling.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, true)
    }

    /// Get-or-create a counter whose value legitimately depends on
    /// scheduling (work steals, per-worker busy time, chunk counts).
    pub fn nondet_counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, false)
    }

    fn counter_with(&self, name: &str, deterministic: bool) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("obs counter map");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new(deterministic))),
        )
    }

    /// Get-or-create a histogram. Names ending in `_ns` are rendered as
    /// durations in reports; anything else as plain magnitudes.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("obs histogram map");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    fn snapshot(&self) -> ScopeSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("obs counter map")
            .iter()
            .map(|(k, c)| {
                (
                    k.clone(),
                    CounterSnapshot {
                        value: c.get(),
                        deterministic: c.is_deterministic(),
                    },
                )
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("obs histogram map")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        ScopeSnapshot {
            counters,
            histograms,
        }
    }

    fn reset(&self) {
        for c in self.counters.lock().expect("obs counter map").values() {
            c.reset();
        }
        for h in self.histograms.lock().expect("obs histogram map").values() {
            h.reset();
        }
    }
}

/// The collection of all [`Scope`]s in the process; obtain it via
/// [`registry()`].
#[derive(Debug, Default)]
pub struct Registry {
    scopes: Mutex<BTreeMap<String, Arc<Scope>>>,
}

/// The process-global [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    /// Get-or-create the scope named `name`.
    pub fn scope(&self, name: &str) -> Arc<Scope> {
        let mut map = self.scopes.lock().expect("obs scope map");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Scope::new(name))),
        )
    }

    /// Zero every counter and histogram in place. Handles cached by
    /// instrumented code stay valid.
    pub fn reset(&self) {
        for scope in self.scopes.lock().expect("obs scope map").values() {
            scope.reset();
        }
    }

    /// Point-in-time copy of every scope.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let scopes = self
            .scopes
            .lock()
            .expect("obs scope map")
            .iter()
            .map(|(k, s)| (k.clone(), s.snapshot()))
            .collect();
        RegistrySnapshot { scopes }
    }

    /// Render the hierarchy as indented text. Counters print their value
    /// (`~` prefix marks scheduling-dependent ones); histograms print
    /// count, min, p50/p99/p999, max and mean, formatted as durations for
    /// `*_ns` metrics.
    pub fn report(&self) -> String {
        self.snapshot().render()
    }

    /// Append the current snapshot as one JSON line to the `GPM_OBS_OUT`
    /// sink. Returns `true` if a line was written (observability on and a
    /// sink configured).
    pub fn export_snapshot(&self) -> bool {
        if !enabled() {
            return false;
        }
        let line = self.snapshot().to_json();
        write_line(&line)
    }
}

/// One counter inside a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub value: u64,
    pub deterministic: bool,
}

/// One scope inside a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ScopeSnapshot {
    pub counters: BTreeMap<String, CounterSnapshot>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Point-in-time copy of the whole registry.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    pub scopes: BTreeMap<String, ScopeSnapshot>,
}

impl RegistrySnapshot {
    /// Flatten the deterministic counters as `"scope.name" -> value`.
    /// This is the comparison set for thread-count determinism checks;
    /// nondeterministic counters and (timing) histograms are excluded.
    pub fn det_counters(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (scope, s) in &self.scopes {
            for (name, c) in &s.counters {
                if c.deterministic {
                    out.insert(format!("{scope}.{name}"), c.value);
                }
            }
        }
        out
    }

    /// Serialize as one compact JSON line:
    /// `{"type":"snapshot","scopes":{"<scope>":{"counters":{"<name>":
    /// {"value":N,"det":B}},"histograms":{"<name>":{"count":N,"sum":N,
    /// "min":N,"max":N,"p50":N,"p99":N,"p999":N,"buckets":[[bound,count],…]}}}}}`
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let mut root = Obj::begin(&mut out);
        root.str("type", "snapshot");
        let mut scopes = root.nested("scopes");
        for (scope_name, scope) in &self.scopes {
            let mut s = scopes.nested(scope_name);
            let mut counters = s.nested("counters");
            for (name, c) in &scope.counters {
                let mut counter = counters.nested(name);
                counter.uint("value", c.value);
                counter.bool("det", c.deterministic);
                counter.end();
            }
            counters.end();
            let mut hists = s.nested("histograms");
            for (name, h) in &scope.histograms {
                let mut hist = hists.nested(name);
                hist.uint("count", h.count);
                hist.uint("sum", h.sum);
                hist.uint("min", h.min);
                hist.uint("max", h.max);
                hist.uint("p50", h.p50());
                hist.uint("p99", h.p99());
                hist.uint("p999", h.p999());
                hist.uint_pairs("buckets", &h.buckets);
                hist.end();
            }
            hists.end();
            s.end();
        }
        scopes.end();
        root.end();
        out
    }

    fn render(&self) -> String {
        let mut out = String::from("== gpm-obs report ==\n");
        if self.scopes.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        for (scope_name, scope) in &self.scopes {
            out.push_str(&format!("[{scope_name}]\n"));
            for (name, c) in &scope.counters {
                let marker = if c.deterministic { "" } else { "~" };
                out.push_str(&format!(
                    "  {:<38} {}\n",
                    format!("{marker}{name}"),
                    c.value
                ));
            }
            for (name, h) in &scope.histograms {
                let as_duration = name.ends_with("_ns");
                let fmt = |v: u64| {
                    if as_duration {
                        fmt_ns(v)
                    } else {
                        v.to_string()
                    }
                };
                out.push_str(&format!(
                    "  {:<38} n={} min={} p50={} p99={} p999={} max={} mean={}\n",
                    name,
                    h.count,
                    fmt(h.min),
                    fmt(h.p50()),
                    fmt(h.p99()),
                    fmt(h.p999()),
                    fmt(h.max),
                    fmt(h.mean() as u64),
                ));
            }
        }
        out
    }
}

/// Human formatting for nanosecond magnitudes.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

// ---------------------------------------------------------------------------
// JSONL sink

enum OutState {
    /// `GPM_OBS_OUT` not yet consulted.
    Unresolved,
    /// No sink (env unset, or the file failed to open).
    Disabled,
    Open(File),
}

static OUT: Mutex<OutState> = Mutex::new(OutState::Unresolved);

/// Point the JSONL sink at `path` (create/append), overriding
/// `GPM_OBS_OUT`. Returns whether the file opened.
pub fn set_out_path(path: &Path) -> bool {
    let mut out = OUT.lock().expect("obs out sink");
    match OpenOptions::new().create(true).append(true).open(path) {
        Ok(f) => {
            *out = OutState::Open(f);
            true
        }
        Err(err) => {
            eprintln!("gpm-obs: cannot open {}: {err}", path.display());
            *out = OutState::Disabled;
            false
        }
    }
}

fn write_line(line: &str) -> bool {
    let mut out = OUT.lock().expect("obs out sink");
    if let OutState::Unresolved = *out {
        *out = match std::env::var_os("GPM_OBS_OUT") {
            None => OutState::Disabled,
            Some(path) => match OpenOptions::new().create(true).append(true).open(&path) {
                Ok(f) => OutState::Open(f),
                Err(err) => {
                    eprintln!("gpm-obs: cannot open {}: {err}", Path::new(&path).display());
                    OutState::Disabled
                }
            },
        };
    }
    match *out {
        // One write_all per line: with O_APPEND, concurrent processes
        // sharing a sink can interleave lines but never split one.
        OutState::Open(ref mut f) => {
            let mut buf = String::with_capacity(line.len() + 1);
            buf.push_str(line);
            buf.push('\n');
            f.write_all(buf.as_bytes()).is_ok()
        }
        _ => false,
    }
}

/// Append one structured event line to the JSONL sink:
/// `{"type":"event","scope":…,"name":…,<nums as integers>,<strs as strings>}`.
/// A no-op unless observability is on and a sink is configured.
pub fn emit_event(scope: &str, name: &str, nums: &[(&str, u64)], strs: &[(&str, &str)]) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(96);
    let mut obj = Obj::begin(&mut line);
    obj.str("type", "event");
    obj.str("scope", scope);
    obj.str("name", name);
    for &(k, v) in nums {
        obj.uint(k, v);
    }
    for &(k, v) in strs {
        obj.str(k, v);
    }
    obj.end();
    write_line(&line);
}
