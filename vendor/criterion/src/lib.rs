//! Vendored, minimal benchmark harness (offline stand-in for `criterion`).
//!
//! Implements the subset this workspace's benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId` and `Bencher::iter` — with honest
//! wall-clock measurement (warmup, then a timed sample whose size follows
//! `sample_size`) but none of criterion's statistics, plotting or HTML
//! reports. Results print as `name  time: [median per-iteration]` lines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, like `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, like `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion into [`BenchmarkId`], accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            text: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { text: self }
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one duration per sample iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: let caches/allocators settle and give the optimiser its
        // steady state.
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no measurement: Bencher::iter never called)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("nonempty samples");
    println!(
        "{id:<50} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(runs >= 5);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn durations_format_across_scales() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
