//! The worked examples of the paper (Examples 1.1, 2.2, 2.3), encoded as
//! integration tests so the reproduction can be checked claim by claim.

use gpm::{
    bounded_simulation, Attributes, CmpOp, DataGraphBuilder, DistanceMatrix, EdgeBound,
    PatternGraphBuilder, Predicate, ResultGraph,
};

/// Example 2.2 (1): P1 ⊴ G1 — start-up team matching, where HR and SE map to
/// the same person and DM maps to two people.
#[test]
fn example_2_2_p1_g1() {
    let (g1, g_ids) = DataGraphBuilder::new()
        .node("A", Attributes::new().with("title", "A"))
        .node("HR", Attributes::new().with("title", "HR").with("hr", true))
        .node(
            "HRSE",
            Attributes::new()
                .with("title", "HR")
                .with("hr", true)
                .with("se", true),
        )
        .node("SE", Attributes::new().with("title", "SE").with("se", true))
        .node(
            "DMl",
            Attributes::new().with("title", "DM").with("hobby", "golf"),
        )
        .node(
            "DMr",
            Attributes::new().with("title", "DM").with("hobby", "golf"),
        )
        .edge("A", "HR")
        .edge("HR", "HRSE")
        .edge("A", "HRSE")
        .edge("HRSE", "SE")
        .edge("SE", "DMr")
        .edge("HRSE", "DMl")
        .edge("DMl", "A")
        .edge("DMr", "DMl")
        .build()
        .unwrap();
    let (p1, p_ids) = PatternGraphBuilder::new()
        .node("A", Predicate::label_eq("title", "A"))
        .node("SE", Predicate::label_eq("se", true))
        .node("HR", Predicate::label_eq("hr", true))
        .node(
            "DM",
            Predicate::label_eq("title", "DM").and("hobby", CmpOp::Eq, "golf"),
        )
        .edge("A", "SE", 2u32)
        .edge("A", "HR", 2u32)
        .edge("SE", "DM", 1u32)
        .edge("HR", "DM", 2u32)
        .unbounded_edge("DM", "A")
        .build()
        .unwrap();

    let out = bounded_simulation(&p1, &g1);
    assert!(out.relation.is_match(&p1), "P1 must match G1");
    // SE maps to both the pure SE and the HR+SE person.
    let se_matches = out.relation.matches_of(p_ids["SE"]);
    assert!(se_matches.contains(&g_ids["SE"]));
    assert!(se_matches.contains(&g_ids["HRSE"]));
    // HR maps to both HR and the HR+SE person.
    let hr_matches = out.relation.matches_of(p_ids["HR"]);
    assert!(hr_matches.contains(&g_ids["HR"]));
    assert!(hr_matches.contains(&g_ids["HRSE"]));
    // DM maps to both golf-playing managers.
    assert_eq!(out.relation.matches_of(p_ids["DM"]).len(), 2);
    // The relation is a valid match per the definition.
    let m = DistanceMatrix::build(&g1);
    assert!(out.relation.is_valid_match(&p1, &g1, &m));
}

fn academic_graph() -> (
    gpm::DataGraph,
    std::collections::HashMap<String, gpm::NodeId>,
) {
    let (g, ids) = DataGraphBuilder::new()
        .node("DB", Attributes::labeled("DB").with("dept", "CS"))
        .node("AI", Attributes::labeled("AI").with("dept", "CS"))
        .node("Gen", Attributes::labeled("Gen").with("dept", "Bio"))
        .node("Eco", Attributes::labeled("Eco").with("dept", "Bio"))
        .node("Med", Attributes::labeled("Med").with("dept", "Med"))
        .node("Soc", Attributes::labeled("Soc").with("dept", "Soc"))
        .node("Chem", Attributes::labeled("Chem").with("dept", "Chem"))
        .edge("DB", "Gen")
        .edge("Gen", "Eco")
        .edge("Eco", "Med")
        .edge("Med", "Soc")
        .edge("Soc", "DB")
        .edge("Gen", "Soc")
        .edge("Med", "DB")
        .edge("AI", "Chem")
        .edge("Chem", "AI")
        .build()
        .unwrap();
    (g, ids.into_iter().collect())
}

fn p2() -> (
    gpm::PatternGraph,
    std::collections::HashMap<String, gpm::PatternNodeId>,
) {
    let (p, ids) = PatternGraphBuilder::new()
        .node("CS", Predicate::label_eq("dept", "CS"))
        .node("Bio", Predicate::label_eq("dept", "Bio"))
        .node("Med", Predicate::label_eq("dept", "Med"))
        .node("Soc", Predicate::label_eq("dept", "Soc"))
        .edge("CS", "Bio", 2u32)
        .edge("CS", "Soc", 3u32)
        .edge("Bio", "Soc", 2u32)
        .edge("Bio", "Med", 3u32)
        .unbounded_edge("Med", "CS")
        .build()
        .unwrap();
    (p, ids.into_iter().collect())
}

/// Example 2.2 (2): P2 ⊴ G2, with CS mapped to DB but *not* AI (AI cannot
/// reach Soc within 3 hops).
#[test]
fn example_2_2_p2_g2() {
    let (g2, g_ids) = academic_graph();
    let (pattern, p_ids) = p2();
    let out = bounded_simulation(&pattern, &g2);
    assert!(out.relation.is_match(&pattern));
    let cs = out.relation.matches_of(p_ids["CS"]);
    assert!(cs.contains(&g_ids["DB"]));
    assert!(!cs.contains(&g_ids["AI"]), "AI must not match CS");
    let bio = out.relation.matches_of(p_ids["Bio"]);
    assert!(bio.contains(&g_ids["Gen"]) && bio.contains(&g_ids["Eco"]));
}

/// Example 2.2 (3): dropping the edge (DB, Gen) makes P2 no longer match.
#[test]
fn example_2_2_p2_not_matching_g3() {
    let (mut g3, g_ids) = academic_graph();
    g3.remove_edge(g_ids["DB"], g_ids["Gen"]).unwrap();
    let (pattern, _) = p2();
    let out = bounded_simulation(&pattern, &g3);
    assert!(!out.relation.is_match(&pattern));
    assert!(out.relation.is_empty());
}

/// Example 2.3: the result graph Gr of P2 over G2 contains every matched node
/// and one edge per witnessed pattern edge; one pattern node can map to
/// multiple data nodes and different pattern nodes can share a data node.
#[test]
fn example_2_3_result_graph() {
    let (g2, g_ids) = academic_graph();
    let (pattern, p_ids) = p2();
    let out = bounded_simulation(&pattern, &g2);
    let rg = ResultGraph::build(&pattern, &g2, &out.relation);

    // Gr contains exactly the matched data nodes.
    assert_eq!(rg.node_count(), out.relation.data_nodes().len());
    // Bio maps to two nodes (Gen, Eco) — visible as two roles-of entries.
    assert!(rg.roles_of(g_ids["Gen"]).contains(&p_ids["Bio"]));
    assert!(rg.roles_of(g_ids["Eco"]).contains(&p_ids["Bio"]));
    // The edge (DB, Soc) of Gr corresponds to the pattern edge (CS, Soc),
    // i.e. a path of length 3 in G2, not a direct edge.
    let edge = rg
        .edges()
        .iter()
        .find(|e| e.from == g_ids["DB"] && e.to == g_ids["Soc"])
        .expect("result edge (DB, Soc) must exist");
    assert!(edge
        .pattern_edges
        .iter()
        .any(|&(a, b, _)| a == p_ids["CS"] && b == p_ids["Soc"]));
    assert!(
        !g2.has_edge(g_ids["DB"], g_ids["Soc"]),
        "witnessed by a path, not an edge"
    );
}

/// Example 1.1 / Fig. 1: the drug-ring pattern P0 matches G0 with AM and S
/// sharing a data node and FW matched to every field worker.
#[test]
fn example_1_1_drug_ring() {
    let mut g = gpm::DataGraph::new();
    let boss = g.add_node(Attributes::labeled("B"));
    let mut ams = Vec::new();
    for i in 0..3 {
        let mut attrs = Attributes::labeled("AM");
        if i == 2 {
            attrs.set("secretary", true);
        }
        let am = g.add_node(attrs);
        g.add_edge(boss, am).unwrap();
        ams.push(am);
    }
    let mut first_worker = None;
    for &am in &ams {
        let mut prev = am;
        for _ in 0..3 {
            let w = g.add_node(Attributes::labeled("FW"));
            g.add_edge(prev, w).unwrap();
            if first_worker.is_none() {
                first_worker = Some(w);
            }
            prev = w;
        }
        g.add_edge(prev, am).unwrap();
    }
    g.add_edge(ams[2], first_worker.unwrap()).unwrap();

    let mut p = gpm::PatternGraph::new();
    let pb = p.add_node(Predicate::label("B"));
    let pam = p.add_node(Predicate::label("AM"));
    let ps = p.add_node(Predicate::label("AM").and("secretary", CmpOp::Eq, true));
    let pfw = p.add_node(Predicate::label("FW"));
    p.add_edge(pb, pam, EdgeBound::ONE).unwrap();
    p.add_edge(pb, ps, EdgeBound::ONE).unwrap();
    p.add_edge(pam, pfw, EdgeBound::Hops(3)).unwrap();
    p.add_edge(ps, pfw, EdgeBound::ONE).unwrap();
    p.add_edge(pfw, pam, EdgeBound::Hops(3)).unwrap();

    let out = bounded_simulation(&p, &g);
    assert!(out.relation.is_match(&p));
    assert_eq!(out.relation.matches_of(pb), &[boss]);
    assert_eq!(out.relation.matches_of(pam).len(), 3);
    assert_eq!(out.relation.matches_of(ps), &[ams[2]]);
    assert_eq!(out.relation.matches_of(pfw).len(), 9);
}
