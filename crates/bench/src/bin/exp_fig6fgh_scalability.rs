//! Figs. 6(f), 6(g), 6(h) — scalability of Match / 2-hop / BFS on synthetic
//! graphs with |V| = 20K and |E| ∈ {20K, 40K, 60K}, for patterns
//! P(|Vp|, |Ep|, 3) with |Vp| = |Ep| = 4..10.

use gpm::{
    bounded_simulation_with_oracle, random_graph, BfsOracle, RandomGraphConfig, TwoHopOracle,
};
use gpm_bench::{fmt_ms, patterns_for, time, HarnessArgs, Subject, Table};
use std::time::Duration;

fn main() {
    let args = HarnessArgs::from_env();
    let nodes = args.scaled(20_000);

    for (figure, paper_edges) in [("6(f)", 20_000usize), ("6(g)", 40_000), ("6(h)", 60_000)] {
        let edges = args.scaled(paper_edges);
        let graph = random_graph(
            &RandomGraphConfig::new(nodes, edges, (nodes / 10).max(4)).with_seed(args.seed),
        );
        let subject = Subject::new(graph);
        let (two_hop, label_time) = time(|| TwoHopOracle::build(&subject.graph));
        eprintln!(
            "fig {figure}: |V| = {}, |E| = {}, matrix {} ms, 2-hop labels {} ms",
            subject.graph.node_count(),
            subject.graph.edge_count(),
            fmt_ms(subject.matrix_build_time),
            fmt_ms(label_time)
        );

        let mut table = Table::new(
            format!(
                "Fig. {figure}: |V| = {} |E| = {} — elapsed time (ms, avg per pattern)",
                subject.graph.node_count(),
                subject.graph.edge_count()
            ),
            &["pattern", "Match", "2-hop", "BFS"],
        );
        for size in (4..=10usize).step_by(2) {
            let patterns = patterns_for(
                &subject.graph,
                size,
                size,
                3,
                args.patterns,
                args.seed + size as u64,
            );
            let mut t_matrix = Duration::ZERO;
            let mut t_two_hop = Duration::ZERO;
            let mut t_bfs = Duration::ZERO;
            for pattern in &patterns {
                let (_, t) = time(|| {
                    bounded_simulation_with_oracle(pattern, &subject.graph, &subject.matrix)
                });
                t_matrix += t;
                let (_, t) =
                    time(|| bounded_simulation_with_oracle(pattern, &subject.graph, &two_hop));
                t_two_hop += t;
                let bfs = BfsOracle::new();
                let (_, t) = time(|| bounded_simulation_with_oracle(pattern, &subject.graph, &bfs));
                t_bfs += t;
            }
            let n = patterns.len() as u32;
            table.row(vec![
                format!("P({size},{size},3)"),
                fmt_ms(t_matrix / n),
                fmt_ms(t_two_hop / n),
                fmt_ms(t_bfs / n),
            ]);
        }
        table.print();
    }
    println!(
        "paper reference: Match is fastest everywhere and insensitive to |E| (constant-time\n\
         distance checks); 2-hop helps at |E| = 20K but fades as the graph gets denser."
    );
}
