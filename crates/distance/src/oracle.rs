//! The common interface of the distance back-ends.
//!
//! The matching algorithms in `gpm-core` are generic over a
//! [`DistanceOracle`], which lets Exp-2's three variants (distance matrix,
//! on-demand BFS, 2-hop-filtered BFS) share one matching implementation and
//! makes the ablation benches a one-liner.

use crate::matrix::DistanceMatrix;
use gpm_graph::{DataGraph, EdgeBound, NodeId};

/// Answers non-empty shortest-path queries over a fixed data graph.
///
/// Implementations may cache internally (hence `&self` methods may use
/// interior mutability), but must stay consistent with the graph they were
/// created for: mutating the graph invalidates the oracle unless the oracle
/// documents otherwise.
pub trait DistanceOracle {
    /// Length of the shortest **non-empty** path from `from` to `to`, or
    /// `None` if there is none.
    fn nonempty_distance(&self, g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32>;

    /// Whether some non-empty path from `from` to `to` satisfies `bound`.
    ///
    /// The default implementation asks for the full distance; back-ends that
    /// can terminate early for bounded queries should override it.
    fn within(&self, g: &DataGraph, from: NodeId, to: NodeId, bound: EdgeBound) -> bool {
        match (self.nonempty_distance(g, from, to), bound) {
            (None, _) => false,
            (Some(_), EdgeBound::Unbounded) => true,
            (Some(d), EdgeBound::Hops(k)) => d <= k,
        }
    }

    /// A short label used in benchmark output ("matrix", "bfs", "2-hop"...).
    fn name(&self) -> &'static str;
}

impl DistanceOracle for DistanceMatrix {
    #[inline]
    fn nonempty_distance(&self, _g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32> {
        DistanceMatrix::nonempty_distance(self, from, to)
    }

    #[inline]
    fn within(&self, _g: &DataGraph, from: NodeId, to: NodeId, bound: EdgeBound) -> bool {
        match bound {
            EdgeBound::Hops(k) => self.within_hops(from, to, k),
            EdgeBound::Unbounded => self.reachable(from, to),
        }
    }

    fn name(&self) -> &'static str {
        "matrix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn line() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn matrix_implements_oracle() {
        let g = line();
        let m = DistanceMatrix::build(&g);
        let oracle: &dyn DistanceOracle = &m;
        assert_eq!(oracle.nonempty_distance(&g, n(0), n(3)), Some(3));
        assert_eq!(oracle.nonempty_distance(&g, n(3), n(0)), None);
        assert!(oracle.within(&g, n(0), n(3), EdgeBound::Hops(3)));
        assert!(!oracle.within(&g, n(0), n(3), EdgeBound::Hops(2)));
        assert!(oracle.within(&g, n(0), n(3), EdgeBound::Unbounded));
        assert!(!oracle.within(&g, n(3), n(0), EdgeBound::Unbounded));
        assert_eq!(oracle.name(), "matrix");
    }

    #[test]
    fn default_within_is_consistent_with_distance() {
        // Exercise the trait's default `within` using a thin wrapper oracle.
        struct Wrapper(DistanceMatrix);
        impl DistanceOracle for Wrapper {
            fn nonempty_distance(&self, _g: &DataGraph, a: NodeId, b: NodeId) -> Option<u32> {
                self.0.nonempty_distance(a, b)
            }
            fn name(&self) -> &'static str {
                "wrapper"
            }
        }
        let g = line();
        let w = Wrapper(DistanceMatrix::build(&g));
        assert!(w.within(&g, n(0), n(2), EdgeBound::Hops(2)));
        assert!(!w.within(&g, n(0), n(2), EdgeBound::Hops(1)));
        assert!(w.within(&g, n(0), n(2), EdgeBound::Unbounded));
        assert!(!w.within(&g, n(2), n(0), EdgeBound::Unbounded));
    }
}
