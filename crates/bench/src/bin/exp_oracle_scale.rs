//! `exp_oracle_scale` — the memory wall of the all-pairs matrix, and the
//! 2-hop backend walking through it.
//!
//! The paper's `Match`/`IncMatch` assume the `|V|²` distance matrix fits in
//! memory; Section 6 names distance indexing as the way past that. This
//! experiment generates a YouTube-shaped graph scaled to `--scale` × 10⁶
//! nodes (edges kept at the dataset's ≈4·|V| density), runs a full bounded
//! simulation — plus, at small scales, an incremental update batch — on the
//! 2-hop backend, and reports the index footprint next to the `2·|V|²`
//! bytes the matrix would need. The matrix leg only runs when that
//! allocation is small enough to be sensible (≤ 1 GiB) — at the default
//! scale it is printed as unallocatable, which is the point of the
//! experiment. The *random* maintenance leg is capped by node count because
//! the `UpdateM` contract enumerates every distance-changed pair exactly,
//! which is `Θ(|V|²)` per update on a connected graph for any backend; above
//! the cap the leg switches to crafted sink-strand deletions (one ancestor
//! column of `AFF1` each) that force the 2-hop backend onto its rebuild path,
//! so the row prices the single deferred end-of-batch rebuild instead of
//! skipping silently.
//!
//! A construction sweep precedes the table: the rank-batched bit-parallel
//! build at the configured thread count, against the sequential reference
//! loop at small `|V|` (the 868 s / 10⁵-node record holder — pointless to
//! re-run at full scale). Setting `GPM_ASSERT_BUILD_MS=<n>` turns the batched
//! build time into a CI smoke assertion: the process exits non-zero when the
//! build exceeds `n` milliseconds.
//!
//! The pattern is anchored to a short walk from a random node, with
//! equality predicates on a synthetic `part` attribute (≈600 candidates per
//! pattern node at any scale), so match work stays proportional to the
//! candidate sets, not `|V|²`.

use gpm::{
    random_updates, CmpOp, Dataset, EdgeUpdate, Executor, IncrementalMatcher, NodeId,
    OracleBackend, PatternGraph, PatternGraphBuilder, Predicate, TwoHopIndex, UpdateStreamConfig,
};
use gpm_bench::{fmt_ms, time, HarnessArgs, Table};

/// Paper-scale node target; `--scale 1.0` is a million-node run.
const PAPER_NODES: usize = 1_000_000;
/// Matrix legs above this allocation are skipped, not attempted.
const MATRIX_BUDGET_BYTES: usize = 1 << 30;
/// Update-maintenance legs above this node count are skipped: exact `AFF1`
/// reporting is `Θ(|V|²)` per update on a connected graph.
const MAINT_NODE_CAP: usize = 20_000;

fn fmt_bytes(b: usize) -> String {
    const GIB: f64 = (1u64 << 30) as f64;
    const MIB: f64 = (1u64 << 20) as f64;
    let b = b as f64;
    if b >= GIB {
        format!("{:.1} GiB", b / GIB)
    } else {
        format!("{:.1} MiB", b / MIB)
    }
}

/// `VmHWM` (peak resident set) of this process, where the OS exposes it.
fn peak_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: usize = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A 3-node chain pattern `v0 -[2]-> v1 -[2]-> v2` anchored to a 2-hop walk
/// from `start`, with `part`-equality predicates — non-empty by construction
/// whenever the walk exists.
fn anchored_pattern(g: &gpm::DataGraph, start: NodeId) -> PatternGraph {
    let mut walk = vec![start];
    for _ in 0..2 {
        let cur = *walk.last().expect("walk is non-empty");
        match g.out_neighbors(cur).first() {
            Some(&next) => walk.push(next),
            None => break,
        }
    }
    while walk.len() < 3 {
        // Dead-end walk (a sink this early is rare): repeat the start node.
        walk.push(walk[0]);
    }
    let part_of = |v: NodeId| {
        g.attributes(v)
            .get("part")
            .cloned()
            .expect("every node has a part")
    };
    let (p, _) = PatternGraphBuilder::new()
        .node("v0", Predicate::atom("part", CmpOp::Eq, part_of(walk[0])))
        .node("v1", Predicate::atom("part", CmpOp::Eq, part_of(walk[1])))
        .node("v2", Predicate::atom("part", CmpOp::Eq, part_of(walk[2])))
        .edge("v0", "v1", 2u32)
        .edge("v1", "v2", 2u32)
        .build()
        .expect("chain pattern is well-formed");
    p
}

/// Rebuild-forcing deletions with *small* `AFF1`: in-edges `(s, t)` of pure
/// sinks `t` (out-degree 0), with `s` itself upstream-reachable. Because `t`
/// has no out-edges, only `(·, t)` pairs can change — the exact `AFF1` is
/// one ancestor column, `O(|V|)` pairs, not the `Θ(|V|²)` of a random batch
/// — and `d(s, t)` provably grows from 1 (the only length-1 route *is* the
/// deleted edge), so every one pushes the 2-hop backend onto its rebuild
/// path. A batch of them prices the one-rebuild-per-batch deferred path at
/// scales where random maintenance is uncountable. At most one edge per
/// sink, so the batch stays rebuild-forcing unit by unit.
fn sink_strand_deletions(g: &gpm::DataGraph, max: usize) -> Vec<EdgeUpdate> {
    let mut out = Vec::new();
    for t in g.nodes() {
        if !g.out_neighbors(t).is_empty() {
            continue;
        }
        if let Some(&s) = g
            .in_neighbors(t)
            .iter()
            .find(|&&s| s != t && !g.in_neighbors(s).is_empty())
        {
            out.push(EdgeUpdate::Delete(s, t));
            if out.len() == max {
                break;
            }
        }
    }
    out
}

fn run_leg(
    name: &str,
    backend: OracleBackend,
    pattern: &PatternGraph,
    graph: &gpm::DataGraph,
    updates: &[gpm::EdgeUpdate],
    args: &HarnessArgs,
    table: &mut Table,
) -> usize {
    let (mut matcher, build) = time(|| {
        IncrementalMatcher::with_backend(
            pattern.clone(),
            graph.clone(),
            backend,
            args.parallelism(),
        )
    });
    let matches = matcher.relation().pair_count();
    let oracle_bytes = matcher.oracle().memory_bytes();
    if updates.is_empty() {
        // The maintenance leg was capped out — say so in the table rather
        // than timing a no-op batch that looks like a measurement.
        let skipped = format!("skipped (Θ(|V|²) AFF1 cap {MAINT_NODE_CAP})");
        table.row(vec![
            name.into(),
            fmt_ms(build),
            matches.to_string(),
            skipped,
            "-".into(),
            "-".into(),
            matcher.oracle().rebuilds().to_string(),
            fmt_bytes(oracle_bytes),
        ]);
        return matches;
    }
    let (outcome, maintain) = time(|| {
        matcher
            .apply_batch(updates)
            .expect("the chain pattern is a DAG")
    });
    table.row(vec![
        name.into(),
        fmt_ms(build),
        matches.to_string(),
        fmt_ms(maintain),
        outcome.stats.aff1.to_string(),
        outcome.stats.aff2.to_string(),
        matcher.oracle().rebuilds().to_string(),
        fmt_bytes(oracle_bytes),
    ]);
    matcher.relation().pair_count()
}

fn main() {
    let args = HarnessArgs::from_env();
    let nodes = args.scaled(PAPER_NODES);
    // Same |E|/|V| density as the simulated YouTube crawl.
    let dataset_scale = nodes as f64 / Dataset::YouTube.spec().nodes as f64;
    let (mut graph, gen) = time(|| Dataset::YouTube.generate(dataset_scale, args.seed));

    // ≈600 candidates per `part` value, independent of scale.
    let parts = (graph.node_count() / 600).max(8) as i64;
    for v in graph.nodes().collect::<Vec<_>>() {
        let part = v.0 as i64 % parts;
        let attrs = graph.attributes(v).clone().with("part", part);
        *graph.attributes_mut(v) = attrs;
    }

    let matrix_bytes = graph.node_count() * graph.node_count() * 2;
    println!(
        "oracle scale: |V| = {}, |E| = {}, {} parts, {} threads (generated in {})",
        graph.node_count(),
        graph.edge_count(),
        parts,
        args.parallelism().threads(),
        fmt_ms(gen),
    );
    println!(
        "all-pairs matrix would need {} ({} bytes)\n",
        fmt_bytes(matrix_bytes),
        matrix_bytes
    );

    let start = NodeId::new((args.seed % graph.node_count() as u64) as u32);
    let pattern = anchored_pattern(&graph, start);
    // Insertion batch (the Fig. 6(k) workload): the 2-hop index repairs
    // insertions with resumed pruned BFS passes at any scale. Deletions on a
    // well-connected graph degrade to a counted rebuild — that worst case is
    // measured by the adversarial-topology suite, not a million-node smoke
    // run.
    // A handful of units is enough to price the per-update repair, but the
    // leg only runs on graphs small enough for exact AFF1 reporting: the
    // UpdateM contract enumerates every changed pair, and on a connected
    // graph that means an ancestors × descendants rectangle of Θ(|V|²)
    // queries per update — for *either* backend. Past the cap this
    // experiment prices what scales (build, match, memory) and leaves
    // per-update repair to smaller scales and the adversarial suite.
    let updates = if graph.node_count() <= MAINT_NODE_CAP {
        random_updates(
            &graph,
            &UpdateStreamConfig::insertions(args.scaled(1_000).min(8)).with_seed(args.seed + 13),
        )
    } else {
        // Above the cap a random batch's exact AFF1 is Θ(|V|²) — but a
        // sink-strand deletion's is one ancestor column, and every one
        // demands a rebuild, so the maintenance row prices the deferred
        // one-rebuild-per-batch path instead of skipping silently.
        let dels = sink_strand_deletions(&graph, 8);
        if dels.is_empty() {
            println!(
                "maintenance batch skipped at |V| = {} (> {MAINT_NODE_CAP}): no\n\
                 rebuild-forcing sink-strand edges in this graph, and exact AFF1 for a\n\
                 random batch is Θ(|V|²) per update; run with --scale ≤ 0.02 to price\n\
                 per-update repair\n",
                graph.node_count()
            );
        } else {
            println!(
                "maintenance batch at |V| = {} (> {MAINT_NODE_CAP}): {} sink-strand\n\
                 deletions, each stranding one leaf (AFF1 = one ancestor column, not the\n\
                 Θ(|V|²) of a random batch) and each demanding a rebuild — the maintain\n\
                 column prices the single deferred end-of-batch rebuild; random-batch\n\
                 repair is still priced at --scale ≤ 0.02\n",
                graph.node_count(),
                dels.len()
            );
        }
        dels
    };

    // Construction sweep: the batched bit-parallel build, with the
    // sequential reference loop alongside at small |V| (bit-identity
    // asserted where both run).
    let exec = Executor::new(args.parallelism());
    let (batched, batched_build) = time(|| TwoHopIndex::build_with(&graph, &exec));
    println!(
        "two-hop batched build: {} ms ({} label entries)",
        fmt_ms(batched_build),
        batched.label_entries()
    );
    if graph.node_count() <= MAINT_NODE_CAP {
        let (sequential, seq_build) = time(|| TwoHopIndex::build_sequential(&graph));
        assert!(
            sequential == batched,
            "batched build must be bit-identical to the sequential reference"
        );
        println!(
            "two-hop sequential build: {} ms ({:.2}x the batched build)",
            fmt_ms(seq_build),
            seq_build.as_secs_f64() / batched_build.as_secs_f64().max(1e-9)
        );
    }
    drop(batched);
    if let Ok(cap) = std::env::var("GPM_ASSERT_BUILD_MS") {
        let cap_ms: u128 = cap
            .parse()
            .expect("GPM_ASSERT_BUILD_MS must be a millisecond count");
        let actual = batched_build.as_millis();
        if actual > cap_ms {
            eprintln!(
                "build-time smoke FAILED: batched build took {actual} ms > \
                 GPM_ASSERT_BUILD_MS={cap_ms}"
            );
            std::process::exit(1);
        }
        println!("build-time smoke passed: {actual} ms <= {cap_ms} ms cap");
    }
    println!();

    let mut table = Table::new(
        "exp_oracle_scale: match + batch maintenance per backend",
        &[
            "backend",
            "build+match (ms)",
            "matches",
            "maintain (ms)",
            "|AFF1|",
            "|AFF2|",
            "rebuilds",
            "oracle memory",
        ],
    );

    let two_hop_matches = run_leg(
        "two-hop",
        OracleBackend::TwoHop,
        &pattern,
        &graph,
        &updates,
        &args,
        &mut table,
    );

    if matrix_bytes <= MATRIX_BUDGET_BYTES {
        let matrix_matches = run_leg(
            "matrix",
            OracleBackend::Matrix,
            &pattern,
            &graph,
            &updates,
            &args,
            &mut table,
        );
        assert_eq!(
            two_hop_matches, matrix_matches,
            "backends disagree on the maintained match size"
        );
    } else {
        table.row(vec![
            "matrix".into(),
            "unallocatable".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            fmt_bytes(matrix_bytes),
        ]);
    }
    table.print();

    if let Some(peak) = peak_rss_bytes() {
        println!(
            "\npeak RSS {} vs matrix {} — ratio {:.3}",
            fmt_bytes(peak),
            fmt_bytes(matrix_bytes),
            peak as f64 / matrix_bytes as f64
        );
    }
    println!(
        "paper reference: Section 6 points past the |V|^2 matrix via distance\n\
         indexing; the 2-hop labeling answers the same queries in label space."
    );
}
