//! T1 — the dataset-size table of Section 5.
//!
//! Prints the paper-reported sizes of the three real-life graphs next to the
//! sizes of the simulated stand-ins generated at the requested `--scale`.

use gpm::Dataset;
use gpm_bench::{HarnessArgs, Table};

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = Table::new(
        format!("Table 1: real-life datasets (scale {})", args.scale),
        &[
            "dataset",
            "|V| (paper)",
            "|E| (paper)",
            "|V| (generated)",
            "|E| (generated)",
        ],
    );
    for dataset in Dataset::ALL {
        let spec = dataset.spec();
        let g = dataset.generate(args.scale, args.seed);
        table.row(vec![
            spec.name.to_string(),
            spec.nodes.to_string(),
            spec.edges.to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
        ]);
    }
    table.print();
}
