//! The continuous-query engine: one evolving graph, many standing patterns.
//!
//! [`MatchService`] owns the shared state every registered query needs — the
//! data graph and its maintained distance oracle — and multiplexes update
//! batches across the catalog:
//!
//! 1. the batch is applied to the graph and the oracle is maintained with
//!    `UpdateBM` **once**, producing the shared affected area `AFF1`
//!    (this is the expensive step, and it is paid per batch, not per query);
//! 2. every active query repairs its own match state from that shared
//!    `AFF1` (`gpm_incremental::repair_match_state`), fanned out across the
//!    `gpm-exec` work-stealing executor — queries are independent, so each
//!    task owns exactly one query's state;
//! 3. deltas are emitted sequentially in registration order, so the
//!    per-query streams (and the batch outcome) are bit-identical at any
//!    thread count.
//!
//! Cyclic patterns are first-class: batches that only increase distances
//! repair them incrementally (`Match−` propagation); batches with distance
//! decreases fall back to recomputing that query's state against the
//! already-maintained oracle — never the oracle itself.
//!
//! The distance backend is pluggable ([`MatchService::with_backend`] /
//! `GPM_ORACLE`): the paper's quadratic matrix, or the sublinear-memory
//! incremental 2-hop labeling for graphs where `|V|²` does not fit.

use crate::catalog::{BatchWork, QueryCatalog, QueryEntry, RepairKind};
use crate::delta::{MatchDelta, QueryId, Subscription};
use crate::snapshot::{self, SNAPSHOT_DIR};
use crate::wal::{self, DurabilityError, WalOp, WalReadOutcome, WalWriter, WAL_FILE};
use gpm_core::MatchRelation;
use gpm_distance::{AffectedPairs, DistanceOracle, EdgeUpdate, OracleBackend};
use gpm_exec::{Executor, Parallelism};
use gpm_graph::{DataGraph, GraphError, PatternGraph};
use gpm_incremental::{repair_match_state, MatchState};
use std::path::{Path, PathBuf};
use std::sync::mpsc;

/// Counters describing the work the service has done since construction.
///
/// `aff_computations` is the headline amortisation metric: a service with
/// `K` registered queries performs **one** affected-area computation per
/// update batch, where `K` independent [`gpm_incremental::IncrementalMatcher`]s
/// would perform `K` (the `svc_continuous` experiment prints both sides).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Update batches applied.
    pub batches: usize,
    /// Individual updates that took effect (no-ops excluded).
    pub updates_applied: usize,
    /// Shared affected-area (`UpdateBM`) computations performed.
    pub aff_computations: usize,
    /// Per-query incremental repairs driven by a shared `AFF1`.
    pub repairs: usize,
    /// Per-query full recomputations (cyclic pattern + distance decreases).
    pub recompute_fallbacks: usize,
    /// Lazy (re)activations: match states built on demand.
    pub activations: usize,
    /// Non-empty per-query deltas emitted.
    pub deltas_emitted: usize,
    /// Candidate re-verifications across all per-query repairs.
    pub verifications: usize,
}

/// What one [`MatchService::apply`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The epoch this batch was assigned (monotonic, starting at 1).
    pub epoch: u64,
    /// Updates that took effect (duplicates/missing edges are skipped).
    pub applied: usize,
    /// `|AFF1|` of the shared distance maintenance.
    pub aff1: usize,
    /// The non-empty per-query deltas, in registration order. The same
    /// deltas are pushed to each query's subscribers.
    pub deltas: Vec<MatchDelta>,
}

/// Knobs for a durable service (see [`MatchService::create_durable`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DurableOptions {
    /// Fold state into a fresh snapshot (and truncate the log) every this
    /// many WAL records; `None` disables automatic snapshots — only
    /// [`MatchService::snapshot_now`] folds. Smaller values mean faster
    /// reopen, larger values mean less write amplification.
    pub snapshot_every: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            snapshot_every: Some(512),
        }
    }
}

/// The attached durability state of a durable service.
struct Durability {
    dir: PathBuf,
    writer: WalWriter,
    backend: OracleBackend,
    snapshot_every: Option<u64>,
    records_since_snapshot: u64,
}

/// A continuous multi-pattern matching service over one evolving graph.
///
/// ```
/// use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};
/// use gpm_distance::EdgeUpdate;
/// use gpm_service::MatchService;
///
/// let (g, ids) = DataGraphBuilder::new()
///     .labeled_node("boss")
///     .labeled_node("mid")
///     .labeled_node("worker")
///     .edge("boss", "mid")
///     .build()
///     .unwrap();
/// let (p, _) = PatternGraphBuilder::new()
///     .labeled_node("boss")
///     .labeled_node("worker")
///     .edge("boss", "worker", 2u32)
///     .build()
///     .unwrap();
///
/// let mut svc = MatchService::new(g);
/// let q = svc.register(p);
/// let sub = svc.subscribe(q).unwrap();
/// assert!(svc.result(q).unwrap().is_empty()); // no boss→worker path yet
///
/// let out = svc.apply(&[EdgeUpdate::Insert(ids["mid"], ids["worker"])]);
/// assert_eq!(out.deltas.len(), 1); // the match appeared
/// assert!(!svc.result(q).unwrap().is_empty());
/// // Subscribers see the same stream: snapshot + the batch delta.
/// assert_eq!(sub.drain().len(), 2);
/// ```
pub struct MatchService {
    graph: DataGraph,
    oracle: Box<dyn DistanceOracle + Send + Sync>,
    exec: Executor,
    catalog: QueryCatalog,
    epoch: u64,
    stats: ServiceStats,
    durability: Option<Durability>,
}

impl std::fmt::Debug for MatchService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatchService")
            .field("graph", &self.graph)
            .field("oracle", &self.oracle.name())
            .field("catalog", &self.catalog)
            .field("epoch", &self.epoch)
            .field("stats", &self.stats)
            .field("durable_dir", &self.durability.as_ref().map(|d| &d.dir))
            .finish_non_exhaustive()
    }
}

impl MatchService {
    /// Builds the service around a data graph: the shared distance oracle is
    /// computed once, up front, on the process-default [`Parallelism`]. The
    /// backend comes from [`OracleBackend::from_env`] (`GPM_ORACLE`).
    pub fn new(graph: DataGraph) -> Self {
        Self::with_parallelism(graph, Parallelism::from_env())
    }

    /// [`MatchService::new`] with an explicit [`Parallelism`] policy, used
    /// for the oracle build, query registration and every batch's fan-out.
    pub fn with_parallelism(graph: DataGraph, parallelism: Parallelism) -> Self {
        Self::with_backend(graph, OracleBackend::from_env(), parallelism)
    }

    /// Builds the service on an explicitly selected distance backend.
    pub fn with_backend(
        graph: DataGraph,
        backend: OracleBackend,
        parallelism: Parallelism,
    ) -> Self {
        let exec = Executor::new(parallelism);
        let oracle = backend.build(&graph, &exec);
        MatchService {
            graph,
            oracle,
            exec,
            catalog: QueryCatalog::new(),
            epoch: 0,
            stats: ServiceStats::default(),
            durability: None,
        }
    }

    /// Creates a **durable** service rooted at `dir`: an initial snapshot of
    /// `graph` plus an empty write-ahead log, after which every mutating
    /// call is persisted before it returns. Backend and parallelism come
    /// from the environment (`GPM_ORACLE` / `GPM_THREADS`).
    ///
    /// Fails with [`DurabilityError::State`] if `dir` already holds a
    /// durable service (reopen those with [`MatchService::open_durable`]).
    ///
    /// ```
    /// use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};
    /// use gpm_distance::EdgeUpdate;
    /// use gpm_service::{DurableOptions, MatchService};
    ///
    /// let dir = std::env::temp_dir().join(format!("gpm-durable-doc-{}", std::process::id()));
    /// let (g, ids) = DataGraphBuilder::new()
    ///     .labeled_node("boss")
    ///     .labeled_node("worker")
    ///     .build()
    ///     .unwrap();
    /// let (p, _) = PatternGraphBuilder::new()
    ///     .labeled_node("boss")
    ///     .labeled_node("worker")
    ///     .edge("boss", "worker", 2u32)
    ///     .build()
    ///     .unwrap();
    ///
    /// let mut svc = MatchService::create_durable(&dir, g, DurableOptions::default()).unwrap();
    /// let q = svc.register(p);
    /// svc.apply(&[EdgeUpdate::Insert(ids["boss"], ids["worker"])]);
    /// let live = svc.result(q).unwrap();
    /// drop(svc); // "crash"
    ///
    /// // Reopen: snapshot + log replay rebuild the exact same state.
    /// let mut svc = MatchService::open_durable(&dir, DurableOptions::default()).unwrap();
    /// assert_eq!(svc.result(q).unwrap(), live);
    /// std::fs::remove_dir_all(&dir).unwrap();
    /// ```
    pub fn create_durable(
        dir: &Path,
        graph: DataGraph,
        opts: DurableOptions,
    ) -> Result<Self, DurabilityError> {
        Self::create_durable_with(
            dir,
            graph,
            OracleBackend::from_env(),
            Parallelism::from_env(),
            opts,
        )
    }

    /// [`MatchService::create_durable`] with explicit backend and
    /// parallelism. The backend choice is persisted in the snapshot
    /// manifest: reopening uses the *persisted* backend, not the
    /// environment's, so a directory never silently switches oracle.
    pub fn create_durable_with(
        dir: &Path,
        graph: DataGraph,
        backend: OracleBackend,
        parallelism: Parallelism,
        opts: DurableOptions,
    ) -> Result<Self, DurabilityError> {
        std::fs::create_dir_all(dir)?;
        if dir.join(WAL_FILE).exists() || dir.join(SNAPSHOT_DIR).exists() {
            return Err(DurabilityError::State(format!(
                "{} already holds a durable service — use open_durable",
                dir.display()
            )));
        }
        let mut svc = Self::with_backend(graph, backend, parallelism);
        snapshot::write_snapshot(dir, &svc.graph, backend, 0, 0, &svc.catalog)?;
        let writer = WalWriter::create(&dir.join(WAL_FILE), 0)?;
        svc.durability = Some(Durability {
            dir: dir.to_path_buf(),
            writer,
            backend,
            snapshot_every: opts.snapshot_every,
            records_since_snapshot: 0,
        });
        Ok(svc)
    }

    /// Reopens a durable service directory: loads the latest snapshot,
    /// detects and truncates any torn WAL tail, replays the surviving
    /// records through the normal engine paths, and resumes appending.
    ///
    /// The recovered service is **bit-identical** to the uninterrupted one:
    /// subsequent [`BatchOutcome`]s, [`Subscription`] streams and
    /// [`MatchService::result`]s are exactly what the original process
    /// would have produced — on either oracle backend and at any thread
    /// count (the differential recovery suite enforces this at every
    /// possible crash point). Uses the process-default [`Parallelism`].
    pub fn open_durable(dir: &Path, opts: DurableOptions) -> Result<Self, DurabilityError> {
        Self::open_durable_with(dir, Parallelism::from_env(), opts)
    }

    /// [`MatchService::open_durable`] with an explicit [`Parallelism`].
    pub fn open_durable_with(
        dir: &Path,
        parallelism: Parallelism,
        opts: DurableOptions,
    ) -> Result<Self, DurabilityError> {
        let loaded = snapshot::load_snapshot(dir)?;
        let backend = OracleBackend::parse(&loaded.manifest.backend).map_err(|e| {
            DurabilityError::Corrupt(format!("manifest names an unknown backend: {e}"))
        })?;
        // Only the backend *choice* is persisted: both oracles are exact,
        // so rebuilding one from the recovered graph reproduces every
        // distance — and therefore every downstream match — bit for bit.
        let mut svc = Self::with_backend(loaded.graph, backend, parallelism);
        svc.epoch = loaded.manifest.epoch;
        svc.catalog = snapshot::restore_catalog(&loaded.manifest, &svc.graph)?;

        let wal_path = dir.join(WAL_FILE);
        let outcome = if wal_path.exists() {
            wal::read_wal(&wal_path)?
        } else {
            // Crash between the snapshot swap and the log reset: the
            // snapshot alone is the complete state.
            WalReadOutcome {
                records: Vec::new(),
                valid_len: 0,
                torn_bytes: 0,
            }
        };
        let mut next_seq = loaded.manifest.next_seq;
        for record in &outcome.records {
            if record.seq < loaded.manifest.next_seq {
                continue; // already folded into the snapshot
            }
            if record.seq != next_seq {
                return Err(DurabilityError::Corrupt(format!(
                    "WAL is missing records: expected seq {next_seq}, found {}",
                    record.seq
                )));
            }
            svc.replay(&record.op);
            next_seq += 1;
        }
        let replayed = next_seq - loaded.manifest.next_seq;
        let writer = WalWriter::resume(&wal_path, &outcome, next_seq)?;
        svc.durability = Some(Durability {
            dir: dir.to_path_buf(),
            writer,
            backend,
            snapshot_every: opts.snapshot_every,
            records_since_snapshot: replayed,
        });
        svc.maybe_autosnapshot();
        Ok(svc)
    }

    /// Re-executes one recovered operation through the normal engine paths
    /// (durability is not yet attached, so nothing is re-logged). Replaying
    /// the identical call sequence on identical state is what makes
    /// recovery bit-identical.
    fn replay(&mut self, op: &WalOp) {
        match op {
            WalOp::Batch(updates) => {
                self.apply(updates);
            }
            WalOp::Register(pattern) => {
                self.register(pattern.clone());
            }
            WalOp::Deregister(id) => {
                self.deregister(QueryId(*id));
            }
            WalOp::Suspend(id) => {
                self.suspend(QueryId(*id));
            }
            WalOp::Resume(id) => {
                self.resume(QueryId(*id));
            }
            WalOp::Read(id) => {
                self.result(QueryId(*id));
            }
        }
    }

    /// Whether this service persists its operations.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable root directory, if this service is durable.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Folds the current state into a fresh snapshot and truncates the log
    /// (the swap is atomic — a crash mid-snapshot recovers to either the
    /// old or the new one, never a mix). Errors on non-durable services.
    pub fn snapshot_now(&mut self) -> Result<(), DurabilityError> {
        let Some(d) = self.durability.as_mut() else {
            return Err(DurabilityError::State(
                "snapshot_now on a non-durable service (open it with create_durable/open_durable)"
                    .to_string(),
            ));
        };
        let obs = crate::metrics::service();
        let fold_span = obs.fold_ns.span();
        let next_seq = d.writer.next_seq();
        snapshot::write_snapshot(
            &d.dir,
            &self.graph,
            d.backend,
            self.epoch,
            next_seq,
            &self.catalog,
        )?;
        // Only after the swap is durable may the log forget the history the
        // snapshot now covers.
        d.writer = WalWriter::create(&d.dir.join(WAL_FILE), next_seq)?;
        d.records_since_snapshot = 0;
        obs.snapshots.inc();
        let ns = fold_span.finish();
        if gpm_obs::enabled() {
            gpm_obs::emit_event(
                "service",
                "snapshot",
                &[
                    ("dur_ns", ns),
                    ("epoch", self.epoch),
                    ("next_seq", next_seq),
                ],
                &[],
            );
        }
        Ok(())
    }

    /// Appends one operation to the WAL (fsynced) before it takes effect.
    ///
    /// An append failure means durability can no longer be guaranteed; the
    /// service follows crash-stop semantics and panics rather than continue
    /// with an in-memory state the log does not cover.
    fn log_op(&mut self, op: WalOp) {
        if let Some(d) = self.durability.as_mut() {
            if let Err(e) = d.writer.append(op) {
                panic!("durable MatchService: WAL append failed, cannot continue safely: {e}");
            }
            d.records_since_snapshot += 1;
        }
    }

    /// Runs the automatic snapshot policy; called after every logged
    /// operation has fully taken effect. Crash-stop on failure, like
    /// [`MatchService::log_op`].
    fn maybe_autosnapshot(&mut self) {
        let due = self.durability.as_ref().is_some_and(|d| {
            d.snapshot_every
                .is_some_and(|n| d.records_since_snapshot >= n)
        });
        if due {
            if let Err(e) = self.snapshot_now() {
                panic!(
                    "durable MatchService: automatic snapshot failed, cannot continue safely: {e}"
                );
            }
        }
    }

    /// The current data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The shared, maintained distance oracle.
    pub fn oracle(&self) -> &(dyn DistanceOracle + Send + Sync) {
        self.oracle.as_ref()
    }

    /// The query catalog (read access).
    pub fn catalog(&self) -> &QueryCatalog {
        &self.catalog
    }

    /// Work counters since construction.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The epoch of the most recent batch (0 before any update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registers a standing pattern; its initial match is computed against
    /// the current graph immediately. Returns the query's stable id.
    pub fn register(&mut self, pattern: PatternGraph) -> QueryId {
        let obs = crate::metrics::service();
        obs.registers.inc();
        let _span = obs.register_ns.span();
        if self.durability.is_some() {
            self.log_op(WalOp::Register(pattern.clone()));
        }
        let state =
            MatchState::initialise_with(&pattern, &self.graph, self.oracle.as_ref(), &self.exec);
        let emitted = state.relation();
        let id = self.catalog.register(pattern, state, emitted);
        self.maybe_autosnapshot();
        id
    }

    /// Removes a query; its subscriptions close. Returns whether the id was
    /// registered.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        if self.catalog.get(id).is_none() {
            return false; // no-op, nothing to log
        }
        self.log_op(WalOp::Deregister(id.0));
        let removed = self.catalog.deregister(id);
        self.maybe_autosnapshot();
        removed
    }

    /// Suspends a query: it stops participating in per-batch repair and its
    /// match state is freed. Subscriptions stay open but silent. Returns
    /// `false` for unknown ids.
    pub fn suspend(&mut self, id: QueryId) -> bool {
        if self.catalog.get(id).is_none() {
            return false;
        }
        self.log_op(WalOp::Suspend(id.0));
        let e = self.catalog.get_mut(id).expect("checked above");
        e.active = false;
        e.state = None;
        self.maybe_autosnapshot();
        true
    }

    /// Resumes a suspended query **lazily**: the query is marked active, but
    /// its state is only rebuilt on the next batch or [`MatchService::result`]
    /// call — at which point subscribers receive one catch-up delta covering
    /// everything missed while suspended. Returns `false` for unknown ids.
    pub fn resume(&mut self, id: QueryId) -> bool {
        if self.catalog.get(id).is_none() {
            return false;
        }
        self.log_op(WalOp::Resume(id.0));
        let e = self.catalog.get_mut(id).expect("checked above");
        e.active = true;
        self.maybe_autosnapshot();
        true
    }

    /// Subscribes to a query's delta stream. The first delta is a snapshot
    /// of the result as of the last emission, so folding the stream from an
    /// empty relation reproduces the query's result. Returns `None` for
    /// unknown ids.
    pub fn subscribe(&mut self, id: QueryId) -> Option<Subscription> {
        let epoch = self.epoch;
        let entry = self.catalog.get_mut(id)?;
        let (tx, rx) = mpsc::channel();
        let snapshot = MatchDelta::snapshot(id, epoch, &entry.emitted);
        // A send to a channel whose receiver we still hold cannot fail.
        let _ = tx.send(snapshot);
        entry.subscribers.push(tx);
        Some(Subscription { query: id, rx })
    }

    /// The query's current visible result. Materialises the state if the
    /// query was lazily resumed (counted in [`ServiceStats::activations`]) —
    /// in that case subscribers receive the catch-up delta right here, so
    /// their folded stream always equals the returned relation. Returns
    /// `None` for unknown or suspended queries.
    pub fn result(&mut self, id: QueryId) -> Option<MatchRelation> {
        // A read that materialises a lazily-resumed state mutates the
        // query's visible emitted relation (the catch-up delta), so it must
        // be logged for replay to reproduce the stream. Pure reads are not.
        let activates = self
            .catalog
            .get(id)
            .is_some_and(|e| e.active && !e.has_state());
        if activates {
            self.log_op(WalOp::Read(id.0));
        }
        // Split borrows: the entry is mutated, graph/oracle/exec are read.
        let (graph, oracle, exec) = (&self.graph, self.oracle.as_ref(), &self.exec);
        let epoch = self.epoch;
        let entry = self.catalog.get_mut(id)?;
        if !entry.active {
            return None;
        }
        if entry.state.is_none() {
            let state = MatchState::initialise_with(&entry.pattern, graph, oracle, exec);
            let visible = state.relation();
            entry.state = Some(state);
            self.stats.activations += 1;
            // Reconcile subscribers with everything missed while suspended.
            let delta = MatchDelta::between(id, epoch, &entry.emitted, &visible);
            entry.emitted = visible.clone();
            if !delta.is_empty() {
                self.stats.deltas_emitted += 1;
                entry
                    .subscribers
                    .retain(|tx| tx.send(delta.clone()).is_ok());
            }
            self.maybe_autosnapshot();
            return Some(visible);
        }
        entry.state.as_ref().map(MatchState::relation)
    }

    /// Applies one update (sugar for a one-element [`MatchService::apply`]).
    pub fn apply_one(&mut self, update: EdgeUpdate) -> BatchOutcome {
        self.apply(&[update])
    }

    /// Applies a batch of updates and fans the repair out to every active
    /// query.
    ///
    /// Updates that are no-ops at their position in the batch — inserting an
    /// existing edge, deleting a missing one, or touching an unknown node —
    /// are skipped, exactly like `IncMatch`'s batch semantics; the service
    /// never leaves queries inconsistent halfway through a batch. The
    /// returned outcome carries every non-empty per-query delta; the same
    /// deltas are pushed to subscribers.
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> BatchOutcome {
        let obs = crate::metrics::service();
        let batch_span = obs.batch_ns.span();
        if self.durability.is_some() {
            // Even empty batches bump the epoch, so every apply is logged.
            self.log_op(WalOp::Batch(updates.to_vec()));
        }
        self.epoch += 1;
        self.stats.batches += 1;
        obs.batches.inc();

        // Step 1: shared maintenance, paid once for the whole catalog.
        let mut applied: Vec<EdgeUpdate> = Vec::with_capacity(updates.len());
        for u in updates {
            if u.apply(&mut self.graph) {
                applied.push(*u);
            }
        }
        self.stats.updates_applied += applied.len();
        obs.updates_applied.add(applied.len() as u64);
        let aff1 = if applied.is_empty() {
            AffectedPairs::default()
        } else {
            self.stats.aff_computations += 1;
            let aff_span = obs.aff_ns.span();
            let aff1 = self.oracle.apply_batch(&self.graph, &applied, &self.exec);
            aff_span.finish();
            aff1
        };

        // Step 2: fan the per-query repair out across the executor. Each
        // task owns one query's state; merges are per-entry slots, so the
        // result is independent of scheduling. A batch that left the oracle
        // untouched cannot change any up-to-date query, so only lazily
        // resumed entries (no state yet) need work then.
        let (graph, oracle, exec) = (&self.graph, self.oracle.as_ref(), &self.exec);
        let epoch = self.epoch;
        let mut work: Vec<&mut QueryEntry> = self
            .catalog
            .iter_mut()
            .filter(|e| e.active && (e.state.is_none() || !aff1.is_empty()))
            .collect();
        obs.fanout_size.record(work.len() as u64);
        exec.par_chunks_mut(&mut work, 1, |_, chunk| {
            for entry in chunk.iter_mut() {
                repair_entry(entry, graph, oracle, &aff1, epoch);
            }
        });

        // Step 3: emit sequentially, in registration order.
        let mut outcome = BatchOutcome {
            epoch,
            applied: applied.len(),
            aff1: aff1.len(),
            deltas: Vec::new(),
        };
        for entry in self.catalog.iter_mut() {
            let Some(batch_work) = entry.pending.take() else {
                continue;
            };
            match batch_work.kind {
                RepairKind::Incremental => {
                    self.stats.repairs += 1;
                    obs.repairs.inc();
                }
                RepairKind::Recompute => {
                    self.stats.recompute_fallbacks += 1;
                    obs.recompute_fallbacks.inc();
                }
                RepairKind::Activation => {
                    self.stats.activations += 1;
                    obs.activations.inc();
                }
            }
            self.stats.verifications += batch_work.verifications;
            obs.verifications.add(batch_work.verifications as u64);
            if batch_work.delta.is_empty() {
                continue;
            }
            self.stats.deltas_emitted += 1;
            let pairs = batch_work.delta.added.len() + batch_work.delta.removed.len();
            if gpm_obs::enabled() {
                obs.deltas_emitted.inc();
                obs.delta_pairs.add(pairs as u64);
                obs.delta_size.record(pairs as u64);
                obs.scope
                    .counter(&format!("q{}.deltas", batch_work.delta.query.0))
                    .inc();
            }
            // Push to subscribers, dropping the ones that hung up.
            entry
                .subscribers
                .retain(|tx| tx.send(batch_work.delta.clone()).is_ok());
            outcome.deltas.push(batch_work.delta);
        }
        self.maybe_autosnapshot();
        batch_span.finish();
        outcome
    }

    /// Folds the graph's CSR delta overlay back into its base arrays at a
    /// quiesce point (see `DataGraph::compact`). Never needed for
    /// correctness.
    pub fn compact_graph(&mut self) {
        self.graph.compact();
    }
}

/// Brings one query's state up to date against the already-maintained
/// oracle and parks the resulting delta in the entry's pending slot. Runs
/// inside the fan-out region, so everything here must be deterministic —
/// the state build and repair are bit-identical at any thread count, and
/// the per-query executor is sequential (the batch-level fan-out is the
/// parallelism).
fn repair_entry(
    entry: &mut QueryEntry,
    graph: &DataGraph,
    oracle: &(dyn DistanceOracle + Send + Sync),
    aff1: &AffectedPairs,
    epoch: u64,
) {
    let seq = Executor::sequential();
    let (kind, verifications) = match entry.state.as_mut() {
        None => {
            entry.state = Some(MatchState::initialise_with(
                &entry.pattern,
                graph,
                oracle,
                &seq,
            ));
            (RepairKind::Activation, 0)
        }
        Some(state) => match repair_match_state(&entry.pattern, graph, oracle, state, aff1) {
            Ok(out) => (RepairKind::Incremental, out.verifications),
            Err(GraphError::PatternNotAcyclic) => {
                // Cyclic pattern with distance decreases: rebuild this
                // query's state; the shared oracle is already correct.
                *state = MatchState::initialise_with(&entry.pattern, graph, oracle, &seq);
                (RepairKind::Recompute, 0)
            }
            Err(e) => unreachable!("repair cannot fail otherwise: {e}"),
        },
    };
    let visible = entry
        .state
        .as_ref()
        .expect("state materialised above")
        .relation();
    let delta = MatchDelta::between(entry.id, epoch, &entry.emitted, &visible);
    entry.emitted = visible;
    entry.pending = Some(BatchWork {
        delta,
        kind,
        verifications,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_datagen::{
        generate_pattern, random_graph, random_updates, PatternGenConfig, RandomGraphConfig,
        UpdateStreamConfig,
    };
    use gpm_graph::{PatternGraphBuilder, Predicate};

    fn dag_pattern(labels: [&str; 3]) -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label(labels[0]))
            .node("y", Predicate::label(labels[1]))
            .node("z", Predicate::label(labels[2]))
            .edge("x", "y", 2u32)
            .edge("y", "z", 3u32)
            .build()
            .unwrap();
        p
    }

    fn cyclic_pattern() -> PatternGraph {
        let (p, _) = PatternGraphBuilder::new()
            .node("x", Predicate::label("a0"))
            .node("y", Predicate::label("a1"))
            .edge("x", "y", 2u32)
            .edge("y", "x", 2u32)
            .build()
            .unwrap();
        p
    }

    fn assert_consistent(svc: &mut MatchService, ids: &[QueryId]) {
        for &id in ids {
            let Some(result) = svc.result(id) else {
                continue;
            };
            let pattern = svc.catalog().get(id).unwrap().pattern().clone();
            let recomputed = bounded_simulation_with_oracle(&pattern, svc.graph(), svc.oracle());
            assert_eq!(result, recomputed.relation, "query {id} diverged");
        }
    }

    #[test]
    fn shared_aff_is_computed_once_per_batch() {
        let g = random_graph(&RandomGraphConfig::new(40, 100, 5).with_seed(1));
        let mut svc = MatchService::new(g);
        let ids: Vec<QueryId> = (0..4)
            .map(|i| {
                svc.register(dag_pattern([
                    &format!("a{i}"),
                    &format!("a{}", (i + 1) % 5),
                    &format!("a{}", (i + 2) % 5),
                ]))
            })
            .collect();

        for round in 0..5u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(15).with_seed(round + 10),
            );
            svc.apply(&updates);
            assert_consistent(&mut svc, &ids);
        }
        // 5 batches, 4 queries: 5 shared AFF computations, not 20.
        assert_eq!(svc.stats().aff_computations, 5);
        assert_eq!(svc.stats().batches, 5);
        assert_eq!(svc.stats().repairs, 20);
        assert_eq!(svc.stats().recompute_fallbacks, 0);

        // The maintained oracle equals a from-scratch matrix rebuild.
        let rebuilt = gpm_distance::DistanceMatrix::build(svc.graph());
        let n = svc.graph().node_count() as u32;
        for x in (0..n).map(gpm_graph::NodeId::new) {
            for y in (0..n).map(gpm_graph::NodeId::new) {
                assert_eq!(
                    svc.oracle().nonempty_distance(svc.graph(), x, y),
                    rebuilt.nonempty_distance(x, y),
                    "oracle diverged at ({x:?}, {y:?})"
                );
            }
        }
    }

    /// The whole engine — registration, batches, cyclic fallbacks, lazy
    /// resume — works unchanged on the 2-hop backend.
    #[test]
    fn two_hop_backend_runs_the_service() {
        let g = random_graph(&RandomGraphConfig::new(35, 90, 5).with_seed(21));
        let mut svc = MatchService::with_backend(g, OracleBackend::TwoHop, Parallelism::from_env());
        assert_eq!(svc.oracle().name(), "two-hop");
        let ids = vec![
            svc.register(dag_pattern(["a0", "a1", "a2"])),
            svc.register(cyclic_pattern()),
        ];
        for round in 0..5u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round * 3 + 11),
            );
            svc.apply(&updates);
            assert_consistent(&mut svc, &ids);
        }
        assert_eq!(svc.stats().aff_computations, 5);
    }

    #[test]
    fn cyclic_patterns_fall_back_only_on_decreases() {
        let g = random_graph(&RandomGraphConfig::new(30, 80, 4).with_seed(2));
        let mut svc = MatchService::new(g);
        let q = svc.register(cyclic_pattern());

        // Deletion-only batch: incremental even for the cyclic pattern.
        let dels = random_updates(svc.graph(), &UpdateStreamConfig::deletions(8).with_seed(3));
        svc.apply(&dels);
        assert_eq!(svc.stats().recompute_fallbacks, 0);
        assert_eq!(svc.stats().repairs, 1);
        assert_consistent(&mut svc, &[q]);

        // Insertions decrease distances: recompute fallback.
        let ins = random_updates(svc.graph(), &UpdateStreamConfig::insertions(8).with_seed(4));
        svc.apply(&ins);
        assert_eq!(svc.stats().recompute_fallbacks, 1);
        assert_consistent(&mut svc, &[q]);
    }

    #[test]
    fn deltas_fold_to_the_result() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(5));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();

        for round in 0..6u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round * 7 + 1),
            );
            svc.apply(&updates);
        }
        let deltas = sub.drain();
        let folded = crate::delta::fold_deltas(3, deltas.iter());
        assert_eq!(folded, svc.result(q).unwrap());
        // Epochs are non-decreasing and start with the snapshot.
        assert!(deltas.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        assert_eq!(deltas[0].epoch, 0);
    }

    #[test]
    fn suspend_resume_reconciles_subscribers() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(6));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();

        svc.suspend(q);
        assert!(svc.result(q).is_none(), "suspended queries answer None");
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(10).with_seed(round + 40),
            );
            svc.apply(&updates);
        }
        let while_suspended = svc.stats().clone();
        assert_eq!(
            while_suspended.repairs, 0,
            "suspended queries pay no repair cost"
        );

        svc.resume(q);
        // Still lazy: nothing rebuilt until the next batch or result read.
        assert!(!svc.catalog().get(q).unwrap().has_state());
        svc.apply(&[]);
        assert_eq!(svc.stats().activations, 1);

        // The subscriber's fold agrees with the live result after catch-up.
        let folded = crate::delta::fold_deltas(3, sub.drain().iter());
        assert_eq!(folded, svc.result(q).unwrap());
        assert_consistent(&mut svc, &[q]);
    }

    /// A `result()` read — without any intervening batch — must also
    /// reconcile subscribers when it materialises a lazily-resumed state.
    #[test]
    fn result_read_after_resume_emits_catchup_delta() {
        let g = random_graph(&RandomGraphConfig::new(40, 90, 4).with_seed(31));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();

        svc.suspend(q);
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round + 60),
            );
            svc.apply(&updates);
        }
        svc.resume(q);

        // No apply() after resume: the read itself reconciles.
        let live = svc.result(q).unwrap();
        assert_eq!(svc.stats().activations, 1);
        let folded = crate::delta::fold_deltas(3, sub.drain().iter());
        assert_eq!(folded, live, "catch-up delta must flow from result()");
        // The reconciliation is idempotent: another read emits nothing new.
        let _ = svc.result(q);
        assert!(sub.drain().is_empty());
    }

    /// Empty batches skip the fan-out entirely for up-to-date queries.
    #[test]
    fn empty_batch_skips_repair_for_live_queries() {
        let g = random_graph(&RandomGraphConfig::new(25, 60, 3).with_seed(33));
        let mut svc = MatchService::new(g);
        let _q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        svc.apply(&[]);
        assert_eq!(svc.stats().repairs, 0, "no-op batch must not count repairs");
        assert_eq!(svc.stats().verifications, 0);
    }

    #[test]
    fn deregister_closes_subscriptions_and_stops_deltas() {
        let g = random_graph(&RandomGraphConfig::new(30, 70, 4).with_seed(7));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let keep = svc.register(dag_pattern(["a1", "a2", "a3"]));
        let sub = svc.subscribe(q).unwrap();
        assert!(svc.deregister(q));
        assert!(svc.result(q).is_none());
        assert!(svc.subscribe(q).is_none());

        let updates = random_updates(svc.graph(), &UpdateStreamConfig::mixed(10).with_seed(8));
        let out = svc.apply(&updates);
        assert!(out.deltas.iter().all(|d| d.query != q));
        // Only the snapshot was delivered before deregistration.
        assert!(sub.drain().iter().all(|d| d.epoch == 0));
        assert_consistent(&mut svc, &[keep]);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let g = random_graph(&RandomGraphConfig::new(30, 70, 4).with_seed(9));
        let mut svc = MatchService::new(g);
        let q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let sub = svc.subscribe(q).unwrap();
        drop(sub);
        // A batch that changes the result prunes the dead channel.
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(12).with_seed(round + 80),
            );
            svc.apply(&updates);
        }
        assert!(
            svc.catalog().get(q).unwrap().subscribers.is_empty() || svc.stats().deltas_emitted == 0
        );
    }

    #[test]
    fn generated_patterns_stay_consistent_under_churn() {
        let g = random_graph(&RandomGraphConfig::new(50, 130, 5).with_seed(11));
        let mut svc = MatchService::new(g);
        let mut ids = Vec::new();
        for i in 0..6u64 {
            let (p, _) = generate_pattern(
                svc.graph(),
                &PatternGenConfig::new(3, 3, 3).with_seed(i * 17 + 1),
            );
            ids.push(svc.register(p));
        }
        for round in 0..4u64 {
            let updates = random_updates(
                svc.graph(),
                &UpdateStreamConfig::mixed(20).with_seed(round * 5 + 2),
            );
            svc.apply(&updates);
            assert_consistent(&mut svc, &ids);
        }
    }

    #[test]
    fn empty_batch_is_cheap_and_emits_nothing() {
        let g = random_graph(&RandomGraphConfig::new(20, 40, 3).with_seed(12));
        let mut svc = MatchService::new(g);
        let _q = svc.register(dag_pattern(["a0", "a1", "a2"]));
        let out = svc.apply(&[]);
        assert_eq!(out.applied, 0);
        assert_eq!(out.aff1, 0);
        assert!(out.deltas.is_empty());
        assert_eq!(svc.stats().aff_computations, 0);
        assert_eq!(out.epoch, 1);
    }
}
