//! Property tests for the log-bucketed histogram: bucket monotonicity,
//! certified percentile bounds, and merge associativity/commutativity.

use gpm_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snap_of(values: &[u64]) -> HistogramSnapshot {
    gpm_obs::set_enabled(true);
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Exact nearest-rank percentile over raw samples — the ground truth the
/// histogram's bucketed answer must upper-bound.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Mixed-magnitude value strategy: small exact values, mid-range, and
/// values deep into the log-bucketed octaves.
fn values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u64..48, 0u64..1_000_000), 1..120).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(shift, raw)| raw.wrapping_shl(shift as u32 / 3))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Recording larger values never lands in an earlier bucket, and every
    /// value is over-approximated by at most 1/16.
    #[test]
    fn bucket_bounds_monotone(vals in values()) {
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let mut prev_bound = 0u64;
        for &v in &sorted {
            let s = snap_of(&[v]);
            prop_assert_eq!(s.buckets.len(), 1);
            let bound = s.buckets[0].0;
            prop_assert!(bound >= v, "bound {} < value {}", bound, v);
            prop_assert!(bound - v <= v / 16, "error > 1/16 at {}", v);
            prop_assert!(bound >= prev_bound, "bucket order inverted at {}", v);
            prev_bound = bound;
        }
    }

    /// The bucketed percentile is a certified upper bound on the exact
    /// nearest-rank percentile, within 1/16 relative error.
    #[test]
    fn percentiles_bound_truth(vals in values()) {
        let snap = snap_of(&vals);
        let mut sorted = vals;
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, sorted.len() as u64);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        for &q in &[0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let truth = exact_percentile(&sorted, q);
            let approx = snap.percentile(q);
            prop_assert!(approx >= truth, "p{} {} < exact {}", q, approx, truth);
            prop_assert!(
                approx - truth <= truth / 16,
                "p{} {} overshoots exact {}",
                q, approx, truth
            );
            prop_assert!(approx <= snap.max);
        }
    }

    /// Merge is associative and commutative with `empty()` as identity, so
    /// per-shard snapshots can be folded in any order.
    #[test]
    fn merge_associative(a in values(), b in values(), c in values()) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right);

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut with_identity = HistogramSnapshot::empty();
        with_identity.merge(&sa);
        prop_assert_eq!(&with_identity, &sa);
        let mut sa_id = sa.clone();
        sa_id.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&sa_id, &sa);

        // The merged snapshot answers percentiles over the union.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        all.sort_unstable();
        prop_assert_eq!(left.count, all.len() as u64);
        let truth = exact_percentile(&all, 0.99);
        prop_assert!(left.percentile(0.99) >= truth);
    }
}
