//! Fig. 6(j) — IncMatch vs Match under deletion-only batches on the
//! (simulated) YouTube graph, |δ| from 200 to 1600 (scaled by `--scale`).
//! `--dataset-dir <path>` runs it on a real on-disk dataset instead.

use gpm_bench::{run_update_experiment, HarnessArgs, UpdateMix};

fn main() {
    let args = HarnessArgs::from_env();
    run_update_experiment(
        "Fig. 6(j): IncMatch vs Match, deletions only",
        UpdateMix::Deletions,
        &[200, 400, 600, 800, 1000, 1200, 1400, 1600],
        &args,
    );
    println!(
        "paper reference: IncMatch is not sensitive to edge deletions — the affected area per\n\
         deletion stays tiny (|AFF| around 7-12), so IncMatch wins across the whole range."
    );
}
