//! Property tests: export → import of random attributed graphs is
//! bit-identical (graph, attributes, and re-serialized bytes).

use gpm_datagen::{Dataset, DatasetSource};
use gpm_graph::dataset::{dataset_attrs_string, dataset_edges_string, read_dataset_strs};
use gpm_graph::{AttrValue, Attributes, DataGraph, NodeId};
use proptest::prelude::*;

/// Categories deliberately exercising CSV quoting: commas, quotes, spaces,
/// the empty string.
const CATEGORIES: [&str; 6] = [
    "Music",
    "Travel & Places",
    "a,b",
    "say \"hi\"",
    "",
    " padded ",
];

/// Builds a graph from a proptest-drawn recipe: `n` nodes, random edges,
/// and a per-node attribute subset (bitmask selects which of the four typed
/// attributes the node carries).
fn build_graph(n: u32, edges: &[(u32, u32)], attr_recipes: &[(u8, u8, i64, u8)]) -> DataGraph {
    let mut g = DataGraph::new();
    for i in 0..n as usize {
        let (mask, cat, views, rate10) = attr_recipes[i % attr_recipes.len()];
        let mut attrs = Attributes::new();
        if mask & 1 != 0 {
            attrs.set("category", CATEGORIES[cat as usize % CATEGORIES.len()]);
        }
        if mask & 2 != 0 {
            attrs.set("views", views);
        }
        if mask & 4 != 0 {
            attrs.set("rate", f64::from(rate10) / 10.0);
        }
        if mask & 8 != 0 {
            attrs.set("ok", mask & 16 != 0);
        }
        g.add_node(attrs);
    }
    for &(a, b) in edges {
        let (a, b) = (NodeId::new(a % n), NodeId::new(b % n));
        let _ = g.try_add_edge(a, b);
    }
    g.compact();
    g
}

fn assert_graphs_identical(a: &DataGraph, b: &DataGraph) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    for v in a.nodes() {
        assert_eq!(a.attributes(v), b.attributes(v), "attributes of {v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random attributed graph — heterogeneous attribute coverage,
    /// quoting-hostile strings, isolated nodes — survives a string-level
    /// write → read → write round trip bit-identically.
    #[test]
    fn prop_export_import_roundtrip(
        n in 1u32..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
        attr_recipes in proptest::collection::vec(
            (0u8..32, 0u8..6, -1_000_000i64..1_000_000, 0u8..50),
            1..12,
        ),
    ) {
        let g = build_graph(n, &edges, &attr_recipes);
        let edges_text = dataset_edges_string(&g);
        let attrs_text = dataset_attrs_string(&g).expect("exportable");

        let (back, ids, _schema) = read_dataset_strs(&edges_text, &attrs_text)
            .expect("reloadable");
        assert_graphs_identical(&g, &back);
        prop_assert_eq!(ids, (0..g.node_count() as u64).collect::<Vec<_>>());

        // Fixpoint: re-serializing the imported graph reproduces the bytes.
        prop_assert_eq!(dataset_edges_string(&back), edges_text);
        prop_assert_eq!(dataset_attrs_string(&back).expect("exportable"), attrs_text);
    }

    /// The simulated paper datasets round-trip through the filesystem
    /// exporter + DatasetSource loader.
    #[test]
    fn prop_simulated_datasets_roundtrip_on_disk(seed in 0u64..50) {
        let dataset = Dataset::ALL[(seed % 3) as usize];
        let g = dataset.generate(0.003, seed);
        let dir = std::env::temp_dir().join(format!(
            "gpm-roundtrip-{}-{seed}",
            std::process::id()
        ));
        gpm_datagen::export_dataset(&dir, "case", &g).expect("export");
        let back = DatasetSource::OnDisk { dir: dir.clone(), name: "case".into() }
            .load(1.0, 0)
            .expect("load");
        assert_graphs_identical(&g, &back);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// Non-property check pinning one subtle format rule: an absent attribute
/// (empty field) and an empty-string attribute (`""`) stay distinct through
/// a round trip.
#[test]
fn absent_vs_empty_string_attributes_stay_distinct() {
    let mut g = DataGraph::new();
    g.add_node(Attributes::new().with("s", ""));
    g.add_node(Attributes::new());
    g.compact();
    let edges_text = dataset_edges_string(&g);
    let attrs_text = dataset_attrs_string(&g).unwrap();
    let (back, _, _) = read_dataset_strs(&edges_text, &attrs_text).unwrap();
    assert_eq!(
        back.attributes(NodeId::new(0)).get("s"),
        Some(&AttrValue::Str(String::new()))
    );
    assert_eq!(back.attributes(NodeId::new(1)).get("s"), None);
}
