//! VF2 subgraph isomorphism (Cordella, Foggia, Sansone & Vento).
//!
//! VF2 maintains a partial mapping ("core") plus terminal sets (nodes
//! adjacent to the core on either side) and extends the mapping one pair at
//! a time, pruning with:
//!
//! * **syntactic feasibility** — every pattern edge between the new pair and
//!   the core must exist in the data graph (both directions), and
//! * **look-ahead** — the pattern node must not require more terminal /
//!   unexplored neighbours than the data node has available.
//!
//! The paper uses VF2 as the efficiency baseline of Fig. 6(b)/(c) ("a widely
//! used algorithm for efficiently identifying isomorphic subgraphs").

use crate::candidates::CandidateSets;
use crate::embedding::{Embedding, IsoConfig, IsoOutcome};
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};

/// Enumerates subgraph-isomorphism embeddings of `pattern` in `graph` with
/// the VF2 algorithm.
pub fn subgraph_isomorphism_vf2(
    pattern: &PatternGraph,
    graph: &DataGraph,
    config: &IsoConfig,
) -> IsoOutcome {
    let mut outcome = IsoOutcome::default();
    if pattern.node_count() == 0 {
        outcome.embeddings.push(Embedding { nodes: Vec::new() });
        return outcome;
    }
    let candidates = CandidateSets::compute(pattern, graph);
    if candidates.any_empty() {
        return outcome;
    }
    let mut state = Vf2State::new(pattern, graph, candidates);
    state.search(config, &mut outcome);
    outcome
}

struct Vf2State<'a> {
    pattern: &'a PatternGraph,
    graph: &'a DataGraph,
    candidates: CandidateSets,
    /// Pattern-node -> data-node mapping (None = unmapped).
    core_p: Vec<Option<NodeId>>,
    /// Data-node -> pattern-node mapping (None = unmapped).
    core_g: Vec<Option<PatternNodeId>>,
    /// Depth (1-based) at which a data node entered the "out" terminal set.
    out_g: Vec<usize>,
    /// Depth at which a data node entered the "in" terminal set.
    in_g: Vec<usize>,
    /// Same for pattern nodes.
    out_p: Vec<usize>,
    in_p: Vec<usize>,
    depth: usize,
}

impl<'a> Vf2State<'a> {
    fn new(pattern: &'a PatternGraph, graph: &'a DataGraph, candidates: CandidateSets) -> Self {
        Vf2State {
            pattern,
            graph,
            candidates,
            core_p: vec![None; pattern.node_count()],
            core_g: vec![None; graph.node_count()],
            out_g: vec![0; graph.node_count()],
            in_g: vec![0; graph.node_count()],
            out_p: vec![0; pattern.node_count()],
            in_p: vec![0; pattern.node_count()],
            depth: 0,
        }
    }

    fn search(&mut self, config: &IsoConfig, outcome: &mut IsoOutcome) {
        if outcome.embeddings.len() >= config.max_embeddings || outcome.steps >= config.max_steps {
            outcome.truncated = true;
            return;
        }
        if self.depth == self.pattern.node_count() {
            let nodes = self
                .core_p
                .iter()
                .map(|v| v.expect("complete mapping"))
                .collect();
            outcome.embeddings.push(Embedding { nodes });
            return;
        }

        let u = match self.next_pattern_node() {
            Some(u) => u,
            None => return,
        };
        // Candidate data nodes for u, restricted to the matching terminal set
        // when u itself is in a terminal set (the VF2 pair-generation rule).
        let data_candidates: Vec<NodeId> = self
            .candidates
            .of(u)
            .iter()
            .copied()
            .filter(|&v| self.core_g[v.index()].is_none())
            .filter(|&v| {
                if self.out_p[u.index()] > 0 {
                    self.out_g[v.index()] > 0
                } else if self.in_p[u.index()] > 0 {
                    self.in_g[v.index()] > 0
                } else {
                    true
                }
            })
            .collect();

        for v in data_candidates {
            outcome.steps += 1;
            if outcome.steps >= config.max_steps {
                outcome.truncated = true;
                return;
            }
            if !self.feasible(u, v) {
                continue;
            }
            let saved = self.push_pair(u, v);
            self.search(config, outcome);
            self.pop_pair(u, v, saved);
            if outcome.truncated || outcome.embeddings.len() >= config.max_embeddings {
                if outcome.embeddings.len() >= config.max_embeddings {
                    outcome.truncated = true;
                }
                return;
            }
        }
    }

    /// Picks the next pattern node to map: prefer nodes in the terminal sets
    /// (connected to the core), smallest candidate list first.
    fn next_pattern_node(&self) -> Option<PatternNodeId> {
        let unmapped = |u: &PatternNodeId| self.core_p[u.index()].is_none();
        let by_candidates = |u: &PatternNodeId| (self.candidates.of(*u).len(), u.index());

        let terminal: Option<PatternNodeId> = self
            .pattern
            .node_ids()
            .filter(unmapped)
            .filter(|u| self.out_p[u.index()] > 0 || self.in_p[u.index()] > 0)
            .min_by_key(by_candidates);
        if terminal.is_some() {
            return terminal;
        }
        self.pattern
            .node_ids()
            .filter(unmapped)
            .min_by_key(by_candidates)
    }

    /// Syntactic feasibility + look-ahead for the candidate pair `(u, v)`.
    fn feasible(&self, u: PatternNodeId, v: NodeId) -> bool {
        // Edges between u and the mapped core must exist in the data graph.
        for e in self.pattern.out_edges(u) {
            if let Some(w) = self.core_p[e.to.index()] {
                if !self.graph.has_edge(v, w) {
                    return false;
                }
            }
        }
        for e in self.pattern.in_edges(u) {
            if let Some(w) = self.core_p[e.from.index()] {
                if !self.graph.has_edge(w, v) {
                    return false;
                }
            }
        }
        // Look-ahead: count pattern neighbours of u in the terminal sets and
        // outside; v must offer at least as many on the data side.
        let (mut p_term_out, mut p_term_in, mut p_new) = (0usize, 0usize, 0usize);
        for w in self.pattern.children(u).chain(self.pattern.parents(u)) {
            if self.core_p[w.index()].is_some() {
                continue;
            }
            if self.out_p[w.index()] > 0 {
                p_term_out += 1;
            } else if self.in_p[w.index()] > 0 {
                p_term_in += 1;
            } else {
                p_new += 1;
            }
        }
        let (mut g_term_out, mut g_term_in, mut g_new) = (0usize, 0usize, 0usize);
        for &w in self
            .graph
            .out_neighbors(v)
            .iter()
            .chain(self.graph.in_neighbors(v).iter())
        {
            if self.core_g[w.index()].is_some() {
                continue;
            }
            if self.out_g[w.index()] > 0 {
                g_term_out += 1;
            } else if self.in_g[w.index()] > 0 {
                g_term_in += 1;
            } else {
                g_new += 1;
            }
        }
        g_term_out >= p_term_out
            && g_term_in >= p_term_in
            && (g_new + g_term_out + g_term_in) >= (p_new + p_term_out + p_term_in)
    }

    /// Adds `(u, v)` to the core and updates the terminal sets; returns the
    /// bookkeeping needed to undo the operation.
    fn push_pair(&mut self, u: PatternNodeId, v: NodeId) -> PushUndo {
        self.depth += 1;
        self.core_p[u.index()] = Some(v);
        self.core_g[v.index()] = Some(u);
        let mut undo = PushUndo::default();
        let depth = self.depth;

        for w in self.pattern.children(u).collect::<Vec<_>>() {
            if self.out_p[w.index()] == 0 {
                self.out_p[w.index()] = depth;
                undo.p_out.push(w);
            }
        }
        for w in self.pattern.parents(u).collect::<Vec<_>>() {
            if self.in_p[w.index()] == 0 {
                self.in_p[w.index()] = depth;
                undo.p_in.push(w);
            }
        }
        for &w in self.graph.out_neighbors(v) {
            if self.out_g[w.index()] == 0 {
                self.out_g[w.index()] = depth;
                undo.g_out.push(w);
            }
        }
        for &w in self.graph.in_neighbors(v) {
            if self.in_g[w.index()] == 0 {
                self.in_g[w.index()] = depth;
                undo.g_in.push(w);
            }
        }
        undo
    }

    fn pop_pair(&mut self, u: PatternNodeId, v: NodeId, undo: PushUndo) {
        for w in undo.p_out {
            self.out_p[w.index()] = 0;
        }
        for w in undo.p_in {
            self.in_p[w.index()] = 0;
        }
        for w in undo.g_out {
            self.out_g[w.index()] = 0;
        }
        for w in undo.g_in {
            self.in_g[w.index()] = 0;
        }
        self.core_p[u.index()] = None;
        self.core_g[v.index()] = None;
        self.depth -= 1;
    }
}

#[derive(Default)]
struct PushUndo {
    p_out: Vec<PatternNodeId>,
    p_in: Vec<PatternNodeId>,
    g_out: Vec<NodeId>,
    g_in: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ullmann::subgraph_isomorphism_ullmann;
    use gpm_graph::{Attributes, DataGraphBuilder, EdgeBound, PatternGraphBuilder, Predicate};
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};
    use rustc_hash::FxHashSet;

    #[test]
    fn simple_match_and_mismatch() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B")
            .edge("B", "C")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B", 1u32)
            .edge("B", "C", 1u32)
            .build()
            .unwrap();
        let out = subgraph_isomorphism_vf2(&p, &g, &IsoConfig::default());
        assert_eq!(out.count(), 1);
        assert!(out.embeddings[0].verify(&p, &g));

        let (p2, _) = PatternGraphBuilder::new()
            .labeled_node("C")
            .labeled_node("A")
            .edge("C", "A", 1u32)
            .build()
            .unwrap();
        assert!(!subgraph_isomorphism_vf2(&p2, &g, &IsoConfig::default()).is_match());
    }

    #[test]
    fn empty_pattern() {
        let g = DataGraph::new();
        let p = PatternGraph::new();
        let out = subgraph_isomorphism_vf2(&p, &g, &IsoConfig::default());
        assert_eq!(out.count(), 1);
    }

    #[test]
    fn symmetric_pattern_counts_all_embeddings() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("Hub")
            .node("l1", Attributes::labeled("Leaf"))
            .node("l2", Attributes::labeled("Leaf"))
            .node("l3", Attributes::labeled("Leaf"))
            .edge("Hub", "l1")
            .edge("Hub", "l2")
            .edge("Hub", "l3")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("Hub")
            .labeled_node("Leaf")
            .node("Leaf2", Predicate::label("Leaf"))
            .edge("Hub", "Leaf", 1u32)
            .edge("Hub", "Leaf2", 1u32)
            .build()
            .unwrap();
        // 3 choices for Leaf × 2 remaining for Leaf2 = 6 embeddings.
        let out = subgraph_isomorphism_vf2(&p, &g, &IsoConfig::default());
        assert_eq!(out.count(), 6);
        for e in &out.embeddings {
            assert!(e.verify(&p, &g));
        }
    }

    #[test]
    fn truncation_caps_are_respected() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("Hub")
            .node("l1", Attributes::labeled("Leaf"))
            .node("l2", Attributes::labeled("Leaf"))
            .node("l3", Attributes::labeled("Leaf"))
            .edge("Hub", "l1")
            .edge("Hub", "l2")
            .edge("Hub", "l3")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("Hub")
            .labeled_node("Leaf")
            .edge("Hub", "Leaf", 1u32)
            .build()
            .unwrap();
        let out = subgraph_isomorphism_vf2(
            &p,
            &g,
            &IsoConfig {
                max_embeddings: 1,
                ..Default::default()
            },
        );
        assert_eq!(out.count(), 1);
        assert!(out.truncated);
    }

    /// Random labelled instance shared by the differential test below.
    fn random_instance(seed: u64) -> (DataGraph, PatternGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = ["A", "B", "C"];
        let n = rng.gen_range(4..10usize);
        let mut g = DataGraph::new();
        for _ in 0..n {
            g.add_node(Attributes::labeled(labels[rng.gen_range(0..labels.len())]));
        }
        for _ in 0..rng.gen_range(3..n * 2) {
            let a = NodeId::new(rng.gen_range(0..n as u32));
            let b = NodeId::new(rng.gen_range(0..n as u32));
            if a != b {
                let _ = g.try_add_edge(a, b);
            }
        }
        let mut p = PatternGraph::new();
        let pn = rng.gen_range(2..4usize);
        for _ in 0..pn {
            p.add_node(Predicate::label(labels[rng.gen_range(0..labels.len())]));
        }
        for _ in 0..rng.gen_range(1..pn * 2) {
            let a = PatternNodeId::new(rng.gen_range(0..pn as u32));
            let b = PatternNodeId::new(rng.gen_range(0..pn as u32));
            if a != b {
                let _ = p.add_edge(a, b, EdgeBound::ONE);
            }
        }
        (g, p)
    }

    /// VF2 and Ullmann enumerate exactly the same embedding sets.
    #[test]
    fn differential_vf2_vs_ullmann() {
        for seed in 0..60u64 {
            let (g, p) = random_instance(seed);
            let cfg = IsoConfig::default();
            let a = subgraph_isomorphism_vf2(&p, &g, &cfg);
            let b = subgraph_isomorphism_ullmann(&p, &g, &cfg);
            let sa: FxHashSet<Vec<NodeId>> = a.embeddings.iter().map(|e| e.nodes.clone()).collect();
            let sb: FxHashSet<Vec<NodeId>> = b.embeddings.iter().map(|e| e.nodes.clone()).collect();
            assert_eq!(sa, sb, "seed {seed}");
            for e in a.embeddings.iter().chain(b.embeddings.iter()) {
                assert!(e.verify(&p, &g), "invalid embedding at seed {seed}");
            }
        }
    }
}
