//! Differential backend suite: the two maintainable distance back-ends —
//! the paper's all-pairs [`DistanceMatrix`] and the 2-hop labeling behind
//! [`OracleBackend::TwoHop`] — must be observationally identical.
//!
//! Identical means bit-identical, not merely "both correct": the same `AFF1`
//! sets under interleaved insert / delete / `compact()`, the same maintained
//! match relations, and the same per-batch service deltas at 1, 2 and 8
//! worker threads. Any divergence pinpoints a bug in exactly one backend's
//! `UpdateM` implementation (or a thread-count dependence in the folding
//! above it).

use gpm::datagen::{powerlaw_graph, PowerLawConfig};
use gpm::distance::AffectedPairs;
use gpm::{
    fold_deltas, generate_pattern, random_updates, BatchOutcome, DataGraph, EdgeUpdate, Executor,
    IncrementalMatcher, MatchRelation, MatchService, NodeId, OracleBackend, Parallelism,
    PatternGenConfig, PatternGraph, PatternGraphBuilder, Predicate, UpdateStreamConfig,
};

fn labelled_graph(nodes: usize, edges: usize, labels: usize, seed: u64) -> DataGraph {
    let mut g = powerlaw_graph(&PowerLawConfig::new(nodes, edges).with_seed(seed));
    for v in 0..g.node_count() {
        let label = format!("a{}", v % labels);
        g.attributes_mut(NodeId::new(v as u32)).set("label", label);
    }
    g
}

fn dag_pattern(graph: &DataGraph, seed: u64) -> PatternGraph {
    for attempt in 0..32 {
        let cfg = PatternGenConfig::new(3, 3, 3).with_seed(seed + attempt * 101);
        let (p, _) = generate_pattern(graph, &cfg);
        if p.is_dag() {
            return p;
        }
    }
    panic!("could not generate a DAG pattern");
}

/// `AFF1` as a canonically ordered set — the contract fixes the *set* of
/// changed pairs with their old/new distances, not the emission order.
fn sorted_pairs(aff: &AffectedPairs) -> Vec<(u32, u32, u16, u16)> {
    let mut v: Vec<_> = aff
        .iter()
        .map(|p| (p.source.0, p.sink.0, p.old, p.new))
        .collect();
    v.sort_unstable();
    v
}

fn assert_all_pairs_agree(
    g: &DataGraph,
    matrix: &dyn gpm::DistanceOracle,
    two_hop: &dyn gpm::DistanceOracle,
    ctx: &str,
) {
    let n = g.node_count() as u32;
    for x in (0..n).map(NodeId::new) {
        for y in (0..n).map(NodeId::new) {
            assert_eq!(
                matrix.nonempty_distance(g, x, y),
                two_hop.nonempty_distance(g, x, y),
                "{ctx}: backends disagree at ({x:?}, {y:?})"
            );
        }
    }
}

/// Unit-at-a-time maintenance with `compact()` interleaved mid-stream:
/// both back-ends report the same `AFF1` for every update and answer every
/// pair identically afterwards.
#[test]
fn unit_updates_keep_backends_bit_identical() {
    for seed in [7u64, 19, 101] {
        let mut g = labelled_graph(30, 80, 3, seed);
        let exec = Executor::new(Parallelism::new(2).with_sequential_threshold(0));
        let mut matrix = OracleBackend::Matrix.build(&g, &exec);
        let mut two_hop = OracleBackend::TwoHop.build(&g, &exec);
        assert_eq!(matrix.name(), "matrix");
        assert_eq!(two_hop.name(), "two-hop");

        let stream = random_updates(&g, &UpdateStreamConfig::mixed(20).with_seed(seed + 1));
        let mut applied = 0usize;
        for (i, u) in stream.iter().enumerate() {
            if !u.apply(&mut g) {
                continue; // no-op against the evolved graph
            }
            applied += 1;
            if i % 5 == 3 {
                // A representation change must be invisible to maintenance.
                g.compact();
            }
            let (a, b) = u.endpoints();
            let (aff_m, aff_t) = if u.is_insert() {
                (
                    matrix.apply_insert(&g, a, b, &exec),
                    two_hop.apply_insert(&g, a, b, &exec),
                )
            } else {
                (
                    matrix.apply_delete(&g, a, b, &exec),
                    two_hop.apply_delete(&g, a, b, &exec),
                )
            };
            assert_eq!(
                sorted_pairs(&aff_m),
                sorted_pairs(&aff_t),
                "AFF1 diverged at update {i} ({u}) (seed {seed})"
            );
            assert_all_pairs_agree(
                &g,
                matrix.as_ref(),
                two_hop.as_ref(),
                &format!("after update {i} (seed {seed})"),
            );
        }
        assert!(applied > 0, "stream was all no-ops (seed {seed})");
    }
}

/// The pruned-landmark construction is *bit-identical* whichever way it is
/// scheduled: the sequential reference loop and the rank-batched,
/// bit-parallel build must produce the same labels entry for entry, at 1, 2
/// and 8 threads and batch sizes 1, 7 and 64 (degenerate, straddling and
/// full-word batches).
#[test]
fn batched_build_is_bit_identical_across_threads_and_batch_sizes() {
    use gpm::TwoHopIndex;
    for seed in [5u64, 23] {
        let g = labelled_graph(40, 110, 3, seed);
        let reference = TwoHopIndex::build_sequential(&g);
        for threads in [1usize, 2, 8] {
            let exec = Executor::new(Parallelism::new(threads).with_sequential_threshold(0));
            for batch in [1usize, 7, 64] {
                let built = TwoHopIndex::build_batched(&g, &exec, batch);
                assert_eq!(
                    built, reference,
                    "batched build diverged (seed {seed}, {threads} threads, batch {batch})"
                );
            }
        }
    }
}

/// The batched `UpdateBM` surface agrees too (the matrix overrides
/// `apply_batch` natively; the 2-hop backend defers rebuild-demanding
/// deletions into a single end-of-batch rebuild).
#[test]
fn batch_updates_keep_backends_bit_identical() {
    let g0 = labelled_graph(28, 70, 3, 5);
    let exec = Executor::new(Parallelism::new(2).with_sequential_threshold(0));
    let mut matrix = OracleBackend::Matrix.build(&g0, &exec);
    let mut two_hop = OracleBackend::TwoHop.build(&g0, &exec);
    let mut g = g0;

    for round in 0..3u64 {
        let batch = random_updates(&g, &UpdateStreamConfig::mixed(8).with_seed(round + 40));
        let effective: Vec<EdgeUpdate> =
            batch.iter().filter(|u| u.apply(&mut g)).copied().collect();
        let aff_m = matrix.apply_batch(&g, &effective, &exec);
        let aff_t = two_hop.apply_batch(&g, &effective, &exec);
        assert_eq!(
            sorted_pairs(&aff_m),
            sorted_pairs(&aff_t),
            "batch AFF1 diverged at round {round}"
        );
        assert_all_pairs_agree(
            &g,
            matrix.as_ref(),
            two_hop.as_ref(),
            &format!("after batch {round}"),
        );
    }
}

/// `IncrementalMatcher` maintains the *same match* on either backend: the
/// folded `AFF1 → AFF2 → relation` chain is backend-independent.
#[test]
fn maintained_matches_are_identical_across_backends() {
    let g = labelled_graph(35, 90, 4, 3);
    let pattern = dag_pattern(&g, 1);
    let mut on_matrix = IncrementalMatcher::with_backend(
        pattern.clone(),
        g.clone(),
        OracleBackend::Matrix,
        Parallelism::new(1),
    );
    let mut on_two_hop =
        IncrementalMatcher::with_backend(pattern, g, OracleBackend::TwoHop, Parallelism::new(1));
    assert_eq!(on_matrix.relation(), on_two_hop.relation(), "initial Match");

    for round in 0..3u64 {
        let updates = random_updates(
            on_matrix.graph(),
            &UpdateStreamConfig::mixed(10).with_seed(round + 60),
        );
        let out_m = on_matrix.apply_batch(&updates).unwrap();
        let out_t = on_two_hop.apply_batch(&updates).unwrap();
        assert_eq!(
            out_m.stats.aff1, out_t.stats.aff1,
            "|AFF1| diverged at round {round}"
        );
        assert_eq!(
            out_m.stats.aff2, out_t.stats.aff2,
            "|AFF2| diverged at round {round}"
        );
        assert_eq!(
            on_matrix.relation(),
            on_two_hop.relation(),
            "maintained match diverged at round {round}"
        );
    }
}

/// Drives one service run and returns everything observable about it.
fn run_service(
    backend: OracleBackend,
    threads: usize,
    g: &DataGraph,
    patterns: &[PatternGraph],
    batches: &[Vec<EdgeUpdate>],
) -> (Vec<BatchOutcome>, Vec<MatchRelation>, Vec<MatchRelation>) {
    let par = Parallelism::new(threads).with_sequential_threshold(0);
    let mut svc = MatchService::with_backend(g.clone(), backend, par);
    let mut ids = Vec::new();
    let mut subs = Vec::new();
    for p in patterns {
        let q = svc.register(p.clone());
        subs.push(svc.subscribe(q).unwrap());
        ids.push(q);
    }
    let outcomes: Vec<BatchOutcome> = batches.iter().map(|b| svc.apply(b)).collect();
    let results: Vec<MatchRelation> = ids.iter().map(|&q| svc.result(q).unwrap()).collect();
    let folded: Vec<MatchRelation> = patterns
        .iter()
        .zip(&subs)
        .map(|(p, s)| fold_deltas(p.node_count(), s.drain().iter()))
        .collect();
    (outcomes, results, folded)
}

/// The service emits *bit-identical* batch outcomes (epochs, applied counts,
/// `|AFF1|`, full delta payloads), final results and folded subscription
/// streams on either backend, at 1, 2 and 8 worker threads — the ISSUE's
/// acceptance gate for backend pluggability. A cyclic pattern rides along to
/// cover the `IncMatch` rebuild fallback on a non-matrix oracle.
#[test]
fn service_deltas_are_bit_identical_across_backends_and_threads() {
    let g = labelled_graph(32, 85, 4, 11);
    let mut patterns = vec![dag_pattern(&g, 2), dag_pattern(&g, 900)];
    let (cyclic, _) = PatternGraphBuilder::new()
        .node("a", Predicate::label_eq("label", "a0"))
        .node("b", Predicate::label_eq("label", "a1"))
        .edge("a", "b", 2u32)
        .edge("b", "a", 2u32)
        .build()
        .unwrap();
    assert!(!cyclic.is_dag());
    patterns.push(cyclic);

    // Pre-roll the batches against an evolving scratch copy so every run
    // sees the exact same update stream.
    let mut scratch = g.clone();
    let mut batches = Vec::new();
    for round in 0..4u64 {
        let batch = random_updates(
            &scratch,
            &UpdateStreamConfig::mixed(8).with_seed(round + 500),
        );
        for u in &batch {
            u.apply(&mut scratch);
        }
        batches.push(batch);
    }

    let reference = run_service(OracleBackend::Matrix, 1, &g, &patterns, &batches);
    for threads in [1usize, 2, 8] {
        for backend in OracleBackend::ALL {
            if backend == OracleBackend::Matrix && threads == 1 {
                continue; // that is the reference run itself
            }
            let run = run_service(backend, threads, &g, &patterns, &batches);
            assert_eq!(
                reference.0, run.0,
                "batch outcomes diverged on {backend} at {threads} threads"
            );
            assert_eq!(
                reference.1, run.1,
                "final results diverged on {backend} at {threads} threads"
            );
            assert_eq!(
                reference.2, run.2,
                "folded delta streams diverged on {backend} at {threads} threads"
            );
        }
    }
}
