//! Appendix Fig. 9 — effectiveness for various bounds `k`.
//!
//! Spanning-tree patterns P(|Vp|, |Vp| - 1, k) for |Vp| ∈ {4, 6, 8, 10, 12}
//! and k = 4..13 over a synthetic graph; the cell reports the average number
//! of matches (|S|), which grows with k up to a saturation point.

use gpm::{
    bounded_simulation_with_oracle, generate_pattern, random_graph, PatternGenConfig,
    RandomGraphConfig,
};
use gpm_bench::{HarnessArgs, Subject, Table};

fn main() {
    let args = HarnessArgs::from_env();
    let nodes = args.scaled(20_000);
    let edges = args.scaled(40_000);
    let graph = random_graph(
        &RandomGraphConfig::new(nodes, edges, (nodes / 10).max(4)).with_seed(args.seed),
    );
    let subject = Subject::new(graph);
    println!(
        "synthetic graph: |V| = {}, |E| = {}\n",
        subject.graph.node_count(),
        subject.graph.edge_count()
    );

    let sizes = [4usize, 6, 8, 10, 12];
    let headers: Vec<String> = std::iter::once("bound k".to_string())
        .chain(sizes.iter().map(|n| format!("P({n},{},k)", n - 1)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("Fig. 9: average |S| for various bounds k", &header_refs);

    for k in 4..=13u32 {
        let mut cells = vec![k.to_string()];
        for &vp in &sizes {
            let mut total = 0usize;
            for rep in 0..args.patterns {
                let cfg = PatternGenConfig {
                    unbounded_probability: 0.0,
                    bound_variation: 1,
                    ..PatternGenConfig::new(vp, vp - 1, k)
                        .with_seed(args.seed + (vp * 100 + rep) as u64)
                };
                let (pattern, _) = generate_pattern(&subject.graph, &cfg);
                let outcome =
                    bounded_simulation_with_oracle(&pattern, &subject.graph, &subject.matrix);
                total += outcome.relation.pair_count();
            }
            cells.push((total / args.patterns).to_string());
        }
        table.row(cells);
    }
    table.print();
    println!(
        "paper reference: increasing the bound k admits more matches, up to a saturation point\n\
         beyond which no new matches appear."
    );
}
