//! Fluent builders for data graphs and pattern graphs.
//!
//! The builders are sugar over [`DataGraph`]/[`PatternGraph`] aimed at tests,
//! examples and generators: nodes are referred to by string keys instead of
//! ids, and errors are accumulated so a whole graph description can be
//! written declaratively and validated at `build()` time.

use crate::attributes::Attributes;
use crate::data_graph::DataGraph;
use crate::edge_bound::EdgeBound;
use crate::error::GraphError;
use crate::node_id::{NodeId, PatternNodeId};
use crate::pattern_graph::PatternGraph;
use crate::predicate::Predicate;
use crate::Result;
use rustc_hash::FxHashMap;

/// Declarative builder for [`DataGraph`]s keyed by string node names.
#[derive(Default)]
pub struct DataGraphBuilder {
    graph: DataGraph,
    names: FxHashMap<String, NodeId>,
    pending_edges: Vec<(String, String)>,
}

impl DataGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or updates) a node named `name` with the given attributes.
    pub fn node(mut self, name: impl Into<String>, attrs: impl Into<Attributes>) -> Self {
        let name = name.into();
        let attrs = attrs.into();
        match self.names.get(&name) {
            Some(&id) => *self.graph.attributes_mut(id) = attrs,
            None => {
                let id = self.graph.add_node(attrs);
                self.names.insert(name, id);
            }
        }
        self
    }

    /// Adds a node named `name` carrying only a `label` attribute equal to
    /// its name — the common case in small examples.
    pub fn labeled_node(self, name: impl Into<String>) -> Self {
        let name = name.into();
        let attrs = Attributes::labeled(name.clone());
        self.node(name, attrs)
    }

    /// Adds the edge `from -> to` (by node name). Unknown names are reported
    /// at `build()` time.
    pub fn edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.pending_edges.push((from.into(), to.into()));
        self
    }

    /// Adds a chain of edges `a -> b -> c -> ...`.
    pub fn path(mut self, names: &[&str]) -> Self {
        for pair in names.windows(2) {
            self.pending_edges
                .push((pair[0].to_string(), pair[1].to_string()));
        }
        self
    }

    /// The id assigned to `name`, if that node was added.
    pub fn id_of(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Finalizes the graph, resolving all pending edges.
    pub fn build(mut self) -> Result<(DataGraph, FxHashMap<String, NodeId>)> {
        for (from, to) in std::mem::take(&mut self.pending_edges) {
            let &f = self
                .names
                .get(&from)
                .ok_or_else(|| GraphError::Parse(format!("unknown node name `{from}`")))?;
            let &t = self
                .names
                .get(&to)
                .ok_or_else(|| GraphError::Parse(format!("unknown node name `{to}`")))?;
            self.graph.try_add_edge(f, t)?;
        }
        self.graph.compact();
        Ok((self.graph, self.names))
    }
}

/// Declarative builder for [`PatternGraph`]s keyed by string node names.
#[derive(Default)]
pub struct PatternGraphBuilder {
    pattern: PatternGraph,
    names: FxHashMap<String, PatternNodeId>,
    pending_edges: Vec<(String, String, EdgeBound)>,
}

impl PatternGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern node named `name` with predicate `pred`.
    pub fn node(mut self, name: impl Into<String>, pred: Predicate) -> Self {
        let name = name.into();
        if !self.names.contains_key(&name) {
            let id = self.pattern.add_named_node(name.clone(), pred);
            self.names.insert(name, id);
        }
        self
    }

    /// Adds a pattern node whose predicate is `label = name`.
    pub fn labeled_node(self, name: impl Into<String>) -> Self {
        let name = name.into();
        let pred = Predicate::label(name.clone());
        self.node(name, pred)
    }

    /// Adds the pattern edge `from -> to` with the given bound.
    pub fn edge(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        bound: impl Into<EdgeBound>,
    ) -> Self {
        self.pending_edges
            .push((from.into(), to.into(), bound.into()));
        self
    }

    /// Adds an unbounded (`*`) pattern edge `from -> to`.
    pub fn unbounded_edge(mut self, from: impl Into<String>, to: impl Into<String>) -> Self {
        self.pending_edges
            .push((from.into(), to.into(), EdgeBound::Unbounded));
        self
    }

    /// The id assigned to pattern node `name`, if it was added.
    pub fn id_of(&self, name: &str) -> Option<PatternNodeId> {
        self.names.get(name).copied()
    }

    /// Finalizes the pattern, resolving all pending edges.
    pub fn build(mut self) -> Result<(PatternGraph, FxHashMap<String, PatternNodeId>)> {
        for (from, to, bound) in std::mem::take(&mut self.pending_edges) {
            let &f = self
                .names
                .get(&from)
                .ok_or_else(|| GraphError::Parse(format!("unknown pattern node `{from}`")))?;
            let &t = self
                .names
                .get(&to)
                .ok_or_else(|| GraphError::Parse(format!("unknown pattern node `{to}`")))?;
            self.pattern.add_edge(f, t, bound)?;
        }
        Ok((self.pattern, self.names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_graph_builder_basic() {
        let (g, names) = DataGraphBuilder::new()
            .labeled_node("B")
            .labeled_node("A1")
            .labeled_node("W")
            .edge("B", "A1")
            .edge("A1", "W")
            .build()
            .unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let b = names["B"];
        let a1 = names["A1"];
        assert!(g.has_edge(b, a1));
        assert_eq!(g.attributes(b).label(), Some("B"));
    }

    #[test]
    fn data_graph_builder_path_and_duplicate_edges() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("a")
            .labeled_node("b")
            .labeled_node("c")
            .path(&["a", "b", "c"])
            .edge("a", "b") // duplicate, silently ignored by try_add_edge
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn data_graph_builder_unknown_name_errors() {
        let err = DataGraphBuilder::new()
            .labeled_node("a")
            .edge("a", "ghost")
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn data_graph_builder_node_update_keeps_id() {
        let builder = DataGraphBuilder::new()
            .node("x", Attributes::labeled("old"))
            .node("x", Attributes::labeled("new"));
        let id = builder.id_of("x").unwrap();
        let (g, _) = builder.build().unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.attributes(id).label(), Some("new"));
    }

    #[test]
    fn pattern_builder_basic() {
        let (p, names) = PatternGraphBuilder::new()
            .labeled_node("B")
            .labeled_node("AM")
            .labeled_node("FW")
            .edge("B", "AM", 1u32)
            .edge("AM", "FW", 3u32)
            .unbounded_edge("B", "FW")
            .build()
            .unwrap();
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.bound(names["AM"], names["FW"]), Some(EdgeBound::Hops(3)));
        assert_eq!(p.bound(names["B"], names["FW"]), Some(EdgeBound::Unbounded));
        assert_eq!(p.name(names["AM"]), "AM");
    }

    #[test]
    fn pattern_builder_unknown_name_errors() {
        let err = PatternGraphBuilder::new()
            .labeled_node("a")
            .edge("a", "nope", 2u32)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn pattern_builder_duplicate_node_names_are_single_nodes() {
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("a")
            .labeled_node("a")
            .build()
            .unwrap();
        assert_eq!(p.node_count(), 1);
    }
}
